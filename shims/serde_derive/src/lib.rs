//! Minimal `Serialize`/`Deserialize` derive macros for the vendored
//! `serde` shim (see `shims/serde`). Implemented with `proc_macro` only —
//! no `syn`/`quote` — because this workspace builds fully offline.
//!
//! Supported input shapes (everything this workspace derives on):
//! * structs with named fields, honoring `#[serde(skip)]` (skipped on
//!   serialize, `Default::default()` on deserialize);
//! * enums with unit, tuple, and struct variants, externally tagged like
//!   upstream serde_json: `"Variant"`, `{"Variant": value}`,
//!   `{"Variant": [v0, v1]}`, `{"Variant": {..fields..}}`.
//!
//! Generics are intentionally unsupported and rejected with an error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading `#[...]` attributes, reporting whether any of them was
/// `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let txt = args.stream().to_string();
                            if txt.split(',').any(|a| a.trim() == "skip") {
                                skip = true;
                            } else {
                                panic!("serde shim: unsupported serde attribute `{txt}`");
                            }
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Parses the named fields inside a brace group (struct body or struct
/// variant body).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, skip) = eat_attrs(&tokens, i);
        i = j;
        if i >= tokens.len() {
            break;
        }
        // Optional visibility: `pub` or `pub(...)`.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, found `{other}`"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a tuple variant: top-level commas at angle depth 0.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (j, _) = eat_attrs(&tokens, i);
        i = j;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim: expected variant name, found `{other}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (j, _) = eat_attrs(&tokens, i);
        i = j;
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                // Visibility / `unsafe` / etc. — skip one token.
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            _ => i += 1,
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported by the vendored derive");
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("serde shim: missing body for `{name}`"),
        }
    };
    if is_enum {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    } else {
        Item::Struct {
            name,
            fields: parse_named_fields(body),
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(m)\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::serialize(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let sers: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::get_field(m, \"{n}\", \"{name}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let m = v.expect_map(\"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&seq[{k}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let seq = inner.expect_seq(\"{name}::{vn}\")?;\n\
                             if seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{n}: ::std::default::Default::default()", n = f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::get_field(m2, \"{n}\", \"{name}::{vn}\")?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let m2 = inner.expect_map(\"{name}::{vn}\")?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(s) = v {{\n\
                 return match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }};\n}}\n\
                 let m = v.expect_map(\"{name}\")?;\n\
                 if m.len() != 1 {{ return ::std::result::Result::Err(::serde::Error::msg(\"expected single-key map for enum {name}\")); }}\n\
                 let (k, inner) = &m[0];\n\
                 let _ = inner;\n\
                 match k.as_str() {{\n\
                 {keyed_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl must parse")
}
