//! Minimal vendored `serde` core for offline builds.
//!
//! This is not wire-compatible with upstream serde's zero-copy
//! architecture: `Serialize` renders into an owned [`Value`] tree and
//! `Deserialize` reads back out of one. The workspace only needs
//! self-consistent JSON round-trips (model checkpoints, dataset caches,
//! workload snapshots), for which this is sufficient and dependency-free.
//!
//! The derive macros live in the companion `serde_derive` shim and target
//! exactly this API: [`Value`], [`Error`], [`get_field`],
//! [`Value::expect_map`] and [`Value::expect_seq`].

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree.
///
/// Integers keep a dedicated representation (`UInt`/`Int`) so `u64` seeds
/// and indices round-trip exactly instead of passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error (also re-used by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    pub fn expect_map(&self, what: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(Error::msg(format!(
                "expected map for {what}, found {other:?}"
            ))),
        }
    }

    pub fn expect_seq(&self, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(Error::msg(format!(
                "expected sequence for {what}, found {other:?}"
            ))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, Error> {
        match self {
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!(
                "expected number for {what}, found {other:?}"
            ))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, Error> {
        match self {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) if *i >= 0 => Ok(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Ok(*f as u64),
            other => Err(Error::msg(format!(
                "expected unsigned integer for {what}, found {other:?}"
            ))),
        }
    }

    fn as_i64(&self, what: &str) -> Result<i64, Error> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Ok(*u as i64),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(Error::msg(format!(
                "expected integer for {what}, found {other:?}"
            ))),
        }
    }
}

/// Renders a value into a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field by name (used by the derive macros).
pub fn get_field<T: Deserialize>(map: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v),
        None => Err(Error::msg(format!("missing field `{key}` for {ty}"))),
    }
}

// ---------- primitive impls ----------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64(stringify!($t))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64(stringify!($t))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64("f32")? as f32)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64("f64")
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.expect_seq("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.expect_seq("tuple")?;
                let n = [$($idx),+].len();
                if s.len() != n {
                    return Err(Error::msg(format!("expected {n}-tuple, found {} elements", s.len())));
                }
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
