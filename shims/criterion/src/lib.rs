//! Minimal vendored `criterion` for offline builds: same surface API
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`, `black_box`) with
//! a simple adaptive timer instead of the full statistical machinery.
//!
//! Each benchmark warms up once, then runs batches until ~200 ms or
//! `sample_size` iterations have elapsed (whichever comes last/first for
//! slow/fast bodies), and prints the mean iteration time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark names built from parameters (`BenchmarkId::from_parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, p: P) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), p))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runs closures and accumulates timing for one benchmark.
pub struct Bencher {
    target_time: Duration,
    min_iters: u64,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.target_time && iters >= self.min_iters.min(4) {
                self.mean = elapsed.as_secs_f64() / iters as f64;
                self.iters = iters;
                break;
            }
            if iters >= 100_000 {
                self.mean = start.elapsed().as_secs_f64() / iters as f64;
                self.iters = iters;
                break;
            }
        }
    }
}

/// Per-iteration work declared with [`BenchmarkGroup::throughput`]; the
/// report then includes elements (or bytes) per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            target_time: self.criterion.target_time,
            min_iters: self.sample_size,
            mean: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b, self.throughput);
        self
    }

    pub fn bench_with_input<S: std::fmt::Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let t = b.mean;
    let human = if t >= 1.0 {
        format!("{t:.3} s")
    } else if t >= 1e-3 {
        format!("{:.3} ms", t * 1e3)
    } else if t >= 1e-6 {
        format!("{:.3} µs", t * 1e6)
    } else {
        format!("{:.1} ns", t * 1e9)
    };
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if t > 0.0 => {
            format!(", {:.0} elem/s", n as f64 / t)
        }
        Some(Throughput::Bytes(n)) if t > 0.0 => {
            format!(", {:.0} B/s", n as f64 / t)
        }
        _ => String::new(),
    };
    println!(
        "bench {group}/{name}: {human}/iter ({} iters{thrpt})",
        b.iters
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== benchmark group `{name}` ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            target_time: self.target_time,
            min_iters: 10,
            mean: 0.0,
            iters: 0,
        };
        f(&mut b);
        report("bench", &id.to_string(), &b, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
