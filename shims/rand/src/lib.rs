//! Minimal vendored `rand` for offline builds, API-compatible with the
//! subset of rand 0.8 this workspace uses:
//!
//! * `rngs::StdRng` + `SeedableRng::seed_from_u64` (xoshiro256++ seeded
//!   via SplitMix64 — deterministic, decent statistical quality);
//! * `Rng::{gen, gen_range, gen_bool}` over the primitive types the
//!   workspace samples;
//! * `seq::SliceRandom::{shuffle, choose}` (Fisher–Yates).
//!
//! Streams are deterministic per seed but *not* bit-compatible with
//! upstream rand; nothing in the workspace depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output
/// (the shim's stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over half-open/closed ranges.
pub trait UniformSample: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = if inclusive {
                    (hi as i128) - (lo as i128) + 1
                } else {
                    (hi as i128) - (lo as i128)
                };
                assert!(span > 0, "cannot sample empty range {lo}..{hi}");
                let span = span as u128;
                // Modulo bias is negligible for the spans this workspace
                // samples (≪ 2^64).
                let offset = (rng.next_u64() as u128) % span;
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range {lo}..{hi}"
        );
        let u = f32::sample(rng);
        let v = lo + u * (hi - lo);
        if v >= hi && !inclusive {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            v.min(hi)
        }
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "cannot sample empty range {lo}..{hi}"
        );
        let u = f64::sample(rng);
        let v = lo + u * (hi - lo);
        if v >= hi && !inclusive {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v.min(hi)
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace doesn't rely on `SmallRng` being distinct.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_well_spread() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<f32> = (0..1000).map(|_| a.gen::<f32>()).collect();
        let ys: Vec<f32> = (0..1000).map(|_| b.gen::<f32>()).collect();
        assert_eq!(xs, ys);
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let v = rng.gen_range(-1.5f32..=2.5);
            assert!((-1.5..=2.5).contains(&v));
            let w = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
