//! Minimal vendored `serde_json` for offline builds: serializes the
//! `serde` shim's [`Value`] tree to JSON text and parses it back.
//!
//! Covers the subset the workspace uses: `to_string`, `to_vec`,
//! `from_str`, `from_slice`, `Result`, `Error`. Non-finite floats are
//! written as `null` (like upstream) and read back as NaN.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------- writer ----------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------- parser ----------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}, found {other:?}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::msg("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's identifiers; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(u64::MAX)),
            ("b".to_string(), Value::Int(-7)),
            ("c".to_string(), Value::Float(0.1)),
            (
                "d".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("e".to_string(), Value::Str("q\"\\\n✓".to_string())),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let back: Value = from_str(&s).expect("parse");
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.0f64, 1.5, -2.25, 1e-9, 3.402_823_5e38, f64::MIN_POSITIVE] {
            let s = to_string(&x).expect("serialize");
            let back: f64 = from_str(&s).expect("parse");
            assert_eq!(back, x, "{s}");
        }
    }
}
