//! Minimal vendored `proptest` for offline builds.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config]`), range and collection
//! strategies, `any::<bool>()`, tuple strategies, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, and a `TestRunner` with `run`.
//!
//! Unlike upstream there is no shrinking: failures report the generated
//! case via the panic message (cases are deterministic per test name, so
//! failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::ops::Range;

/// A source of random test cases.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// Generates values of `Self::Value` for a test case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

/// Strategy for "any value of T" (only the types the workspace asks for).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.0.gen::<bool>()
    }
}

impl Strategy for Any<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen::<f32>()
    }
}

impl Strategy for Any<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.0.gen::<usize>()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Element count for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.0.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// A failed property run.
    #[derive(Debug, Clone)]
    pub struct TestError(pub String);

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Drives a strategy through `cases` generated inputs.
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                rng: TestRng::from_seed(0x70_72_6f_70),
            }
        }

        pub fn new_seeded(config: Config, seed: u64) -> Self {
            TestRunner {
                config,
                rng: TestRng::from_seed(seed),
            }
        }

        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            let mut ran = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(16).max(256);
            while ran < self.config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    return Err(TestError(format!(
                        "too many rejected cases ({ran} accepted of {attempts} attempts)"
                    )));
                }
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) => ran += 1,
                    Err(TestCaseError::Reject(_)) => {}
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(TestError(format!("case #{ran} failed: {msg}")))
                    }
                }
            }
            Ok(())
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(Config::default())
        }
    }
}

pub mod strategy {
    pub use super::Strategy;
}

/// `prop::...` namespace, as exposed by the upstream prelude.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::prop;
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Runs one property function body over `cases` generated inputs.
/// Used by the `proptest!` macro; panics (with the case number) on the
/// first failing case so the standard test harness reports it.
pub fn run_property<S: Strategy>(
    name: &str,
    config: test_runner::Config,
    strategy: S,
    mut body: impl FnMut(S::Value) -> Result<(), test_runner::TestCaseError>,
) {
    let seed = name.bytes().fold(0x6b76_2fae_u64, |h, b| {
        h.wrapping_mul(131).wrapping_add(b as u64)
    });
    let mut runner = test_runner::TestRunner::new_seeded(config, seed);
    if let Err(e) = runner.run(&strategy, &mut body) {
        panic!("property `{name}` failed: {}", e.0);
    }
}

#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            $crate::run_property(
                stringify!($name),
                $cfg,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vecs_respect_bounds(v in prop::collection::vec(0.0f32..1.0, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_filters_cases(x in -5i32..5) {
            prop_assume!(x != 0);
            prop_assert!(x != 0);
        }
    }

    #[test]
    fn runner_reports_failures() {
        let mut runner = crate::test_runner::TestRunner::default();
        let r = runner.run(&(0usize..10), |x| {
            if x < 100 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
    }
}
