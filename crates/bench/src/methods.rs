//! Uniform construction of every tested method (Table 2) over a
//! [`DatasetContext`], with per-method training-time accounting for
//! Fig. 14.

use crate::context::{DatasetContext, Scale};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_baselines::{
    CardNet, CardNetConfig, KernelEstimator, MlpConfig, MlpEstimator, SamplingEstimator,
};
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::qes::{QesConfig, QesEstimator};
use cardest_core::tuning::TuningConfig;
use cardest_nn::trainer::TrainConfig;
use std::time::{Duration, Instant};

/// A trained method plus its offline training time.
pub struct TrainedMethod {
    pub estimator: Box<dyn CardinalityEstimator>,
    pub train_time: Duration,
}

/// Identifier of a search method under test (rows of Table 2 plus the
/// sampling variants of §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    GlPlus,
    LocalPlus,
    GlCnn,
    GlMlp,
    Qes,
    Mlp,
    CardNet,
    KernelBased,
    Sampling1,
    Sampling10,
    /// Sized to the GL+ model's bytes (Exp-2); the byte budget is passed
    /// in at construction.
    SamplingEqual(usize),
}

impl Method {
    pub fn name(self) -> &'static str {
        match self {
            Method::GlPlus => "GL+",
            Method::LocalPlus => "Local+",
            Method::GlCnn => "GL-CNN",
            Method::GlMlp => "GL-MLP",
            Method::Qes => "QES",
            Method::Mlp => "MLP",
            Method::CardNet => "CardNet",
            Method::KernelBased => "Kernel-based",
            Method::Sampling1 => "Sampling (1%)",
            Method::Sampling10 => "Sampling (10%)",
            Method::SamplingEqual(_) => "Sampling (equal)",
        }
    }
}

/// Training configurations tuned so a full harness run fits a single-core
/// budget; `Smoke` shrinks epochs further for benches.
pub struct MethodConfigs {
    pub gl: GlConfig,
    pub qes: QesConfig,
    pub mlp: MlpConfig,
    pub cardnet: CardNetConfig,
}

impl MethodConfigs {
    pub fn for_scale(scale: Scale, seed: u64) -> Self {
        let (local_epochs, global_epochs, single_epochs) = match scale {
            Scale::Full => (45, 30, 30),
            Scale::Smoke => (6, 8, 10),
        };
        let tuning = match scale {
            Scale::Full => TuningConfig {
                train_samples: 600,
                val_samples: 150,
                init_configs: 3,
                max_layers: 2,
                max_evals: 18,
                trial_train: TrainConfig {
                    epochs: 5,
                    batch_size: 128,
                    ..Default::default()
                },
                ..Default::default()
            },
            Scale::Smoke => TuningConfig::fast(),
        };
        let gl = GlConfig {
            n_segments: 16,
            local_train: TrainConfig {
                epochs: local_epochs,
                batch_size: 128,
                learning_rate: 2e-3,
                seed,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: global_epochs,
                batch_size: 128,
                learning_rate: 2e-3,
                seed,
                ..Default::default()
            },
            max_local_samples: 2400,
            tuning,
            tuning_segments: 1,
            seed,
            ..Default::default()
        };
        let qes = QesConfig {
            train: TrainConfig {
                epochs: single_epochs,
                batch_size: 128,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let mlp = MlpConfig {
            train: TrainConfig {
                epochs: single_epochs,
                batch_size: 128,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let cardnet = CardNetConfig {
            train: TrainConfig {
                epochs: single_epochs,
                batch_size: 128,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        MethodConfigs {
            gl,
            qes,
            mlp,
            cardnet,
        }
    }
}

/// Trains one method on a dataset context.
pub fn train_method(ctx: &DatasetContext, method: Method, scale: Scale) -> TrainedMethod {
    let cfgs = MethodConfigs::for_scale(scale, ctx.seed);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let start = Instant::now();
    let estimator: Box<dyn CardinalityEstimator> = match method {
        Method::GlPlus | Method::LocalPlus | Method::GlCnn | Method::GlMlp => {
            let variant = match method {
                Method::GlPlus => GlVariant::GlPlus,
                Method::LocalPlus => GlVariant::LocalPlus,
                Method::GlCnn => GlVariant::GlCnn,
                _ => GlVariant::GlMlp,
            };
            let cfg = GlConfig { variant, ..cfgs.gl };
            Box::new(GlEstimator::train(
                &ctx.data,
                ctx.spec.metric,
                &training,
                &ctx.search.table,
                &cfg,
            ))
        }
        Method::Qes => Box::new(
            QesEstimator::train(&ctx.data, ctx.spec.metric, &training, &cfgs.qes, ctx.seed).0,
        ),
        Method::Mlp => Box::new(
            MlpEstimator::train(&ctx.data, ctx.spec.metric, &training, &cfgs.mlp, ctx.seed).0,
        ),
        Method::CardNet => {
            Box::new(CardNet::train(&training, ctx.spec.tau_max, &cfgs.cardnet, ctx.seed).0)
        }
        Method::KernelBased => Box::new(KernelEstimator::new(
            &ctx.data,
            ctx.spec.metric,
            0.01,
            ctx.seed,
        )),
        Method::Sampling1 => Box::new(SamplingEstimator::with_ratio(
            &ctx.data,
            ctx.spec.metric,
            0.01,
            ctx.seed,
            "Sampling (1%)",
        )),
        Method::Sampling10 => Box::new(SamplingEstimator::with_ratio(
            &ctx.data,
            ctx.spec.metric,
            0.10,
            ctx.seed,
            "Sampling (10%)",
        )),
        Method::SamplingEqual(bytes) => Box::new(SamplingEstimator::with_equal_bytes(
            &ctx.data,
            ctx.spec.metric,
            bytes,
            ctx.seed,
        )),
    };
    TrainedMethod {
        estimator,
        train_time: start.elapsed(),
    }
}

/// Evaluates a trained method on the test samples, returning
/// `(estimate, truth)` pairs. Runs the whole test set through
/// [`CardinalityEstimator::estimate_batch`] so batch-capable estimators
/// (MLP, CardNet, the GL family) amortize their forward passes.
pub fn evaluate_search(est: &dyn CardinalityEstimator, ctx: &DatasetContext) -> Vec<(f32, f32)> {
    let queries: Vec<_> = ctx
        .search
        .test
        .iter()
        .map(|s| (ctx.search.queries.view(s.query), s.tau))
        .collect();
    est.estimate_batch(&queries)
        .into_iter()
        .zip(&ctx.search.test)
        .map(|(e, s)| (e, s.card))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::PaperDataset;

    #[test]
    fn method_names_match_table_2() {
        assert_eq!(Method::GlPlus.name(), "GL+");
        assert_eq!(Method::SamplingEqual(123).name(), "Sampling (equal)");
        assert_eq!(Method::KernelBased.name(), "Kernel-based");
    }

    #[test]
    fn sampling_method_trains_and_evaluates() {
        let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 11);
        let trained = train_method(&ctx, Method::Sampling10, Scale::Smoke);
        assert_eq!(trained.estimator.name(), "Sampling (10%)");
        let pairs = evaluate_search(trained.estimator.as_ref(), &ctx);
        assert_eq!(pairs.len(), ctx.search.test.len());
        assert!(pairs.iter().all(|(e, t)| e.is_finite() && *t >= 0.0));
    }

    #[test]
    fn equal_bytes_method_respects_budget() {
        let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 12);
        let trained = train_method(&ctx, Method::SamplingEqual(4096), Scale::Smoke);
        // A bit of slack: the sample is quantized to whole points.
        assert!(trained.estimator.model_bytes() <= 4096 + 64);
    }
}
