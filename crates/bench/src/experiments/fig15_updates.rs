//! Fig. 15 / Exp-11: incremental training under data updates on GloVe300.
//!
//! The paper inserts 2K records in 200 operations of 10 records each and
//! shows that incremental fine-tuning keeps the Q-error flat. At our
//! scale the run inserts proportionally fewer records but follows the same
//! protocol: route to nearest cluster, patch labels, fine-tune the
//! affected local models and the global model.

use crate::context::{DatasetContext, Scale};
use crate::methods::MethodConfigs;
use crate::report::{fmt3, Table};
use cardest_baselines::traits::TrainingSet;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::paper::PaperDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct UpdateRun {
    /// Mean test Q-error before any update and after each checkpoint.
    pub checkpoints: Vec<(usize, f32)>,
}

pub fn run_updates(scale: Scale, seed: u64) -> UpdateRun {
    let ctx = DatasetContext::build(PaperDataset::GloVe300, scale, seed);
    let cfgs = MethodConfigs::for_scale(scale, seed);
    // GL-CNN keeps the run time reasonable; GL+ behaves identically under
    // updates (the update path never re-tunes hyperparameters).
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        ..cfgs.gl
    };
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let gl = GlEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &cfg,
    );
    let mut upd = UpdatableGl::new(
        ctx.data.clone(),
        ctx.spec.metric,
        gl,
        ctx.search
            .queries
            .gather(&(0..ctx.search.queries.len()).collect::<Vec<_>>()),
        ctx.search.train.clone(),
        ctx.search.test.clone(),
        &ctx.search.table,
        UpdateConfig::default(),
    );

    let (ops, records_per_op, checkpoint_every) = match scale {
        Scale::Full => (30usize, 10usize, 5usize),
        Scale::Smoke => (6, 5, 2),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF15);
    let mut checkpoints = vec![(0usize, upd.mean_test_q_error())];
    let base_len = ctx.data.len();
    for op in 1..=ops {
        // New records resemble existing points with a small perturbation
        // (re-sampled dataset points; GloVe-like data is dense so copies
        // with new noise would need the generator — sampled points
        // exercise the same code path).
        let ids: Vec<usize> = (0..records_per_op)
            .map(|_| rng.gen_range(0..base_len))
            .collect();
        let points = upd_points(&upd, &ids);
        upd.insert(&points, true);
        if op % checkpoint_every == 0 {
            checkpoints.push((op, upd.mean_test_q_error()));
        }
    }
    UpdateRun { checkpoints }
}

fn upd_points(upd: &UpdatableGl, ids: &[usize]) -> cardest_data::vector::VectorData {
    // Access the evolving dataset through the updatable wrapper.
    updatable_data(upd).gather(ids)
}

fn updatable_data(upd: &UpdatableGl) -> &cardest_data::vector::VectorData {
    upd.data()
}

pub fn run(scale: Scale, seed: u64) -> Table {
    let run = run_updates(scale, seed);
    let mut t = Table::new(
        "Figure 15: Incremental Training under Updates (GloVe300)",
        &["Update op", "Mean test Q-error"],
    );
    for (op, err) in run.checkpoints {
        t.push_row(vec![op.to_string(), fmt3(err)]);
    }
    t
}
