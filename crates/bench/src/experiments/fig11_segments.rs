//! Fig. 11 / Exp-8: GL+'s mean Q-error as the number of data segments
//! grows. The paper sweeps 1 → 100 at full scale; with datasets scaled
//! ~40–100×, the proportional sweep is 1 → 32.

use crate::context::{DatasetContext, Scale};
use crate::methods::MethodConfigs;
use crate::report::{fmt3, Table};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_data::paper::PaperDataset;
use cardest_nn::metrics::ErrorSummary;

pub fn sweep_segments(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![1, 4, 16, 32],
        Scale::Smoke => vec![1, 4, 8],
    }
}

pub fn run(datasets: &[PaperDataset], scale: Scale, seed: u64) -> Table {
    let segments = sweep_segments(scale);
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(segments.iter().map(|s| format!("n={s}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 11: GL+ Mean Q-error vs #-Data Segments",
        &header_refs,
    );
    for &d in datasets {
        let ctx = DatasetContext::build(d, scale, seed);
        let cfgs = MethodConfigs::for_scale(scale, seed);
        let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
        let mut row = vec![d.name().to_string()];
        for &n in &segments {
            eprintln!("[fig11] {} n_segments={} ...", d.name(), n);
            let cfg = GlConfig {
                variant: GlVariant::GlPlus,
                n_segments: n,
                ..cfgs.gl.clone()
            };
            let est = GlEstimator::train(
                &ctx.data,
                ctx.spec.metric,
                &training,
                &ctx.search.table,
                &cfg,
            );
            let pairs: Vec<(f32, f32)> = ctx
                .search
                .test
                .iter()
                .map(|s| {
                    (
                        est.estimate(ctx.search.queries.view(s.query), s.tau),
                        s.card,
                    )
                })
                .collect();
            row.push(fmt3(ErrorSummary::from_q_errors(&pairs).mean));
        }
        t.push_row(row);
    }
    t
}
