//! Fig. 9 / Exp-6: the missing rate of the global model, trained with vs
//! without the cardinality penalty in the loss.

use crate::context::{DatasetContext, Scale};
use crate::report::{fmt3, Table};
use cardest_baselines::traits::TrainingSet;
use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_core::arch::QueryEmbed;
use cardest_core::global::{missing_rate, GlobalConfig, GlobalModel};
use cardest_core::labels::SegmentLabels;
use cardest_data::paper::PaperDataset;
use cardest_nn::trainer::TrainConfig;

/// Missing rate with and without the penalty on one dataset.
pub struct PenaltyResult {
    pub dataset: PaperDataset,
    pub with_penalty: f32,
    pub without_penalty: f32,
}

pub fn run_dataset(ctx: &DatasetContext, scale: Scale) -> PenaltyResult {
    let seg = Segmentation::fit(
        &ctx.data,
        ctx.spec.metric,
        &SegmentationConfig {
            n_segments: 16,
            pca_rank: 8,
            pca_iters: 10,
            method: SegmentationMethod::PcaKMeans,
            seed: ctx.seed,
        },
    );
    let train_labels = SegmentLabels::compute(&ctx.search.table, &ctx.search.train, &seg);
    let test_labels = SegmentLabels::compute(&ctx.search.table, &ctx.search.test, &seg);
    let (xq, xc) = cardest_core::gl::build_feature_caches(&ctx.search.queries, &seg);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let testing = TrainingSet::new(&ctx.search.queries, &ctx.search.test);

    let epochs = match scale {
        Scale::Full => 25,
        Scale::Smoke => 8,
    };
    let rate_for = |penalty: bool| {
        let cfg = GlobalConfig {
            penalty,
            train: TrainConfig {
                epochs,
                batch_size: 128,
                seed: ctx.seed,
                ..Default::default()
            },
            ..GlobalConfig::new(QueryEmbed::default_cnn(ctx.spec.dim, 8))
        };
        let (g, _) = GlobalModel::train(&training, &train_labels, &xq, &xc, &cfg, ctx.seed);
        missing_rate(&g, &testing, &test_labels, &xq, &xc)
    };
    PenaltyResult {
        dataset: ctx.dataset,
        with_penalty: rate_for(true),
        without_penalty: rate_for(false),
    }
}

pub fn run(datasets: &[PaperDataset], scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 9: Missing Rate of Global Model (test queries)",
        &["Dataset", "With Penalty", "No Penalty"],
    );
    for &d in datasets {
        eprintln!("[fig9] {} ...", d.name());
        let ctx = DatasetContext::build(d, scale, seed);
        let r = run_dataset(&ctx, scale);
        t.push_row(vec![
            r.dataset.name().to_string(),
            fmt3(r.with_penalty),
            fmt3(r.without_penalty),
        ]);
    }
    t
}
