//! The similarity-search evaluation suite: one training pass per method
//! per dataset yields Table 4 (Q-errors), Fig. 8 (MAPE), Table 5 (model
//! sizes), Table 6 (estimation latency) and Fig. 14 (training + labelling
//! time) — Exp-1 through Exp-5, Exp-9 and Exp-10.

use crate::context::{DatasetContext, Scale};
use crate::methods::{evaluate_search, train_method, Method};
use crate::report::{fmt3, fmt_duration, Table};
use cardest_baselines::guarded::{GuardStats, GuardedEstimator};
use cardest_baselines::traits::CardinalityEstimator;
use cardest_baselines::SamplingEstimator;
use cardest_data::paper::PaperDataset;
use cardest_data::vector::VectorView;
use cardest_index::PivotIndex;
use cardest_nn::metrics::{mape, q_error, ErrorSummary};
use std::time::{Duration, Instant};

/// Guarded-serving measurements for one method (`--guarded` runs only):
/// the wrapper's counters after the test workload plus a malformed-probe
/// battery, reported alongside Q-error so robustness regressions are as
/// visible as accuracy ones.
pub struct GuardReport {
    /// Counters over the test workload AND the probe battery.
    pub stats: GuardStats,
    /// Malformed probes sent (wrong dim, NaN/Inf query, τ < 0, NaN τ).
    pub probes_sent: usize,
    /// Probes rejected with a typed error (the rest, if any, were served).
    pub probes_rejected: usize,
}

/// Everything measured for one method on one dataset.
pub struct MethodResult {
    pub method: Method,
    pub q_errors: ErrorSummary,
    pub mape_mean: f32,
    pub model_bytes: usize,
    pub train_time: Duration,
    pub avg_latency: Duration,
    /// Present when the suite ran with the guarded serving layer.
    pub guard: Option<GuardReport>,
}

/// All results for one dataset.
pub struct DatasetResults {
    pub dataset: PaperDataset,
    pub workload_time: Duration,
    pub results: Vec<MethodResult>,
    /// SimSelect's (exact pivot index) average per-query latency.
    pub simselect_latency: Duration,
}

/// The Table 4 method order (per dataset block).
pub fn table4_methods(gl_plus_bytes: usize) -> Vec<Method> {
    vec![
        Method::GlPlus,
        Method::LocalPlus,
        Method::Sampling10,
        Method::GlCnn,
        Method::GlMlp,
        Method::Qes,
        Method::CardNet,
        Method::Mlp,
        Method::KernelBased,
        Method::SamplingEqual(gl_plus_bytes),
        Method::Sampling1,
    ]
}

/// Runs the full search suite on one dataset. With `guarded`, every
/// trained method is wrapped in a [`GuardedEstimator`] (1%-sampling
/// fallback) and additionally probed with malformed inputs.
pub fn run_dataset(ctx: &DatasetContext, scale: Scale, guarded: bool) -> DatasetResults {
    // GL+ first: Sampling (equal) is sized to its model bytes (Exp-2).
    let mut results: Vec<MethodResult> = Vec::new();
    let mut gl_plus_bytes = 64 * 1024;
    for method in table4_methods(gl_plus_bytes) {
        let method = if let Method::SamplingEqual(_) = method {
            Method::SamplingEqual(gl_plus_bytes)
        } else {
            method
        };
        let trained = train_method(ctx, method, scale);
        if method == Method::GlPlus {
            gl_plus_bytes = trained.estimator.model_bytes();
        }
        let model_bytes = trained.estimator.model_bytes();
        let (pairs, elapsed, guard) = if guarded {
            let fallback = SamplingEstimator::with_ratio(
                &ctx.data,
                ctx.spec.metric,
                0.01,
                ctx.seed,
                "Sampling (1%)",
            );
            let wrapper = GuardedEstimator::new(trained.estimator, fallback, ctx.data.len());
            let start = Instant::now();
            let pairs = evaluate_search(&wrapper, ctx);
            let elapsed = start.elapsed();
            let (probes_sent, probes_rejected) = probe_malformed(&wrapper, ctx);
            let report = GuardReport {
                stats: wrapper.stats(),
                probes_sent,
                probes_rejected,
            };
            (pairs, elapsed, Some(report))
        } else {
            let start = Instant::now();
            let pairs = evaluate_search(trained.estimator.as_ref(), ctx);
            (pairs, start.elapsed(), None)
        };
        let q: Vec<f32> = pairs.iter().map(|&(e, t)| q_error(e, t)).collect();
        let m: Vec<f32> = pairs.iter().map(|&(e, t)| mape(e, t)).collect();
        results.push(MethodResult {
            method,
            q_errors: ErrorSummary::from_errors(&q),
            mape_mean: m.iter().sum::<f32>() / m.len().max(1) as f32,
            model_bytes,
            train_time: trained.train_time,
            avg_latency: elapsed / pairs.len().max(1) as u32,
            guard,
        });
    }

    // SimSelect (exact index) latency for Table 6.
    let index = PivotIndex::build(&ctx.data, ctx.spec.metric, 16, ctx.seed);
    let start = Instant::now();
    for s in &ctx.search.test {
        let _ = index.range_count(&ctx.data, ctx.search.queries.view(s.query), s.tau);
    }
    let simselect_latency = start.elapsed() / ctx.search.test.len().max(1) as u32;

    DatasetResults {
        dataset: ctx.dataset,
        workload_time: ctx.workload_time,
        results,
        simselect_latency,
    }
}

/// Sends a battery of malformed queries through the guarded wrapper:
/// wrong dimensionality, NaN and Inf components, negative τ, NaN τ.
/// Returns `(sent, rejected-with-typed-error)` — the wrapper must never
/// panic, and nothing in the battery should produce a silent garbage
/// estimate (it either errors or is answerable by the fallback).
fn probe_malformed<E: CardinalityEstimator, F: CardinalityEstimator>(
    wrapper: &GuardedEstimator<E, F>,
    ctx: &DatasetContext,
) -> (usize, usize) {
    let dim = ctx.data.dim();
    let tau = ctx.spec.tau_max * 0.5;
    let wrong_dim = vec![0.0f32; dim + 1];
    let mut nan_q = vec![0.0f32; dim];
    nan_q[dim / 2] = f32::NAN;
    let mut inf_q = vec![0.0f32; dim];
    inf_q[0] = f32::INFINITY;
    let ok_q = vec![0.0f32; dim];
    let probes: Vec<(VectorView<'_>, f32)> = vec![
        (VectorView::Dense(&wrong_dim), tau),
        (VectorView::Dense(&nan_q), tau),
        (VectorView::Dense(&inf_q), tau),
        (VectorView::Dense(&ok_q), -1.0),
        (VectorView::Dense(&ok_q), f32::NAN),
    ];
    let rejected = wrapper
        .serve_batch(&probes)
        .iter()
        .filter(|r| r.is_err())
        .count();
    (probes.len(), rejected)
}

/// Runs the suite over the requested datasets.
pub fn run_search_suite(
    datasets: &[PaperDataset],
    scale: Scale,
    seed: u64,
    guarded: bool,
) -> Vec<DatasetResults> {
    datasets
        .iter()
        .map(|&d| {
            eprintln!("[search-suite] {} ...", d.name());
            let ctx = DatasetContext::build(d, scale, seed);
            run_dataset(&ctx, scale, guarded)
        })
        .collect()
}

/// The `--guarded` table: validation-rejection and fallback rates next to
/// the Q-error tables. One row per method per dataset; empty when the
/// suite ran unguarded.
pub fn guard_table(all: &[DatasetResults]) -> Option<Table> {
    let mut t = Table::new(
        "Guarded Serving: Rejection and Fallback Rates",
        &[
            "Dataset",
            "Method",
            "Served",
            "Rejected",
            "Fallback rate",
            "Clamped",
            "Probes rejected",
        ],
    );
    let mut any = false;
    for d in all {
        for r in &d.results {
            let Some(g) = &r.guard else { continue };
            any = true;
            let total = g.stats.served + g.stats.rejected;
            let fb_rate = g.stats.fallbacks as f64 / total.max(1) as f64;
            t.push_row(vec![
                d.dataset.name().to_string(),
                r.method.name().to_string(),
                g.stats.served.to_string(),
                g.stats.rejected.to_string(),
                format!("{:.1}%", fb_rate * 100.0),
                g.stats.clamped.to_string(),
                format!("{}/{}", g.probes_rejected, g.probes_sent),
            ]);
        }
    }
    any.then_some(t)
}

/// Table 4: Q-error summaries per dataset and method.
pub fn table4(all: &[DatasetResults]) -> Vec<Table> {
    all.iter()
        .map(|d| {
            let mut t = Table::new(
                format!(
                    "Table 4 ({}): Test Q-errors for Similarity Search",
                    d.dataset.name()
                ),
                &["Method", "Mean", "Median", "90th", "95th", "99th", "Max"],
            );
            for r in &d.results {
                let q = r.q_errors;
                t.push_row(vec![
                    r.method.name().to_string(),
                    fmt3(q.mean),
                    fmt3(q.median),
                    fmt3(q.p90),
                    fmt3(q.p95),
                    fmt3(q.p99),
                    fmt3(q.max),
                ]);
            }
            t
        })
        .collect()
}

/// Fig. 8: MAPE of the learned methods.
pub fn fig8(all: &[DatasetResults]) -> Table {
    let learned = [
        Method::Mlp,
        Method::Qes,
        Method::CardNet,
        Method::GlMlp,
        Method::GlCnn,
        Method::GlPlus,
    ];
    let mut header = vec!["Method"];
    let names: Vec<String> = all.iter().map(|d| d.dataset.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new("Figure 8: MAPE of Different Methods", &header);
    for m in learned {
        let mut row = vec![m.name().to_string()];
        for d in all {
            let v = d
                .results
                .iter()
                .find(|r| r.method.name() == m.name())
                .map_or(f32::NAN, |r| r.mape_mean);
            row.push(fmt3(v));
        }
        t.push_row(row);
    }
    t
}

/// Table 5: model sizes.
pub fn table5(all: &[DatasetResults]) -> Table {
    let order = [
        Method::Sampling1,
        Method::Mlp,
        Method::Qes,
        Method::CardNet,
        Method::GlMlp,
        Method::GlCnn,
        Method::GlPlus,
    ];
    let mut header = vec!["Model"];
    let names: Vec<String> = all.iter().map(|d| d.dataset.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new("Table 5: Model Size Comparison (KB)", &header);
    for m in order {
        let mut row = vec![m.name().to_string()];
        for d in all {
            let v = d
                .results
                .iter()
                .find(|r| r.method.name() == m.name())
                .map_or(0, |r| r.model_bytes);
            row.push(format!("{:.1}", v as f64 / 1024.0));
        }
        t.push_row(row);
    }
    t
}

/// Table 6: average estimation latency per query.
pub fn table6(all: &[DatasetResults]) -> Table {
    let order = [
        Method::KernelBased,
        Method::Sampling10,
        Method::Sampling1,
        Method::CardNet,
        Method::LocalPlus,
        Method::GlMlp,
        Method::GlCnn,
        Method::GlPlus,
        Method::Mlp,
        Method::Qes,
    ];
    let mut header = vec!["Model"];
    let names: Vec<String> = all.iter().map(|d| d.dataset.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new(
        "Table 6: Avg. Latency for Similarity Search (microseconds)",
        &header,
    );
    // SimSelect row first, as in the paper.
    let mut row = vec!["SimSelect".to_string()];
    for d in all {
        row.push(format!("{:.1}", d.simselect_latency.as_secs_f64() * 1e6));
    }
    t.push_row(row);
    for m in order {
        let mut row = vec![m.name().to_string()];
        for d in all {
            let v = d
                .results
                .iter()
                .find(|r| r.method.name() == m.name())
                .map_or(f64::NAN, |r| r.avg_latency.as_secs_f64() * 1e6);
            row.push(format!("{v:.1}"));
        }
        t.push_row(row);
    }
    t
}

/// Fig. 14: training time and query (label) construction time.
pub fn fig14(all: &[DatasetResults]) -> Table {
    let order = [
        Method::Mlp,
        Method::Qes,
        Method::CardNet,
        Method::GlMlp,
        Method::GlCnn,
        Method::GlPlus,
    ];
    let mut header = vec!["Phase"];
    let names: Vec<String> = all.iter().map(|d| d.dataset.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new("Figure 14: Training and Label Time", &header);
    let mut label_row = vec!["Label (query construction)".to_string()];
    for d in all {
        label_row.push(fmt_duration(d.workload_time));
    }
    t.push_row(label_row);
    for m in order {
        let mut row = vec![format!("Train {}", m.name())];
        for d in all {
            let v = d
                .results
                .iter()
                .find(|r| r.method.name() == m.name())
                .map_or(Duration::ZERO, |r| r.train_time);
            row.push(fmt_duration(v));
        }
        t.push_row(row);
    }
    t
}
