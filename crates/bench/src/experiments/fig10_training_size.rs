//! Fig. 10 / Exp-7: mean Q-error vs training-set size, for GL+, GL-MLP
//! and QES on BMS and ImageNET (the paper shows these two datasets; the
//! other four behave similarly).

use crate::context::{DatasetContext, Scale};
use crate::methods::MethodConfigs;
use crate::report::{fmt3, Table};
use cardest_baselines::traits::TrainingSet;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::qes::QesEstimator;
use cardest_data::paper::PaperDataset;
use cardest_nn::metrics::ErrorSummary;

/// The training-sample sizes swept (the paper sweeps 500–4000 queries; a
/// "size" here is a (q, τ) sample, 10 per query).
pub fn sweep_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![500, 2000, 8000],
        Scale::Smoke => vec![100, 200, 400],
    }
}

fn mean_qerr_for(
    ctx: &DatasetContext,
    variant: Option<GlVariant>,
    n_train: usize,
    scale: Scale,
) -> f32 {
    let cfgs = MethodConfigs::for_scale(scale, ctx.seed);
    let train = ctx.search.with_train_size(n_train);
    let training = TrainingSet::new(&ctx.search.queries, &train);
    let pairs: Vec<(f32, f32)> = match variant {
        Some(v) => {
            let cfg = GlConfig {
                variant: v,
                ..cfgs.gl
            };
            let est = GlEstimator::train(
                &ctx.data,
                ctx.spec.metric,
                &training,
                &ctx.search.table,
                &cfg,
            );
            ctx.search
                .test
                .iter()
                .map(|s| {
                    (
                        cardest_baselines::traits::CardinalityEstimator::estimate(
                            &est,
                            ctx.search.queries.view(s.query),
                            s.tau,
                        ),
                        s.card,
                    )
                })
                .collect()
        }
        None => {
            let (est, _) =
                QesEstimator::train(&ctx.data, ctx.spec.metric, &training, &cfgs.qes, ctx.seed);
            ctx.search
                .test
                .iter()
                .map(|s| {
                    (
                        cardest_baselines::traits::CardinalityEstimator::estimate(
                            &est,
                            ctx.search.queries.view(s.query),
                            s.tau,
                        ),
                        s.card,
                    )
                })
                .collect()
        }
    };
    ErrorSummary::from_q_errors(&pairs).mean
}

pub fn run(scale: Scale, seed: u64) -> Vec<Table> {
    let datasets = [PaperDataset::Bms, PaperDataset::ImageNet];
    datasets
        .iter()
        .map(|&d| {
            let ctx = DatasetContext::build(d, scale, seed);
            let sizes = sweep_sizes(scale);
            let mut header: Vec<String> = vec!["Method".into()];
            header.extend(sizes.iter().map(|s| s.to_string()));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut t = Table::new(
                format!("Figure 10 ({}): Mean Q-error vs Training Size", d.name()),
                &header_refs,
            );
            for (name, variant) in [
                ("GL+", Some(GlVariant::GlPlus)),
                ("GL-MLP", Some(GlVariant::GlMlp)),
                ("QES", None),
            ] {
                eprintln!("[fig10] {} {} ...", d.name(), name);
                let mut row = vec![name.to_string()];
                for &n in &sizes {
                    let n = n.min(ctx.search.train.len());
                    row.push(fmt3(mean_qerr_for(&ctx, variant, n, scale)));
                }
                t.push_row(row);
            }
            t
        })
        .collect()
}
