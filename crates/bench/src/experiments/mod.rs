//! One module per paper table/figure. Every experiment returns
//! [`crate::report::Table`]s so the `exp` binary can print them and write
//! markdown for EXPERIMENTS.md.

pub mod ablations;
pub mod fig10_training_size;
pub mod fig11_segments;
pub mod fig15_updates;
pub mod fig9_penalty;
pub mod join_suite;
pub mod search_suite;
pub mod table3_datasets;

pub use join_suite::run_join_suite;
pub use search_suite::run_search_suite;
