//! Table 3: dataset statistics (the scaled synthetic stand-ins).

use crate::context::Scale;
use crate::report::Table;
use cardest_data::paper::paper_datasets;

pub fn run(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 3: Datasets (scaled synthetic stand-ins)",
        &[
            "Dataset",
            "Dimension",
            "#Data",
            "#Training",
            "#Testing",
            "Metric",
            "tau_max",
        ],
    );
    for spec in paper_datasets() {
        let spec = scale.apply(spec);
        t.push_row(vec![
            spec.dataset.name().to_string(),
            spec.dim.to_string(),
            spec.n_data.to_string(),
            // Table 3 counts training/testing *samples* (queries × 10
            // thresholds), matching the paper's #Training column scale.
            (spec.n_train_queries * cardest_data::workload::THRESHOLDS_PER_QUERY).to_string(),
            (spec.n_test_queries * cardest_data::workload::THRESHOLDS_PER_QUERY).to_string(),
            format!("{:?}", spec.metric),
            format!("{:.2}", spec.tau_max),
        ]);
    }
    t
}
