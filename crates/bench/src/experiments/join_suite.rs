//! The similarity-join evaluation suite: Table 7 (join Q-errors for set
//! sizes in [50,100)), Fig. 12 (errors vs set size), Fig. 13 (batch vs
//! single-embedding latency at set size 200) — Exp-12 and Exp-13.

use crate::context::{DatasetContext, Scale};
use crate::methods::MethodConfigs;
use crate::report::{fmt3, Table};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_baselines::{CardNet, SamplingEstimator};
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::join::{JoinConfig, JoinEstimator, JoinVariant};
use cardest_data::paper::PaperDataset;
use cardest_data::workload::{JoinSet, JoinWorkload};
use cardest_nn::metrics::{mape, q_error, ErrorSummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Per-method join results on one dataset.
pub struct JoinMethodResult {
    pub name: &'static str,
    /// One summary per size bucket ([50,100), [100,150), [150,200)).
    pub buckets: Vec<ErrorSummary>,
    pub mape_buckets: Vec<f32>,
    /// Average latency for a 200-member join set.
    pub latency_200: Duration,
}

pub struct JoinDatasetResults {
    pub dataset: PaperDataset,
    pub results: Vec<JoinMethodResult>,
}

fn eval_join_buckets(
    est: &dyn CardinalityEstimator,
    ctx: &DatasetContext,
    jw: &JoinWorkload,
) -> (Vec<ErrorSummary>, Vec<f32>) {
    let mut summaries = Vec::new();
    let mut mapes = Vec::new();
    for bucket in &jw.test_buckets {
        let mut q = Vec::new();
        let mut m = Vec::new();
        for set in bucket {
            let e = est.estimate_join(&ctx.search.queries, &set.query_ids, set.tau);
            q.push(q_error(e, set.card));
            m.push(mape(e, set.card));
        }
        summaries.push(ErrorSummary::from_errors(&q));
        mapes.push(m.iter().sum::<f32>() / m.len().max(1) as f32);
    }
    (summaries, mapes)
}

/// Average latency of estimating a 200-member join set (Fig. 13's
/// setting), drawing members from the test pool.
fn join_latency_200(
    est: &dyn CardinalityEstimator,
    ctx: &DatasetContext,
    tau: f32,
    trials: usize,
) -> Duration {
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x200);
    let n_train = ctx.search.n_train_queries;
    let n_total = ctx.search.queries.len();
    let start = Instant::now();
    for _ in 0..trials {
        let ids: Vec<usize> = (0..200)
            .map(|_| n_train + rng.gen_range(0..n_total - n_train))
            .collect();
        let _ = est.estimate_join(&ctx.search.queries, &ids, tau);
    }
    start.elapsed() / trials.max(1) as u32
}

/// Runs the join suite on one dataset: our three join variants, the
/// search-model GL+ baseline, CardNet and the sampling variants.
pub fn run_dataset(ctx: &DatasetContext, scale: Scale) -> JoinDatasetResults {
    let jw = ctx.join_workload(scale);
    let cfgs = MethodConfigs::for_scale(scale, ctx.seed);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let tau_latency = jw.test_buckets[0]
        .first()
        .map_or(ctx.spec.tau_max * 0.2, |s| s.tau);
    let latency_trials = match scale {
        Scale::Full => 10,
        Scale::Smoke => 2,
    };

    let mut results: Vec<JoinMethodResult> = Vec::new();
    let measure = |name: &'static str, est: &dyn CardinalityEstimator| {
        let (buckets, mape_buckets) = eval_join_buckets(est, ctx, &jw);
        let latency_200 = join_latency_200(est, ctx, tau_latency, latency_trials);
        JoinMethodResult {
            name,
            buckets,
            mape_buckets,
            latency_200,
        }
    };

    // Train the GL+ search model once; share it between the "GL+" join
    // baseline (per-query evaluation) and GLJoin+ (transferred + tuned).
    eprintln!("[join-suite] {}: GL+ base ...", ctx.dataset.name());
    let gl_plus = GlEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &GlConfig {
            variant: GlVariant::GlPlus,
            ..cfgs.gl.clone()
        },
    );

    // GLJoin+ (transfer + fine-tune).
    let mut jcfg_plus = JoinConfig::for_variant(JoinVariant::GlJoinPlus);
    jcfg_plus.seed = ctx.seed;
    let gljoin_plus = JoinEstimator::from_search_model(
        gl_plus.clone(),
        &ctx.search.queries,
        &jw.train,
        &jcfg_plus,
    );
    results.push(measure("GLJoin+", &gljoin_plus));

    // GL+ evaluated per member query (search model as join baseline).
    results.push(measure("GL+", &gl_plus));

    // Sampling (10%).
    let s10 =
        SamplingEstimator::with_ratio(&ctx.data, ctx.spec.metric, 0.10, ctx.seed, "Sampling (10%)");
    results.push(measure("Sampling (10%)", &s10));

    // GLJoin (GL-MLP base).
    eprintln!("[join-suite] {}: GLJoin ...", ctx.dataset.name());
    let mut jcfg = JoinConfig::for_variant(JoinVariant::GlJoin);
    jcfg.base = GlConfig {
        variant: GlVariant::GlMlp,
        ..cfgs.gl.clone()
    };
    jcfg.seed = ctx.seed;
    let gljoin = JoinEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &jw.train,
        &jcfg,
    );
    results.push(measure("GLJoin", &gljoin));

    // CNNJoin (QES base, sum pooling, no data segmentation).
    eprintln!("[join-suite] {}: CNNJoin ...", ctx.dataset.name());
    let mut jcfg_cnn = JoinConfig::for_variant(JoinVariant::CnnJoin);
    jcfg_cnn.qes = cfgs.qes.clone();
    jcfg_cnn.seed = ctx.seed;
    let cnnjoin = JoinEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &jw.train,
        &jcfg_cnn,
    );
    results.push(measure("CNNJoin", &cnnjoin));

    // CardNet per-query baseline.
    let cardnet = CardNet::train(&training, ctx.spec.tau_max, &cfgs.cardnet, ctx.seed).0;
    results.push(measure("CardNet", &cardnet));

    // Sampling (equal) and Sampling (1%).
    let seq = SamplingEstimator::with_equal_bytes(
        &ctx.data,
        ctx.spec.metric,
        gl_plus.model_bytes(),
        ctx.seed,
    );
    results.push(measure("Sampling (equal)", &seq));
    let s1 =
        SamplingEstimator::with_ratio(&ctx.data, ctx.spec.metric, 0.01, ctx.seed, "Sampling (1%)");
    results.push(measure("Sampling (1%)", &s1));

    JoinDatasetResults {
        dataset: ctx.dataset,
        results,
    }
}

pub fn run_join_suite(
    datasets: &[PaperDataset],
    scale: Scale,
    seed: u64,
) -> Vec<JoinDatasetResults> {
    datasets
        .iter()
        .map(|&d| {
            let ctx = DatasetContext::build(d, scale, seed);
            run_dataset(&ctx, scale)
        })
        .collect()
}

/// Table 7: join Q-errors for set size ∈ [50, 100).
pub fn table7(all: &[JoinDatasetResults]) -> Vec<Table> {
    all.iter()
        .map(|d| {
            let mut t = Table::new(
                format!(
                    "Table 7 ({}): Test Errors for Similarity Join (size in [50,100))",
                    d.dataset.name()
                ),
                &["Method", "Mean", "Median", "90th", "95th", "99th", "Max"],
            );
            for r in &d.results {
                let q = r.buckets[0];
                t.push_row(vec![
                    r.name.to_string(),
                    fmt3(q.mean),
                    fmt3(q.median),
                    fmt3(q.p90),
                    fmt3(q.p95),
                    fmt3(q.p99),
                    fmt3(q.max),
                ]);
            }
            t
        })
        .collect()
}

/// Fig. 12: GLJoin+ error vs join set size bucket.
pub fn fig12(all: &[JoinDatasetResults]) -> Table {
    let mut t = Table::new(
        "Figure 12: Join Errors with Query Set Size (GLJoin+)",
        &[
            "Dataset",
            "Q-err [50,100)",
            "Q-err [100,150)",
            "Q-err [150,200)",
            "MAPE [50,100)",
            "MAPE [100,150)",
            "MAPE [150,200)",
        ],
    );
    for d in all {
        if let Some(r) = d.results.iter().find(|r| r.name == "GLJoin+") {
            t.push_row(vec![
                d.dataset.name().to_string(),
                fmt3(r.buckets[0].mean),
                fmt3(r.buckets[1].mean),
                fmt3(r.buckets[2].mean),
                fmt3(r.mape_buckets[0]),
                fmt3(r.mape_buckets[1]),
                fmt3(r.mape_buckets[2]),
            ]);
        }
    }
    t
}

/// Fig. 13: average latency for a 200-query join set, batch (GLJoin+) vs
/// single-query (GL+) embedding plus baselines.
pub fn fig13(all: &[JoinDatasetResults]) -> Table {
    let methods = [
        "GLJoin+",
        "GL+",
        "CNNJoin",
        "GLJoin",
        "Sampling (10%)",
        "Sampling (1%)",
    ];
    let mut header = vec!["Method"];
    let names: Vec<String> = all.iter().map(|d| d.dataset.name().to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new(
        "Figure 13: Avg. Latency for Similarity Join, query size = 200 (ms)",
        &header,
    );
    for m in methods {
        let mut row = vec![m.to_string()];
        for d in all {
            let v = d
                .results
                .iter()
                .find(|r| r.name == m)
                .map_or(f64::NAN, |r| r.latency_200.as_secs_f64() * 1e3);
            row.push(format!("{v:.2}"));
        }
        t.push_row(row);
    }
    t
}

/// Convenience for benches: exact summed cardinality of a join set.
pub fn exact_join_card(ctx: &DatasetContext, set: &JoinSet) -> f32 {
    set.query_ids
        .iter()
        .map(|&q| ctx.search.table.cardinality(q, set.tau) as f32)
        .sum()
}
