//! Ablation benches beyond the paper's experiments, probing the design
//! choices DESIGN.md calls out:
//!
//! 1. λ sweep in the hybrid loss (§3.1 leaves λ "a tunable weight"),
//! 2. segmentation method: PCA+k-means vs PCA+DBSCAN vs PCA+LSH (§3.3
//!    asserts k-means wins on both accuracy and efficiency),
//! 3. strict vs paper-default monotonicity in the MLP estimator.

use crate::context::{DatasetContext, Scale};
use crate::report::{fmt3, fmt_duration, Table};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_baselines::{MlpConfig, MlpEstimator};
use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_core::qes::{QesConfig, QesEstimator};
use cardest_data::paper::PaperDataset;
use cardest_nn::metrics::ErrorSummary;
use cardest_nn::trainer::TrainConfig;
use std::time::Instant;

fn epochs(scale: Scale) -> usize {
    match scale {
        Scale::Full => 30,
        Scale::Smoke => 8,
    }
}

/// λ sweep: QES on ImageNET with λ ∈ {0, 0.25, 0.5, 1, 2}.
pub fn lambda_sweep(scale: Scale, seed: u64) -> Table {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, scale, seed);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let mut t = Table::new(
        "Ablation: hybrid-loss lambda sweep (QES, ImageNET)",
        &["lambda", "Mean Q-error", "Median", "Max"],
    );
    for lambda in [0.0f32, 0.25, 0.5, 1.0, 2.0] {
        let cfg = QesConfig {
            train: TrainConfig {
                epochs: epochs(scale),
                lambda,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let (est, _) = QesEstimator::train(&ctx.data, ctx.spec.metric, &training, &cfg, seed);
        let pairs: Vec<(f32, f32)> = ctx
            .search
            .test
            .iter()
            .map(|s| {
                (
                    est.estimate(ctx.search.queries.view(s.query), s.tau),
                    s.card,
                )
            })
            .collect();
        let q = ErrorSummary::from_q_errors(&pairs);
        t.push_row(vec![
            format!("{lambda}"),
            fmt3(q.mean),
            fmt3(q.median),
            fmt3(q.max),
        ]);
    }
    t
}

/// Segmentation-method comparison (the §3.3 claim): fit time and cohesion
/// of PCA+k-means vs PCA+DBSCAN vs PCA+LSH.
pub fn segmentation_methods(scale: Scale, seed: u64) -> Table {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, scale, seed);
    let mut t = Table::new(
        "Ablation: segmentation method (ImageNET)",
        &[
            "Method",
            "#Segments",
            "Fit time",
            "Cohesion (mean intra dist)",
        ],
    );
    for (name, method) in [
        ("PCA+KMeans", SegmentationMethod::PcaKMeans),
        ("PCA+DBSCAN", SegmentationMethod::PcaDbscan),
        ("PCA+LSH", SegmentationMethod::PcaLsh),
    ] {
        let cfg = SegmentationConfig {
            n_segments: 16,
            method,
            seed,
            ..Default::default()
        };
        let start = Instant::now();
        let seg = Segmentation::fit(&ctx.data, ctx.spec.metric, &cfg);
        let fit = start.elapsed();
        let cohesion = seg.cohesion(&ctx.data, 100, seed);
        t.push_row(vec![
            name.to_string(),
            seg.n_segments().to_string(),
            fmt_duration(fit),
            fmt3(cohesion),
        ]);
    }
    t
}

/// Strict-monotonic vs paper-default threshold handling in the basic MLP.
pub fn monotonicity_modes(scale: Scale, seed: u64) -> Table {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, scale, seed);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let mut t = Table::new(
        "Ablation: monotonicity mode (MLP, ImageNET)",
        &[
            "Mode",
            "Mean Q-error",
            "Monotonicity violations (of 200 cases)",
        ],
    );
    for (name, strict) in [("paper (E2 only)", false), ("strict (full tau-path)", true)] {
        let cfg = MlpConfig {
            strict_monotonic: strict,
            train: TrainConfig {
                epochs: epochs(scale),
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        let (est, _) = MlpEstimator::train(&ctx.data, ctx.spec.metric, &training, &cfg, seed);
        let pairs: Vec<(f32, f32)> = ctx
            .search
            .test
            .iter()
            .map(|s| {
                (
                    est.estimate(ctx.search.queries.view(s.query), s.tau),
                    s.card,
                )
            })
            .collect();
        let q = ErrorSummary::from_q_errors(&pairs);
        // Count τ-monotonicity violations on a grid of (query, τ) pairs.
        let mut violations = 0usize;
        let mut cases = 0usize;
        for qid in 0..20.min(ctx.search.queries.len()) {
            let mut prev = f32::NEG_INFINITY;
            for i in 0..=10 {
                let tau = ctx.spec.tau_max * i as f32 / 10.0;
                let e = est.estimate(ctx.search.queries.view(qid), tau);
                if i > 0 {
                    cases += 1;
                    if e < prev - prev.abs() * 1e-5 - 1e-5 {
                        violations += 1;
                    }
                }
                prev = e;
            }
        }
        t.push_row(vec![
            name.to_string(),
            fmt3(q.mean),
            format!("{violations} / {cases}"),
        ]);
    }
    t
}

pub fn run_all(scale: Scale, seed: u64) -> Vec<Table> {
    vec![
        lambda_sweep(scale, seed),
        segmentation_methods(scale, seed),
        monotonicity_modes(scale, seed),
    ]
}
