//! Shared experiment context: one generated dataset plus its labelled
//! search and join workloads, built once per dataset and reused by every
//! method under test.

use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorData;
use cardest_data::workload::{JoinWorkload, SearchWorkload};

/// Experiment scale: `Full` runs the scaled paper specification (used for
/// the numbers in EXPERIMENTS.md), `Smoke` shrinks everything so the whole
/// suite runs in seconds (used by the Criterion benches and CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Full,
    Smoke,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Some(Scale::Full),
            "smoke" | "small" => Some(Scale::Smoke),
            _ => None,
        }
    }

    /// Applies the scale to a dataset specification.
    pub fn apply(self, spec: DatasetSpec) -> DatasetSpec {
        match self {
            Scale::Full => spec,
            Scale::Smoke => DatasetSpec {
                n_data: (spec.n_data / 10).max(600),
                n_train_queries: (spec.n_train_queries / 8).max(40),
                n_test_queries: (spec.n_test_queries / 8).max(15),
                ..spec
            },
        }
    }
}

/// One dataset with its workloads, generated deterministically.
pub struct DatasetContext {
    pub dataset: PaperDataset,
    pub spec: DatasetSpec,
    pub data: VectorData,
    pub search: SearchWorkload,
    /// Time spent constructing + labelling the training queries — the
    /// "query construction time" Fig. 14 reports.
    pub workload_time: std::time::Duration,
    pub seed: u64,
}

impl DatasetContext {
    /// Generates the dataset and its labelled search workload.
    pub fn build(dataset: PaperDataset, scale: Scale, seed: u64) -> Self {
        let spec = scale.apply(dataset.spec());
        let data = spec.generate(seed);
        let start = std::time::Instant::now();
        let search = SearchWorkload::build(&data, &spec, seed);
        let workload_time = start.elapsed();
        DatasetContext {
            dataset,
            spec,
            data,
            search,
            workload_time,
            seed,
        }
    }

    /// Builds the join workload on top of the search workload.
    pub fn join_workload(&self, scale: Scale) -> JoinWorkload {
        let (n_train, n_test) = match scale {
            Scale::Full => (200, 20),
            Scale::Smoke => (30, 5),
        };
        JoinWorkload::build(&self.search, n_train, n_test, self.seed)
    }

    /// All six datasets at the given scale.
    pub fn all(scale: Scale, seed: u64) -> impl Iterator<Item = DatasetContext> {
        PaperDataset::ALL
            .into_iter()
            .map(move |d| DatasetContext::build(d, scale, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_accepts_known_values() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("SMOKE"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("small"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("tiny"), None);
    }

    #[test]
    fn smoke_scale_shrinks_but_keeps_metric_and_dim() {
        let full = PaperDataset::ImageNet.spec();
        let smoke = Scale::Smoke.apply(full);
        assert!(smoke.n_data < full.n_data);
        assert!(smoke.n_train_queries < full.n_train_queries);
        assert_eq!(smoke.dim, full.dim);
        assert_eq!(smoke.metric, full.metric);
        assert_eq!(smoke.tau_max, full.tau_max);
    }

    #[test]
    fn context_builds_consistent_workload() {
        let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 7);
        assert_eq!(ctx.data.len(), ctx.spec.n_data);
        assert_eq!(
            ctx.search.queries.len(),
            ctx.spec.n_train_queries + ctx.spec.n_test_queries
        );
        assert!(ctx.workload_time.as_nanos() > 0);
        // Join workload respects the smoke sizing.
        let jw = ctx.join_workload(Scale::Smoke);
        assert_eq!(jw.train.len(), 30);
        assert_eq!(jw.test_buckets[0].len(), 5);
    }
}
