//! Collates the markdown tables written by `exp ... --out <dir>` into a
//! single report fragment, ordered like the paper's evaluation section —
//! the tool that refreshes the measured half of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p cardest-bench --bin collate -- results >> EXPERIMENTS.md
//! ```

use std::path::Path;

/// Filename prefixes in presentation order (a prefix matches every
/// per-dataset table of that artifact).
const ORDER: &[&str] = &[
    "table_3",
    "table_4",
    "figure_8",
    "table_5",
    "table_6",
    "figure_14",
    "figure_9",
    "figure_10",
    "figure_11",
    "figure_15",
    "table_7",
    "figure_12",
    "figure_13",
    "ablation",
];

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let dir = Path::new(&dir);
    let mut entries: Vec<String> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".md"))
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    let mut printed = 0usize;
    for prefix in ORDER {
        for name in entries.iter().filter(|n| n.starts_with(prefix)) {
            let path = dir.join(name);
            match std::fs::read_to_string(&path) {
                Ok(contents) => {
                    println!("{contents}");
                    printed += 1;
                }
                Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
            }
        }
    }
    // Anything not matched by the known prefixes goes last.
    for name in &entries {
        if !ORDER.iter().any(|p| name.starts_with(p)) {
            if let Ok(contents) = std::fs::read_to_string(dir.join(name)) {
                println!("{contents}");
                printed += 1;
            }
        }
    }
    eprintln!("[collate] emitted {printed} tables from {}", dir.display());
}
