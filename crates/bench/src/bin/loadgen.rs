//! `loadgen` — drive the estimation server over real sockets and write
//! `BENCH_serving.json`.
//!
//! Starts a `cardest-server` in-process (ephemeral port), then measures:
//!
//! 1. **single** — closed-loop single-query `POST /estimate` latency
//!    (client-observed p50/p99) and throughput,
//! 2. **batch** — the same query volume shipped as `POST /estimate_batch`
//!    (the coalesced/batched serving path the paper's batched kernels
//!    feed), per-query amortized latency and throughput,
//! 3. **saturation** — a client ramp; the peak QPS across the ramp is
//!    reported as `qps_at_saturation`,
//! 4. **hot_reload** — sustained load while the model registry swaps
//!    generations (healthy and corrupt artifacts alternating); the
//!    acceptance bar is zero failed requests and every corrupt reload
//!    rejected.
//!
//! A fifth mode, `--ingest`, benchmarks the mutable serving path instead
//! and writes `BENCH_ingest.json`: a mixed insert/estimate workload
//! (client-observed insert p50/p99 while estimates run concurrently) and
//! a recovery-time-vs-WAL-length sweep at the store layer.
//!
//! A sixth mode, `--replicate`, benchmarks the warm-standby pair and
//! writes `BENCH_replication.json`: primary insert latency solo vs with
//! a live streaming standby vs with a dead (stalled) standby session,
//! steady-state catch-up time, and failover time (promote + first
//! accepted insert on the promoted node).
//!
//! Usage: `cargo run --release -p cardest-bench --bin loadgen [--quick]
//! [--ingest] [--replicate] [--out PATH]`.

use cardest_baselines::mlp::{MlpConfig, MlpEstimator};
use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_core::drift::DriftConfig;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorView;
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use cardest_server::client::HttpClient;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::repr_of;
use cardest_server::registry::SharedFallback;
use cardest_server::{
    IngestService, ModelRegistry, RegistryConfig, Server, ServerConfig, ServerHandle,
};
use cardest_store::{DurableIngest, StoreConfig};
use serde::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    out: PathBuf,
    quick: bool,
    ingest: bool,
    replicate: bool,
}

fn parse_args() -> Args {
    let mut out: Option<PathBuf> = None;
    let mut quick = false;
    let mut ingest = false;
    let mut replicate = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().expect("--out needs a value"))),
            "--quick" => quick = true,
            "--ingest" => ingest = true,
            "--replicate" => replicate = true,
            other => {
                panic!(
                    "unknown flag {other:?} (usage: loadgen [--quick] [--ingest] [--replicate] [--out PATH])"
                )
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(if replicate {
            "BENCH_replication.json"
        } else if ingest {
            "BENCH_ingest.json"
        } else {
            "BENCH_serving.json"
        })
    });
    Args {
        out,
        quick,
        ingest,
        replicate,
    }
}

struct Bench {
    handle: ServerHandle,
    addr: SocketAddr,
    dir: PathBuf,
    artifact_a: PathBuf,
    artifact_b: PathBuf,
    bodies: Vec<String>,
}

fn setup(quick: bool) -> Bench {
    let spec = DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 64,
        n_data: if quick { 1_000 } else { 4_000 },
        n_train_queries: if quick { 24 } else { 64 },
        n_test_queries: 8,
        metric: Metric::Angular,
        tau_max: 0.6,
    };
    eprintln!(
        "loadgen: generating {}d x {} dataset and training the serving model",
        spec.dim, spec.n_data
    );
    let data = spec.generate(13);
    let workload = SearchWorkload::build(&data, &spec, 13);
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let mut cfg = MlpConfig::default();
    cfg.train.epochs = if quick { 3 } else { 6 };

    let dir = std::env::temp_dir().join(format!("cardest-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact_a = dir.join("model_a.cardest");
    let artifact_b = dir.join("model_b.cardest");
    for (path, seed) in [(&artifact_a, 1u64), (&artifact_b, 2u64)] {
        let (model, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, seed);
        model.save_artifact(path).unwrap();
    }

    let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
        &data,
        spec.metric,
        0.01,
        13,
        "Sampling 1%",
    ));
    let registry = ModelRegistry::new(
        RegistryConfig {
            n_data: data.len(),
            dim: data.dim(),
            repr: repr_of(&data),
            monotone: true,
        },
        fallback,
        &artifact_a,
    )
    .unwrap();
    let handle = Server::start(
        ServerConfig {
            workers: 6,
            coalesce: CoalesceConfig {
                window: Duration::from_micros(200),
                max_batch: 64,
                cap: 4096,
            },
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .unwrap();
    let addr = handle.addr();

    // Pre-render request bodies from real dataset rows.
    let bodies: Vec<String> = (0..256)
        .map(|i| {
            let row = match data.view(i % data.len()) {
                cardest_data::vector::VectorView::Dense(r) => r,
                other => panic!("dense expected, got {other:?}"),
            };
            let comps: Vec<String> = row.iter().map(|v| format!("{v:.5}")).collect();
            let tau = 0.1 + 0.05 * (i % 9) as f32;
            format!("{{\"query\":[{}],\"tau\":{tau:.2}}}", comps.join(","))
        })
        .collect();

    Bench {
        handle,
        addr,
        dir,
        artifact_a,
        artifact_b,
        bodies,
    }
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Closed-loop run: `clients` threads each fire `per_client` requests at
/// `path` with rotating bodies. Returns (sorted latencies µs, elapsed).
fn closed_loop(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    clients: usize,
    per_client: usize,
    path: &'static str,
) -> (Vec<u64>, Duration) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = &bodies[(t * 97 + i) % bodies.len()];
                    let t0 = Instant::now();
                    let r = c.post_json(path, body).unwrap();
                    let us = t0.elapsed().as_micros() as u64;
                    assert_eq!(r.status, 200, "{}", r.text());
                    lat.push(us);
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let elapsed = start.elapsed();
    all.sort_unstable();
    (all, elapsed)
}

fn lat_summary(sorted: &[u64], queries: usize, elapsed: Duration) -> Value {
    Value::Map(vec![
        ("requests".to_string(), Value::UInt(sorted.len() as u64)),
        ("queries".to_string(), Value::UInt(queries as u64)),
        (
            "p50_us".to_string(),
            Value::UInt(percentile_us(sorted, 0.50)),
        ),
        (
            "p99_us".to_string(),
            Value::UInt(percentile_us(sorted, 0.99)),
        ),
        (
            "mean_us".to_string(),
            Value::Float(sorted.iter().sum::<u64>() as f64 / sorted.len().max(1) as f64),
        ),
        (
            "qps".to_string(),
            Value::Float(queries as f64 / elapsed.as_secs_f64()),
        ),
    ])
}

/// Trains the tiny GL stack the ingest bench serves and mutates.
fn build_updatable(spec: &DatasetSpec, seed: u64) -> UpdatableGl {
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, spec, seed);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        n_segments: 4,
        local_train: TrainConfig {
            epochs: 3,
            batch_size: 64,
            ..Default::default()
        },
        global_train: TrainConfig {
            epochs: 4,
            batch_size: 64,
            ..Default::default()
        },
        tuning: TuningConfig::fast(),
        tuning_segments: 1,
        ..Default::default()
    };
    let training = TrainingSet::new(&w.queries, &w.train);
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    UpdatableGl::new(
        data,
        spec.metric,
        gl,
        w.queries,
        w.train,
        w.test,
        &w.table,
        UpdateConfig::default(),
    )
}

fn dense_row(upd: &UpdatableGl, row: usize) -> Vec<f32> {
    match upd.data().view(row) {
        VectorView::Dense(r) => r.to_vec(),
        other => panic!("dense expected, got {other:?}"),
    }
}

/// `--ingest`: mixed insert/estimate workload over the mutable server,
/// then a store-layer recovery-cost sweep; writes `BENCH_ingest.json`.
fn run_ingest(args: &Args) {
    let n_data = if args.quick { 800 } else { 2_000 };
    let spec = DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 16,
        n_data,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    };
    eprintln!("loadgen --ingest: training the {n_data}-row GL serving model");
    let upd = build_updatable(&spec, 17);
    let base_state = upd.snapshot_json().unwrap();

    let dir = std::env::temp_dir().join(format!("cardest-loadgen-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.cardest");
    upd.gl().save_artifact(&model_path).unwrap();

    // Stationary insert bodies (scattered duplicates of existing rows) so
    // the drift monitor — running at its default cadence on the request
    // path — stays quiet and the numbers measure the durable write path.
    let insert_bodies: Vec<String> = (0..256)
        .map(|i| {
            let row = dense_row(&upd, (i * 37 + 11) % n_data);
            let comps: Vec<String> = row.iter().map(|v| format!("{v:.5}")).collect();
            format!("{{\"point\":[{}]}}", comps.join(","))
        })
        .collect();
    let estimate_bodies: Vec<String> = (0..256)
        .map(|i| {
            let row = dense_row(&upd, (i * 53 + 5) % n_data);
            let comps: Vec<String> = row.iter().map(|v| format!("{v:.5}")).collect();
            let tau = 0.1 + 0.05 * (i % 9) as f32;
            format!("{{\"query\":[{}],\"tau\":{tau:.2}}}", comps.join(","))
        })
        .collect();

    let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
        upd.data(),
        spec.metric,
        0.01,
        17,
        "Sampling 1%",
    ));
    let registry = Arc::new(
        ModelRegistry::new(
            RegistryConfig {
                n_data,
                dim: spec.dim,
                repr: repr_of(upd.data()),
                monotone: true,
            },
            fallback,
            &model_path,
        )
        .unwrap(),
    );
    // The durability the ack promises: sync_writes on, like production.
    let store = DurableIngest::create(
        &dir.join("store"),
        upd,
        StoreConfig {
            snapshot_every: 1024,
            sync_writes: true,
            retain_wal: false,
            rotate_bytes: 0,
        },
    )
    .unwrap();
    let svc = IngestService::new(
        store,
        DriftConfig::default(),
        dir.join("model_tuned.cardest"),
    );
    let handle = Server::start_with_ingest(
        ServerConfig {
            workers: 6,
            coalesce: CoalesceConfig {
                window: Duration::from_micros(200),
                max_batch: 64,
                cap: 4096,
            },
            ..ServerConfig::default()
        },
        registry,
        svc,
    )
    .unwrap();
    let addr = handle.addr();

    // --- mixed workload: inserts and estimates racing on one server ---
    let insert_clients = 2usize;
    let estimate_clients = 2usize;
    let inserts_per_client = if args.quick { 150 } else { 400 };
    let estimates_per_client = if args.quick { 300 } else { 800 };
    eprintln!(
        "loadgen --ingest: mixed phase ({insert_clients}x{inserts_per_client} inserts vs {estimate_clients}x{estimates_per_client} estimates)"
    );
    let ins_bodies = Arc::new(insert_bodies);
    let est_bodies = Arc::new(estimate_bodies);
    let t_ins = {
        let b = Arc::clone(&ins_bodies);
        std::thread::spawn(move || {
            closed_loop(addr, b, insert_clients, inserts_per_client, "/insert")
        })
    };
    let t_est = {
        let b = Arc::clone(&est_bodies);
        std::thread::spawn(move || {
            closed_loop(addr, b, estimate_clients, estimates_per_client, "/estimate")
        })
    };
    let (ins_lat, ins_elapsed) = t_ins.join().unwrap();
    let (est_lat, est_elapsed) = t_est.join().unwrap();
    let mixed_insert = lat_summary(&ins_lat, insert_clients * inserts_per_client, ins_elapsed);
    let mixed_estimate = lat_summary(
        &est_lat,
        estimate_clients * estimates_per_client,
        est_elapsed,
    );

    let ingest_snap = handle.ingest().unwrap().snapshot();
    let total_inserts = (insert_clients * inserts_per_client) as u64;
    assert_eq!(ingest_snap.inserts, total_inserts, "an insert was dropped");
    let server_stats_text = HttpClient::connect(addr)
        .unwrap()
        .get("/stats")
        .unwrap()
        .text();
    let server_stats: Value = serde_json::from_str(&server_stats_text).unwrap();
    handle.shutdown();

    // --- recovery time vs WAL length (store layer, no HTTP) ---
    // Same base state each round, increasingly long un-snapshotted WALs:
    // recovery = snapshot load + replay, so cost should grow linearly in
    // the record count.
    let wal_lens: &[usize] = if args.quick {
        &[100, 400]
    } else {
        &[100, 400, 1600]
    };
    let mut recovery = Vec::new();
    for &k in wal_lens {
        let updk = UpdatableGl::from_snapshot_json(&base_state).unwrap();
        let point = dense_row(&updk, 3);
        let dirk = dir.join(format!("recover-{k}"));
        let mut store = DurableIngest::create(
            &dirk,
            updk,
            StoreConfig {
                snapshot_every: 0,
                sync_writes: false,
                retain_wal: true,
                rotate_bytes: 0,
            },
        )
        .unwrap();
        for _ in 0..k {
            store.insert(VectorView::Dense(&point)).unwrap();
        }
        let wal_bytes = store.wal_len_bytes();
        drop(store);
        let t0 = Instant::now();
        let (_store, report) = DurableIngest::open(
            &dirk,
            StoreConfig {
                snapshot_every: 0,
                sync_writes: false,
                retain_wal: true,
                rotate_bytes: 0,
            },
        )
        .unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.replayed, k, "recovery lost records");
        eprintln!("loadgen --ingest: recovery of {k:>5} records ({wal_bytes} B) in {ms:.1} ms");
        recovery.push(Value::Map(vec![
            ("wal_records".to_string(), Value::UInt(k as u64)),
            ("wal_bytes".to_string(), Value::UInt(wal_bytes)),
            ("recover_ms".to_string(), Value::Float(ms)),
        ]));
    }

    let report = Value::Map(vec![
        (
            "config".to_string(),
            Value::Map(vec![
                (
                    "dataset".to_string(),
                    Value::Str("GloVe300 (synthetic)".to_string()),
                ),
                ("dim".to_string(), Value::UInt(spec.dim as u64)),
                ("n_data".to_string(), Value::UInt(n_data as u64)),
                ("workers".to_string(), Value::UInt(6)),
                ("sync_writes".to_string(), Value::Bool(true)),
                ("quick".to_string(), Value::Bool(args.quick)),
            ]),
        ),
        ("mixed_insert".to_string(), mixed_insert),
        ("mixed_estimate".to_string(), mixed_estimate),
        ("recovery".to_string(), Value::Seq(recovery)),
        ("server_stats".to_string(), server_stats),
    ]);
    std::fs::write(&args.out, serde_json::to_string(&report).unwrap()).unwrap();
    eprintln!("loadgen --ingest: wrote {}", args.out.display());
    std::fs::remove_dir_all(&dir).ok();
}

/// One node of a replication pair, hydrated from a shared snapshot so
/// the bench trains exactly once.
struct ReplNode {
    svc: Arc<IngestService>,
    handle: Option<ServerHandle>,
}

/// The pieces every bench node shares: one trained state, one artifact,
/// one fallback.
struct ReplFixture {
    dir: PathBuf,
    base_state: String,
    model_path: PathBuf,
    fallback: SharedFallback,
    dim: usize,
    n_data: usize,
}

impl ReplFixture {
    fn node(&self, tag: &str, repl: Arc<cardest_server::ReplicationState>) -> ReplNode {
        let upd = UpdatableGl::from_snapshot_json(&self.base_state).unwrap();
        let store = DurableIngest::create(
            &self.dir.join(format!("store-{tag}")),
            upd,
            StoreConfig {
                snapshot_every: 0,
                sync_writes: false,
                retain_wal: true,
                rotate_bytes: 1 << 16,
            },
        )
        .unwrap();
        let svc = IngestService::new(
            store,
            DriftConfig::default(),
            self.dir.join(format!("model_tuned-{tag}.cardest")),
        );
        let registry = Arc::new(
            ModelRegistry::new(
                RegistryConfig {
                    n_data: self.n_data,
                    dim: self.dim,
                    repr: cardest_server::model::QueryRepr::Dense,
                    monotone: true,
                },
                Arc::clone(&self.fallback),
                &self.model_path,
            )
            .unwrap(),
        );
        let handle = Server::start_replicated(
            ServerConfig {
                workers: 4,
                coalesce: CoalesceConfig {
                    window: Duration::from_micros(200),
                    max_batch: 64,
                    cap: 4096,
                },
                ..ServerConfig::default()
            },
            registry,
            Arc::clone(&svc),
            repl,
        )
        .unwrap();
        ReplNode {
            svc,
            handle: Some(handle),
        }
    }
}

/// `--replicate`: warm-standby pair benchmark; writes
/// `BENCH_replication.json`.
fn run_replicate(args: &Args) {
    use cardest_server::{ReplicationState, StandbyBridge};
    use cardest_store::replicate::{
        ListenerConfig, ReplicaClient, ReplicaClientConfig, ReplicaSource, ReplicationListener,
        StandbyTarget,
    };

    let n_data = if args.quick { 800 } else { 2_000 };
    let spec = DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 16,
        n_data,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    };
    eprintln!("loadgen --replicate: training the {n_data}-row GL serving model");
    let upd = build_updatable(&spec, 17);
    let base_state = upd.snapshot_json().unwrap();

    let dir = std::env::temp_dir().join(format!("cardest-loadgen-repl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.cardest");
    upd.gl().save_artifact(&model_path).unwrap();
    let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
        upd.data(),
        spec.metric,
        0.01,
        17,
        "Sampling 1%",
    ));
    let insert_bodies: Vec<String> = (0..256)
        .map(|i| {
            let row = dense_row(&upd, (i * 37 + 11) % n_data);
            let comps: Vec<String> = row.iter().map(|v| format!("{v:.5}")).collect();
            format!("{{\"point\":[{}]}}", comps.join(","))
        })
        .collect();
    drop(upd);
    let bodies = Arc::new(insert_bodies);
    let insert_clients = 2usize;
    let per_client = if args.quick { 150 } else { 400 };
    let total = (insert_clients * per_client) as u64;
    let fx = ReplFixture {
        dir: dir.clone(),
        base_state,
        model_path,
        fallback,
        dim: spec.dim,
        n_data,
    };
    let node = |tag: &str, repl| fx.node(tag, repl);

    // --- 1. solo baseline: no listener, no standby ---
    eprintln!("loadgen --replicate: solo baseline ({insert_clients}x{per_client} inserts)");
    let solo = node("solo", ReplicationState::primary());
    let (lat, elapsed) = closed_loop(
        solo.handle.as_ref().unwrap().addr(),
        Arc::clone(&bodies),
        insert_clients,
        per_client,
        "/insert",
    );
    let baseline_insert = lat_summary(&lat, total as usize, elapsed);
    if let Some(h) = solo.handle {
        h.shutdown();
    }

    // --- 2. live standby streaming while the primary takes writes ---
    eprintln!("loadgen --replicate: live-standby phase");
    let primary_repl = ReplicationState::primary();
    let primary = node("primary", Arc::clone(&primary_repl));
    let source: Arc<dyn ReplicaSource> = Arc::clone(&primary.svc) as Arc<dyn ReplicaSource>;
    let listener =
        ReplicationListener::start("127.0.0.1:0", source, ListenerConfig::default()).unwrap();
    primary_repl.attach_listener_stats(listener.stats());

    let standby_repl = ReplicationState::standby(Some(format!(
        "http://{}",
        primary.handle.as_ref().unwrap().addr()
    )));
    let standby = node("standby", Arc::clone(&standby_repl));
    // The standby's server holds svc + registry; the bridge needs them
    // too, so reach through the handle's accessors.
    let bridge: Arc<dyn StandbyTarget> = StandbyBridge::new(
        Arc::clone(&standby.svc),
        Arc::clone(standby.handle.as_ref().unwrap().registry()),
    );
    let client = ReplicaClient::start(
        listener.addr().to_string(),
        bridge,
        ReplicaClientConfig::default(),
    );
    standby_repl.attach_client(client);

    let (lat, elapsed) = closed_loop(
        primary.handle.as_ref().unwrap().addr(),
        Arc::clone(&bodies),
        insert_clients,
        per_client,
        "/insert",
    );
    let replicated_insert = lat_summary(&lat, total as usize, elapsed);

    // Steady state: how long from last ack'd write to a fully drained
    // standby.
    let t0 = Instant::now();
    let catchup_deadline = Duration::from_secs(60);
    while standby.svc.last_seq() < total {
        assert!(
            t0.elapsed() < catchup_deadline,
            "standby stuck at seq {} of {total}",
            standby.svc.last_seq()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let catch_up_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "loadgen --replicate: standby drained {total} records {catch_up_ms:.1} ms after last ack"
    );
    let stats = listener.stats();
    let steady_state = Value::Map(vec![
        ("records".to_string(), Value::UInt(total)),
        ("catch_up_ms".to_string(), Value::Float(catch_up_ms)),
        (
            "records_sent".to_string(),
            Value::UInt(
                stats
                    .records_sent
                    .load(std::sync::atomic::Ordering::Relaxed),
            ),
        ),
        (
            "snapshots_sent".to_string(),
            Value::UInt(
                stats
                    .snapshots_sent
                    .load(std::sync::atomic::Ordering::Relaxed),
            ),
        ),
    ]);

    // --- 3. failover: kill the primary, promote the standby ---
    eprintln!("loadgen --replicate: failover phase");
    drop(listener);
    if let Some(h) = primary.handle {
        h.shutdown();
    }
    let standby_addr = standby.handle.as_ref().unwrap().addr();
    let mut admin = HttpClient::connect(standby_addr).unwrap();
    let t0 = Instant::now();
    let r = admin.post_json("/admin/promote", "").unwrap();
    let promote_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(r.status, 200, "promote failed: {}", r.text());
    let r = admin.post_json("/insert", &bodies[0]).unwrap();
    let failover_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(r.status, 200, "post-promote insert failed: {}", r.text());
    let promoted_seq = standby.svc.last_seq();
    assert_eq!(promoted_seq, total + 1, "failover broke the seq chain");
    eprintln!(
        "loadgen --replicate: promoted in {promote_ms:.1} ms, first insert accepted at {failover_ms:.1} ms"
    );
    let failover = Value::Map(vec![
        ("promote_ms".to_string(), Value::Float(promote_ms)),
        (
            "first_insert_accepted_ms".to_string(),
            Value::Float(failover_ms),
        ),
        (
            "acked_records_before_failover".to_string(),
            Value::UInt(total),
        ),
        (
            "seq_after_first_insert".to_string(),
            Value::UInt(promoted_seq),
        ),
    ]);
    if let Some(h) = standby.handle {
        h.shutdown();
    }

    // --- 4. dead standby: a stalled session must not slow inserts ---
    eprintln!("loadgen --replicate: dead-standby phase");
    let dead_repl = ReplicationState::primary();
    let dead = node("dead", Arc::clone(&dead_repl));
    let source: Arc<dyn ReplicaSource> = Arc::clone(&dead.svc) as Arc<dyn ReplicaSource>;
    let listener =
        ReplicationListener::start("127.0.0.1:0", source, ListenerConfig::default()).unwrap();
    // A connected socket that never sends HELLO and never reads: the
    // worst kind of peer.
    let stalled = std::net::TcpStream::connect(listener.addr()).unwrap();
    let (lat, elapsed) = closed_loop(
        dead.handle.as_ref().unwrap().addr(),
        Arc::clone(&bodies),
        insert_clients,
        per_client,
        "/insert",
    );
    let dead_standby_insert = lat_summary(&lat, total as usize, elapsed);
    drop(stalled);
    drop(listener);
    if let Some(h) = dead.handle {
        h.shutdown();
    }

    let report = Value::Map(vec![
        (
            "config".to_string(),
            Value::Map(vec![
                (
                    "dataset".to_string(),
                    Value::Str("GloVe300 (synthetic)".to_string()),
                ),
                ("dim".to_string(), Value::UInt(spec.dim as u64)),
                ("n_data".to_string(), Value::UInt(n_data as u64)),
                (
                    "insert_clients".to_string(),
                    Value::UInt(insert_clients as u64),
                ),
                ("inserts_per_phase".to_string(), Value::UInt(total)),
                ("sync_writes".to_string(), Value::Bool(false)),
                ("quick".to_string(), Value::Bool(args.quick)),
            ]),
        ),
        ("baseline_insert".to_string(), baseline_insert),
        ("replicated_insert".to_string(), replicated_insert),
        ("dead_standby_insert".to_string(), dead_standby_insert),
        ("steady_state".to_string(), steady_state),
        ("failover".to_string(), failover),
    ]);
    std::fs::write(&args.out, serde_json::to_string(&report).unwrap()).unwrap();
    eprintln!("loadgen --replicate: wrote {}", args.out.display());
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let args = parse_args();
    if args.replicate {
        run_replicate(&args);
        return;
    }
    if args.ingest {
        run_ingest(&args);
        return;
    }
    let bench = setup(args.quick);
    let addr = bench.addr;
    let bodies = Arc::new(bench.bodies.clone());
    let scale = if args.quick { 1usize } else { 4 };

    // Warm-up: populate thread-local scratch pools and the coalescer path.
    let _ = closed_loop(addr, Arc::clone(&bodies), 2, 50, "/estimate");

    // --- 1. single-query latency ---
    let clients = 4;
    let per_client = 500 * scale;
    eprintln!("loadgen: single-query phase ({clients} clients x {per_client})");
    let (single_lat, single_elapsed) =
        closed_loop(addr, Arc::clone(&bodies), clients, per_client, "/estimate");
    let single = lat_summary(&single_lat, clients * per_client, single_elapsed);

    // --- 2. the same volume as explicit batches of 32 ---
    let batch_size = 32usize;
    let batches_per_client = (per_client / batch_size).max(1);
    eprintln!(
        "loadgen: batch phase ({clients} clients x {batches_per_client} batches of {batch_size})"
    );
    let batch_bodies: Vec<String> = (0..64)
        .map(|i| {
            let entries: Vec<String> = (0..batch_size)
                .map(|j| bodies[(i * 31 + j * 7) % bodies.len()].clone())
                .collect();
            format!("{{\"queries\":[{}]}}", entries.join(","))
        })
        .collect();
    let (batch_lat, batch_elapsed) = closed_loop(
        addr,
        Arc::new(batch_bodies),
        clients,
        batches_per_client,
        "/estimate_batch",
    );
    let batch_queries = clients * batches_per_client * batch_size;
    let mut batch = match lat_summary(&batch_lat, batch_queries, batch_elapsed) {
        Value::Map(m) => m,
        _ => unreachable!(),
    };
    batch.push(("batch_size".to_string(), Value::UInt(batch_size as u64)));
    batch.push((
        "amortized_us_per_query".to_string(),
        Value::Float(batch_lat.iter().sum::<u64>() as f64 / batch_queries.max(1) as f64),
    ));

    // --- 3. saturation ramp ---
    let mut ramp = Vec::new();
    let mut qps_at_saturation = 0.0f64;
    for clients in [1usize, 2, 4, 8, 16] {
        let per = (250 * scale).max(100);
        let (_, elapsed) = closed_loop(addr, Arc::clone(&bodies), clients, per, "/estimate");
        let qps = (clients * per) as f64 / elapsed.as_secs_f64();
        eprintln!("loadgen: saturation {clients:>2} clients -> {qps:.0} qps");
        qps_at_saturation = qps_at_saturation.max(qps);
        ramp.push(Value::Map(vec![
            ("clients".to_string(), Value::UInt(clients as u64)),
            ("qps".to_string(), Value::Float(qps)),
        ]));
    }

    // --- 4. hot reload under load ---
    eprintln!("loadgen: hot-reload phase");
    let mut corrupt_bytes = std::fs::read(&bench.artifact_b).unwrap();
    let mid = corrupt_bytes.len() / 2;
    corrupt_bytes[mid] ^= 0x08;
    let corrupt = bench.dir.join("corrupt.cardest");
    std::fs::write(&corrupt, &corrupt_bytes).unwrap();

    let reload_reqs = 400 * scale;
    let load: Vec<_> = (0..clients)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut failed = 0usize;
                for i in 0..reload_reqs {
                    let r = c
                        .post_json("/estimate", &bodies[(t * 13 + i) % bodies.len()])
                        .unwrap();
                    if r.status != 200 {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let mut admin = HttpClient::connect(addr).unwrap();
    let mut reloads_ok = 0u64;
    let mut reloads_rejected = 0u64;
    for i in 0..45 {
        let (path, want) = match i % 3 {
            0 => (&bench.artifact_b, 200),
            1 => (&bench.artifact_a, 200),
            _ => (&corrupt, 409),
        };
        let body = format!("{{\"path\":\"{}\"}}", path.display());
        let r = admin.post_json("/admin/reload", &body).unwrap();
        assert_eq!(r.status, want, "unexpected reload outcome: {}", r.text());
        if want == 200 {
            reloads_ok += 1;
        } else {
            reloads_rejected += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let failed: usize = load.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(failed, 0, "hot reload dropped {failed} requests");
    let hot_reload = Value::Map(vec![
        (
            "requests".to_string(),
            Value::UInt((clients * reload_reqs) as u64),
        ),
        ("failed".to_string(), Value::UInt(failed as u64)),
        ("reloads_ok".to_string(), Value::UInt(reloads_ok)),
        (
            "corrupt_reloads_rejected".to_string(),
            Value::UInt(reloads_rejected),
        ),
    ]);

    // Server-side view for cross-checking.
    let stats_text = admin.get("/stats").unwrap().text();
    let server_stats: Value = serde_json::from_str(&stats_text).unwrap();

    let report = Value::Map(vec![
        (
            "config".to_string(),
            Value::Map(vec![
                (
                    "dataset".to_string(),
                    Value::Str("GloVe300 (synthetic)".to_string()),
                ),
                ("dim".to_string(), Value::UInt(64)),
                (
                    "n_data".to_string(),
                    Value::UInt(if args.quick { 1_000 } else { 4_000 }),
                ),
                ("workers".to_string(), Value::UInt(6)),
                ("coalesce_window_us".to_string(), Value::UInt(200)),
                ("clients".to_string(), Value::UInt(clients as u64)),
                ("quick".to_string(), Value::Bool(args.quick)),
            ]),
        ),
        ("single".to_string(), single),
        ("batch".to_string(), Value::Map(batch)),
        ("saturation_ramp".to_string(), Value::Seq(ramp)),
        (
            "qps_at_saturation".to_string(),
            Value::Float(qps_at_saturation),
        ),
        ("hot_reload".to_string(), hot_reload),
        ("server_stats".to_string(), server_stats),
    ]);
    std::fs::write(&args.out, serde_json::to_string(&report).unwrap()).unwrap();
    eprintln!("loadgen: wrote {}", args.out.display());

    bench.handle.shutdown();
    std::fs::remove_dir_all(&bench.dir).ok();
}
