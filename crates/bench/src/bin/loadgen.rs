//! `loadgen` — drive the estimation server over real sockets and write
//! `BENCH_serving.json`.
//!
//! Starts a `cardest-server` in-process (ephemeral port), then measures:
//!
//! 1. **single** — closed-loop single-query `POST /estimate` latency
//!    (client-observed p50/p99) and throughput,
//! 2. **batch** — the same query volume shipped as `POST /estimate_batch`
//!    (the coalesced/batched serving path the paper's batched kernels
//!    feed), per-query amortized latency and throughput,
//! 3. **saturation** — a client ramp; the peak QPS across the ramp is
//!    reported as `qps_at_saturation`,
//! 4. **hot_reload** — sustained load while the model registry swaps
//!    generations (healthy and corrupt artifacts alternating); the
//!    acceptance bar is zero failed requests and every corrupt reload
//!    rejected.
//!
//! Usage: `cargo run --release -p cardest-bench --bin loadgen [--quick]
//! [--out PATH]`.

use cardest_baselines::mlp::{MlpConfig, MlpEstimator};
use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::workload::SearchWorkload;
use cardest_server::client::HttpClient;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::repr_of;
use cardest_server::registry::SharedFallback;
use cardest_server::{ModelRegistry, RegistryConfig, Server, ServerConfig, ServerHandle};
use serde::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    out: PathBuf,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("BENCH_serving.json"),
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--quick" => args.quick = true,
            other => panic!("unknown flag {other:?} (usage: loadgen [--quick] [--out PATH])"),
        }
    }
    args
}

struct Bench {
    handle: ServerHandle,
    addr: SocketAddr,
    dir: PathBuf,
    artifact_a: PathBuf,
    artifact_b: PathBuf,
    bodies: Vec<String>,
}

fn setup(quick: bool) -> Bench {
    let spec = DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 64,
        n_data: if quick { 1_000 } else { 4_000 },
        n_train_queries: if quick { 24 } else { 64 },
        n_test_queries: 8,
        metric: Metric::Angular,
        tau_max: 0.6,
    };
    eprintln!(
        "loadgen: generating {}d x {} dataset and training the serving model",
        spec.dim, spec.n_data
    );
    let data = spec.generate(13);
    let workload = SearchWorkload::build(&data, &spec, 13);
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let mut cfg = MlpConfig::default();
    cfg.train.epochs = if quick { 3 } else { 6 };

    let dir = std::env::temp_dir().join(format!("cardest-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact_a = dir.join("model_a.cardest");
    let artifact_b = dir.join("model_b.cardest");
    for (path, seed) in [(&artifact_a, 1u64), (&artifact_b, 2u64)] {
        let (model, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, seed);
        model.save_artifact(path).unwrap();
    }

    let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
        &data,
        spec.metric,
        0.01,
        13,
        "Sampling 1%",
    ));
    let registry = ModelRegistry::new(
        RegistryConfig {
            n_data: data.len(),
            dim: data.dim(),
            repr: repr_of(&data),
            monotone: true,
        },
        fallback,
        &artifact_a,
    )
    .unwrap();
    let handle = Server::start(
        ServerConfig {
            workers: 6,
            coalesce: CoalesceConfig {
                window: Duration::from_micros(200),
                max_batch: 64,
                cap: 4096,
            },
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .unwrap();
    let addr = handle.addr();

    // Pre-render request bodies from real dataset rows.
    let bodies: Vec<String> = (0..256)
        .map(|i| {
            let row = match data.view(i % data.len()) {
                cardest_data::vector::VectorView::Dense(r) => r,
                other => panic!("dense expected, got {other:?}"),
            };
            let comps: Vec<String> = row.iter().map(|v| format!("{v:.5}")).collect();
            let tau = 0.1 + 0.05 * (i % 9) as f32;
            format!("{{\"query\":[{}],\"tau\":{tau:.2}}}", comps.join(","))
        })
        .collect();

    Bench {
        handle,
        addr,
        dir,
        artifact_a,
        artifact_b,
        bodies,
    }
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Closed-loop run: `clients` threads each fire `per_client` requests at
/// `path` with rotating bodies. Returns (sorted latencies µs, elapsed).
fn closed_loop(
    addr: SocketAddr,
    bodies: Arc<Vec<String>>,
    clients: usize,
    per_client: usize,
    path: &'static str,
) -> (Vec<u64>, Duration) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut lat = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let body = &bodies[(t * 97 + i) % bodies.len()];
                    let t0 = Instant::now();
                    let r = c.post_json(path, body).unwrap();
                    let us = t0.elapsed().as_micros() as u64;
                    assert_eq!(r.status, 200, "{}", r.text());
                    lat.push(us);
                }
                lat
            })
        })
        .collect();
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let elapsed = start.elapsed();
    all.sort_unstable();
    (all, elapsed)
}

fn lat_summary(sorted: &[u64], queries: usize, elapsed: Duration) -> Value {
    Value::Map(vec![
        ("requests".to_string(), Value::UInt(sorted.len() as u64)),
        ("queries".to_string(), Value::UInt(queries as u64)),
        (
            "p50_us".to_string(),
            Value::UInt(percentile_us(sorted, 0.50)),
        ),
        (
            "p99_us".to_string(),
            Value::UInt(percentile_us(sorted, 0.99)),
        ),
        (
            "mean_us".to_string(),
            Value::Float(sorted.iter().sum::<u64>() as f64 / sorted.len().max(1) as f64),
        ),
        (
            "qps".to_string(),
            Value::Float(queries as f64 / elapsed.as_secs_f64()),
        ),
    ])
}

fn main() {
    let args = parse_args();
    let bench = setup(args.quick);
    let addr = bench.addr;
    let bodies = Arc::new(bench.bodies.clone());
    let scale = if args.quick { 1usize } else { 4 };

    // Warm-up: populate thread-local scratch pools and the coalescer path.
    let _ = closed_loop(addr, Arc::clone(&bodies), 2, 50, "/estimate");

    // --- 1. single-query latency ---
    let clients = 4;
    let per_client = 500 * scale;
    eprintln!("loadgen: single-query phase ({clients} clients x {per_client})");
    let (single_lat, single_elapsed) =
        closed_loop(addr, Arc::clone(&bodies), clients, per_client, "/estimate");
    let single = lat_summary(&single_lat, clients * per_client, single_elapsed);

    // --- 2. the same volume as explicit batches of 32 ---
    let batch_size = 32usize;
    let batches_per_client = (per_client / batch_size).max(1);
    eprintln!(
        "loadgen: batch phase ({clients} clients x {batches_per_client} batches of {batch_size})"
    );
    let batch_bodies: Vec<String> = (0..64)
        .map(|i| {
            let entries: Vec<String> = (0..batch_size)
                .map(|j| bodies[(i * 31 + j * 7) % bodies.len()].clone())
                .collect();
            format!("{{\"queries\":[{}]}}", entries.join(","))
        })
        .collect();
    let (batch_lat, batch_elapsed) = closed_loop(
        addr,
        Arc::new(batch_bodies),
        clients,
        batches_per_client,
        "/estimate_batch",
    );
    let batch_queries = clients * batches_per_client * batch_size;
    let mut batch = match lat_summary(&batch_lat, batch_queries, batch_elapsed) {
        Value::Map(m) => m,
        _ => unreachable!(),
    };
    batch.push(("batch_size".to_string(), Value::UInt(batch_size as u64)));
    batch.push((
        "amortized_us_per_query".to_string(),
        Value::Float(batch_lat.iter().sum::<u64>() as f64 / batch_queries.max(1) as f64),
    ));

    // --- 3. saturation ramp ---
    let mut ramp = Vec::new();
    let mut qps_at_saturation = 0.0f64;
    for clients in [1usize, 2, 4, 8, 16] {
        let per = (250 * scale).max(100);
        let (_, elapsed) = closed_loop(addr, Arc::clone(&bodies), clients, per, "/estimate");
        let qps = (clients * per) as f64 / elapsed.as_secs_f64();
        eprintln!("loadgen: saturation {clients:>2} clients -> {qps:.0} qps");
        qps_at_saturation = qps_at_saturation.max(qps);
        ramp.push(Value::Map(vec![
            ("clients".to_string(), Value::UInt(clients as u64)),
            ("qps".to_string(), Value::Float(qps)),
        ]));
    }

    // --- 4. hot reload under load ---
    eprintln!("loadgen: hot-reload phase");
    let mut corrupt_bytes = std::fs::read(&bench.artifact_b).unwrap();
    let mid = corrupt_bytes.len() / 2;
    corrupt_bytes[mid] ^= 0x08;
    let corrupt = bench.dir.join("corrupt.cardest");
    std::fs::write(&corrupt, &corrupt_bytes).unwrap();

    let reload_reqs = 400 * scale;
    let load: Vec<_> = (0..clients)
        .map(|t| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut failed = 0usize;
                for i in 0..reload_reqs {
                    let r = c
                        .post_json("/estimate", &bodies[(t * 13 + i) % bodies.len()])
                        .unwrap();
                    if r.status != 200 {
                        failed += 1;
                    }
                }
                failed
            })
        })
        .collect();
    let mut admin = HttpClient::connect(addr).unwrap();
    let mut reloads_ok = 0u64;
    let mut reloads_rejected = 0u64;
    for i in 0..45 {
        let (path, want) = match i % 3 {
            0 => (&bench.artifact_b, 200),
            1 => (&bench.artifact_a, 200),
            _ => (&corrupt, 409),
        };
        let body = format!("{{\"path\":\"{}\"}}", path.display());
        let r = admin.post_json("/admin/reload", &body).unwrap();
        assert_eq!(r.status, want, "unexpected reload outcome: {}", r.text());
        if want == 200 {
            reloads_ok += 1;
        } else {
            reloads_rejected += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let failed: usize = load.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(failed, 0, "hot reload dropped {failed} requests");
    let hot_reload = Value::Map(vec![
        (
            "requests".to_string(),
            Value::UInt((clients * reload_reqs) as u64),
        ),
        ("failed".to_string(), Value::UInt(failed as u64)),
        ("reloads_ok".to_string(), Value::UInt(reloads_ok)),
        (
            "corrupt_reloads_rejected".to_string(),
            Value::UInt(reloads_rejected),
        ),
    ]);

    // Server-side view for cross-checking.
    let stats_text = admin.get("/stats").unwrap().text();
    let server_stats: Value = serde_json::from_str(&stats_text).unwrap();

    let report = Value::Map(vec![
        (
            "config".to_string(),
            Value::Map(vec![
                (
                    "dataset".to_string(),
                    Value::Str("GloVe300 (synthetic)".to_string()),
                ),
                ("dim".to_string(), Value::UInt(64)),
                (
                    "n_data".to_string(),
                    Value::UInt(if args.quick { 1_000 } else { 4_000 }),
                ),
                ("workers".to_string(), Value::UInt(6)),
                ("coalesce_window_us".to_string(), Value::UInt(200)),
                ("clients".to_string(), Value::UInt(clients as u64)),
                ("quick".to_string(), Value::Bool(args.quick)),
            ]),
        ),
        ("single".to_string(), single),
        ("batch".to_string(), Value::Map(batch)),
        ("saturation_ramp".to_string(), Value::Seq(ramp)),
        (
            "qps_at_saturation".to_string(),
            Value::Float(qps_at_saturation),
        ),
        ("hot_reload".to_string(), hot_reload),
        ("server_stats".to_string(), server_stats),
    ]);
    std::fs::write(&args.out, serde_json::to_string(&report).unwrap()).unwrap();
    eprintln!("loadgen: wrote {}", args.out.display());

    bench.handle.shutdown();
    std::fs::remove_dir_all(&bench.dir).ok();
}
