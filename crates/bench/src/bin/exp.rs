// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
//! Experiment harness CLI.
//!
//! ```text
//! cargo run -p cardest-bench --release --bin exp -- <experiment> [options]
//!
//! experiments:
//!   table3                     dataset statistics
//!   table4 | fig8 | table5 | table6 | fig14
//!                              the search suite (one training pass feeds
//!                              all five artifacts; each id prints its own)
//!   search-suite               all five search artifacts at once
//!   fig9                       global-model missing rate, penalty ablation
//!   fig10                      Q-error vs training size (BMS, ImageNET)
//!   fig11                      Q-error vs #data segments (GL+)
//!   fig15                      incremental updates (GloVe300)
//!   table7 | fig12 | fig13     the join suite (one pass feeds all three)
//!   join-suite                 all three join artifacts at once
//!   ablations                  lambda sweep, segmentation methods, monotonicity
//!   all                        everything above
//!
//! options:
//!   --dataset <name>           restrict to one dataset (default: all six)
//!   --scale full|smoke         workload scale (default: full)
//!   --seed <n>                 RNG seed (default: 42)
//!   --out <dir>                also write markdown tables into <dir>
//!   --train-threads <n>        training thread count (default: one per
//!                              core; trained models are identical for
//!                              any value)
//!   --guarded                  serve the search suite through the
//!                              GuardedEstimator wrapper (1%-sampling
//!                              fallback) and report validation-rejection
//!                              and fallback rates alongside Q-error
//! ```

use cardest_bench::context::Scale;
use cardest_bench::experiments::{
    ablations, fig10_training_size, fig11_segments, fig15_updates, fig9_penalty, join_suite,
    search_suite, table3_datasets,
};
use cardest_bench::report::Table;
use cardest_data::paper::PaperDataset;
use std::path::PathBuf;

struct Options {
    datasets: Vec<PaperDataset>,
    scale: Scale,
    seed: u64,
    out: Option<PathBuf>,
    guarded: bool,
}

fn parse_args() -> (String, Options) {
    let mut args = std::env::args().skip(1);
    let exp = args
        .next()
        .unwrap_or_else(|| usage("missing experiment id"));
    let mut opts = Options {
        datasets: PaperDataset::ALL.to_vec(),
        scale: Scale::Full,
        seed: 42,
        out: None,
        guarded: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dataset" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| usage("--dataset needs a value"));
                let d = PaperDataset::parse(&name)
                    .unwrap_or_else(|| usage(&format!("unknown dataset {name}")));
                opts.datasets = vec![d];
            }
            "--scale" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scale needs a value"));
                opts.scale =
                    Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v}")));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage("seed must be an integer"));
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a value"));
                opts.out = Some(PathBuf::from(v));
            }
            "--train-threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--train-threads needs a value"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| usage("train-threads must be an integer"));
                cardest_nn::parallel::set_train_threads(n);
            }
            "--guarded" => {
                opts.guarded = true;
            }
            other => usage(&format!("unknown option {other}")),
        }
    }
    (exp, opts)
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}\n");
    eprintln!(
        "usage: exp <table3|table4|fig8|table5|table6|fig14|search-suite|fig9|fig10|fig11|fig15|table7|fig12|fig13|join-suite|ablations|all> [--dataset <name>] [--scale full|smoke] [--seed <n>] [--out <dir>] [--train-threads <n>] [--guarded]"
    );
    std::process::exit(2);
}

fn emit(tables: &[Table], opts: &Options) {
    for t in tables {
        println!("{}", t.render());
    }
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).expect("create output directory");
        for t in tables {
            let slug: String = t
                .title()
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .take(6)
                .collect::<Vec<_>>()
                .join("_");
            let path = dir.join(format!("{slug}.md"));
            std::fs::write(&path, t.render_markdown()).expect("write markdown table");
        }
    }
}

fn run_search(which: &str, opts: &Options) -> Vec<Table> {
    let all = search_suite::run_search_suite(&opts.datasets, opts.scale, opts.seed, opts.guarded);
    let mut out = match which {
        "table4" => search_suite::table4(&all),
        "fig8" => vec![search_suite::fig8(&all)],
        "table5" => vec![search_suite::table5(&all)],
        "table6" => vec![search_suite::table6(&all)],
        "fig14" => vec![search_suite::fig14(&all)],
        _ => {
            let mut out = search_suite::table4(&all);
            out.push(search_suite::fig8(&all));
            out.push(search_suite::table5(&all));
            out.push(search_suite::table6(&all));
            out.push(search_suite::fig14(&all));
            out
        }
    };
    // Rejection/fallback rates travel with whichever artifact was asked
    // for — they only exist under --guarded.
    out.extend(search_suite::guard_table(&all));
    out
}

fn run_join(which: &str, opts: &Options) -> Vec<Table> {
    let all = join_suite::run_join_suite(&opts.datasets, opts.scale, opts.seed);
    match which {
        "table7" => join_suite::table7(&all),
        "fig12" => vec![join_suite::fig12(&all)],
        "fig13" => vec![join_suite::fig13(&all)],
        _ => {
            let mut out = join_suite::table7(&all);
            out.push(join_suite::fig12(&all));
            out.push(join_suite::fig13(&all));
            out
        }
    }
}

fn debug_gl(opts: &Options) {
    use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
    use cardest_bench::context::DatasetContext;
    use cardest_bench::methods::MethodConfigs;
    use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
    use cardest_core::labels::SegmentLabels;

    let d = opts.datasets[0];
    let ctx = DatasetContext::build(d, opts.scale, opts.seed);
    let cfgs = MethodConfigs::for_scale(opts.scale, opts.seed);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        ..cfgs.gl
    };
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let gl = GlEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &cfg,
    );
    let labels = SegmentLabels::compute(&ctx.search.table, &ctx.search.test, gl.segmentation());

    // Rank test samples by Q-error.
    let mut rows: Vec<(f32, usize)> = ctx
        .search
        .test
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let est = gl.estimate(ctx.search.queries.view(s.query), s.tau);
            (cardest_nn::metrics::q_error(est, s.card), j)
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("worst 12 GL-CNN test samples on {}:", d.name());
    for &(qe, j) in rows.iter().take(12) {
        let s = &ctx.search.test[j];
        let (est, nsel) = gl.estimate_with_stats(ctx.search.queries.view(s.query), s.tau);
        let seg_true = labels.row(j);
        let top: Vec<String> = seg_true
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(i, &c)| format!("s{i}={c}"))
            .collect();
        println!(
            "  qerr={qe:<8.1} est={est:<9.1} card={:<7.0} tau={:<6.3} selected={nsel} true_segs=[{}]",
            s.card,
            s.tau,
            top.join(" ")
        );
    }
    // Distribution of selected counts.
    let mut sel_hist = vec![0usize; gl.n_segments() + 1];
    for s in &ctx.search.test {
        let (_, n) = gl.estimate_with_stats(ctx.search.queries.view(s.query), s.tau);
        sel_hist[n] += 1;
    }
    println!("selection histogram (index = #locals evaluated): {sel_hist:?}");
}

fn main() {
    let (exp, opts) = parse_args();
    let start = std::time::Instant::now();
    let tables: Vec<Table> = match exp.as_str() {
        "table3" => vec![table3_datasets::run(opts.scale)],
        "table4" | "fig8" | "table5" | "table6" | "fig14" | "search-suite" => {
            run_search(&exp, &opts)
        }
        "fig9" => vec![fig9_penalty::run(&opts.datasets, opts.scale, opts.seed)],
        "fig10" => fig10_training_size::run(opts.scale, opts.seed),
        "fig11" => vec![fig11_segments::run(&opts.datasets, opts.scale, opts.seed)],
        "fig15" => vec![fig15_updates::run(opts.scale, opts.seed)],
        "table7" | "fig12" | "fig13" | "join-suite" => run_join(&exp, &opts),
        "ablations" => ablations::run_all(opts.scale, opts.seed),
        // Hidden diagnostic: per-sample GL breakdown on the worst test cases.
        "debug-gl" => {
            debug_gl(&opts);
            Vec::new()
        }
        "all" => {
            // Emit each phase as soon as it completes so partial runs
            // still leave usable output behind.
            emit(&[table3_datasets::run(opts.scale)], &opts);
            emit(&run_search("search-suite", &opts), &opts);
            emit(
                &[fig9_penalty::run(&opts.datasets, opts.scale, opts.seed)],
                &opts,
            );
            emit(&fig10_training_size::run(opts.scale, opts.seed), &opts);
            // Fig. 11 sweeps re-train GL+ per point; three representative
            // datasets (binary sparse, binary hash, dense L2) keep the
            // full run tractable on one core.
            let fig11_sets = [
                cardest_data::paper::PaperDataset::Bms,
                cardest_data::paper::PaperDataset::ImageNet,
                cardest_data::paper::PaperDataset::YouTube,
            ];
            let fig11_sets: Vec<_> = fig11_sets
                .into_iter()
                .filter(|d| opts.datasets.contains(d))
                .collect();
            if !fig11_sets.is_empty() {
                emit(
                    &[fig11_segments::run(&fig11_sets, opts.scale, opts.seed)],
                    &opts,
                );
            }
            emit(&[fig15_updates::run(opts.scale, opts.seed)], &opts);
            emit(&run_join("join-suite", &opts), &opts);
            emit(&ablations::run_all(opts.scale, opts.seed), &opts);
            Vec::new()
        }
        other => usage(&format!("unknown experiment {other}")),
    };
    emit(&tables, &opts);
    eprintln!(
        "[exp] {exp} finished in {:.1} s",
        start.elapsed().as_secs_f64()
    );
}
