//! Table formatting for the experiment harness: plain-text tables in the
//! same row/column layout the paper uses, plus markdown output for
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn title(&self) -> &str {
        &self.title
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Plain-text rendering with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Markdown rendering for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; self.header.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float the way the paper's tables do: 3 significant digits.
pub fn fmt3(x: f32) -> String {
    if !x.is_finite() {
        return "inf".into();
    }
    let ax = x.abs();
    if ax >= 100.0 {
        format!("{x:.0}")
    } else if ax >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{:.0} s", s)
    } else if s >= 1.0 {
        format!("{s:.1} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["Method", "Mean"]);
        t.push_row(vec!["GL+".into(), "2.34".into()]);
        t.push_row(vec!["Sampling (10%)".into(), "5.18".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("GL+"));
        // Columns aligned: both rows have "Mean" data starting at the same
        // byte offset.
        let lines: Vec<&str> = s.lines().collect();
        let pos1 = lines[3].find("2.34").expect("row 1");
        let pos2 = lines[4].find("5.18").expect("row 2");
        assert_eq!(pos1, pos2);
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new("demo", &["A", "B"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn fmt3_adapts_precision() {
        assert_eq!(fmt3(2.345), "2.35");
        assert_eq!(fmt3(23.45), "23.5");
        assert_eq!(fmt3(234.5), "234");
        assert_eq!(fmt3(f32::INFINITY), "inf");
    }
}
