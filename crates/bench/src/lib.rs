// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
//! # cardest-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section (§6). Each experiment lives in
//! [`experiments`] and is callable both from the `exp` binary
//! (`cargo run -p cardest-bench --release --bin exp -- <id>`) and from the
//! Criterion benches.
//!
//! The per-experiment index (experiment id → workload → modules → bench
//! target) is maintained in `DESIGN.md`; measured-vs-paper numbers are
//! recorded in `EXPERIMENTS.md`.

pub mod context;
pub mod experiments;
pub mod methods;
pub mod report;

pub use context::{DatasetContext, Scale};
pub use report::Table;
