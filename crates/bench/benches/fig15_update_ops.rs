//! Criterion bench for Fig. 15's underlying operation: one incremental
//! update step (insert 10 records, patch labels, fine-tune the affected
//! locals and the global model) — the cost the paper compares against a
//! multi-hour full retrain in Exp-11.

use cardest_baselines::traits::TrainingSet;
use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::MethodConfigs;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::paper::PaperDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::GloVe300, Scale::Smoke, 42);
    let cfgs = MethodConfigs::for_scale(Scale::Smoke, 42);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        ..cfgs.gl
    };
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let gl = GlEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &cfg,
    );
    let all: Vec<usize> = (0..ctx.search.queries.len()).collect();
    let mut live = UpdatableGl::new(
        ctx.data.clone(),
        ctx.spec.metric,
        gl,
        ctx.search.queries.gather(&all),
        ctx.search.train.clone(),
        ctx.search.test.clone(),
        &ctx.search.table,
        UpdateConfig::default(),
    );

    let mut group = c.benchmark_group("fig15_update_ops");
    group.sample_size(10);
    let mut cursor = 0usize;
    group.bench_function("insert 10 records + incremental finetune", |b| {
        b.iter(|| {
            let ids: Vec<usize> = (0..10)
                .map(|k| (cursor + k * 13) % ctx.data.len())
                .collect();
            cursor += 7;
            let pts = live.data().gather(&ids);
            black_box(live.insert(&pts, true))
        })
    });
    group.bench_function("insert 10 records, labels only", |b| {
        b.iter(|| {
            let ids: Vec<usize> = (0..10)
                .map(|k| (cursor + k * 13) % ctx.data.len())
                .collect();
            cursor += 7;
            let pts = live.data().gather(&ids);
            black_box(live.insert(&pts, false))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
