//! Criterion bench for Fig. 14: offline training time of the learned
//! estimators (smoke scale), plus the query/label construction phase.

use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::{train_method, Method};
use cardest_data::paper::PaperDataset;
use cardest_data::workload::SearchWorkload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);

    let mut group = c.benchmark_group("fig14_training_time");
    group.sample_size(10);

    // Label/workload construction (the "query construction" bar).
    group.bench_function("label (workload construction)", |b| {
        b.iter(|| black_box(SearchWorkload::build(&ctx.data, &ctx.spec, 42)))
    });

    for method in [Method::Qes, Method::Mlp, Method::GlMlp] {
        group.bench_function(format!("train {}", method.name()), |b| {
            b.iter(|| black_box(train_method(&ctx, method, Scale::Smoke)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
