//! Criterion bench for Fig. 9: global-model training with vs without the
//! cardinality penalty (the ablated code path of Exp-6), plus a one-shot
//! print of the resulting missing rates at smoke scale.

use cardest_baselines::traits::TrainingSet;
use cardest_bench::context::{DatasetContext, Scale};
use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_core::arch::QueryEmbed;
use cardest_core::global::{missing_rate, GlobalConfig, GlobalModel};
use cardest_core::labels::SegmentLabels;
use cardest_data::paper::PaperDataset;
use cardest_nn::trainer::TrainConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let seg = Segmentation::fit(
        &ctx.data,
        ctx.spec.metric,
        &SegmentationConfig {
            n_segments: 8,
            method: SegmentationMethod::PcaKMeans,
            seed: 42,
            ..Default::default()
        },
    );
    let labels = SegmentLabels::compute(&ctx.search.table, &ctx.search.train, &seg);
    let (xq, xc) = cardest_core::gl::build_feature_caches(&ctx.search.queries, &seg);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);

    // One-shot missing rates.
    for penalty in [true, false] {
        let cfg = GlobalConfig {
            penalty,
            train: TrainConfig {
                epochs: 6,
                ..Default::default()
            },
            ..GlobalConfig::new(QueryEmbed::default_cnn(ctx.spec.dim, 8))
        };
        let (g, _) = GlobalModel::train(&training, &labels, &xq, &xc, &cfg, 42);
        let rate = missing_rate(&g, &training, &labels, &xq, &xc);
        eprintln!("[fig9/smoke/ImageNET] penalty={penalty}: missing rate {rate:.3}");
    }

    let mut group = c.benchmark_group("fig9_penalty");
    group.sample_size(10);
    for penalty in [true, false] {
        let name = if penalty {
            "train with penalty"
        } else {
            "train without penalty"
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = GlobalConfig {
                    penalty,
                    train: TrainConfig {
                        epochs: 2,
                        ..Default::default()
                    },
                    ..GlobalConfig::new(QueryEmbed::Mlp { hidden: 16 })
                };
                black_box(GlobalModel::train(&training, &labels, &xq, &xc, &cfg, 42))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
