//! Criterion bench for Table 7: join-set evaluation of the global-local
//! join model at smoke scale, printing the miniature Q-error rows once.

use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::MethodConfigs;
use cardest_core::gl::{GlConfig, GlVariant};
use cardest_core::join::{JoinConfig, JoinEstimator, JoinVariant};
use cardest_data::paper::PaperDataset;
use cardest_nn::metrics::ErrorSummary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let jw = ctx.join_workload(Scale::Smoke);
    let cfgs = MethodConfigs::for_scale(Scale::Smoke, 42);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);

    let mut jcfg = JoinConfig::for_variant(JoinVariant::GlJoin);
    jcfg.base = GlConfig {
        variant: GlVariant::GlMlp,
        ..cfgs.gl
    };
    let est = JoinEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &jw.train,
        &jcfg,
    );

    // Print the miniature Table 7 row once.
    let pairs: Vec<(f32, f32)> = jw.test_buckets[0]
        .iter()
        .map(|s| {
            (
                est.estimate_join(&ctx.search.queries, &s.query_ids, s.tau),
                s.card,
            )
        })
        .collect();
    let q = ErrorSummary::from_q_errors(&pairs);
    eprintln!(
        "[table7/smoke/ImageNET] GLJoin mean={:.2} median={:.2} max={:.1}",
        q.mean, q.median, q.max
    );

    let set = &jw.test_buckets[0][0];
    let mut group = c.benchmark_group("table7_join_accuracy");
    group.sample_size(20);
    group.bench_function("GLJoin estimate_join", |b| {
        b.iter(|| {
            black_box(est.estimate_join(
                &ctx.search.queries,
                black_box(&set.query_ids),
                black_box(set.tau),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
