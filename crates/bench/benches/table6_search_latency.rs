//! Criterion bench for Table 6: per-query estimation latency of the
//! learned estimators vs sampling vs the exact index (SimSelect stand-in).
//!
//! Uses the smoke scale so `cargo bench` stays quick; the full-scale
//! numbers come from `exp table6`.

use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::{train_method, Method};
use cardest_data::paper::PaperDataset;
use cardest_index::PivotIndex;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let tau = ctx.spec.tau_max * 0.3;
    let q = ctx.search.queries.view(0);

    let mut group = c.benchmark_group("table6_search_latency");
    group.sample_size(20);

    for method in [Method::GlCnn, Method::Qes, Method::Mlp, Method::Sampling1] {
        let trained = train_method(&ctx, method, Scale::Smoke);
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(trained.estimator.estimate(black_box(q), black_box(tau))))
        });
    }

    let index = PivotIndex::build(&ctx.data, ctx.spec.metric, 8, 42);
    group.bench_function("SimSelect", |b| {
        b.iter(|| black_box(index.range_count(&ctx.data, black_box(q), black_box(tau))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
