//! Criterion bench for the parallel training pipeline: wall-clock of
//! GL-MLP training (segment-parallel local models + data-parallel
//! minibatch sharding) at 1 vs 8 threads on a fig11-style multi-segment
//! configuration.
//!
//! Trained weights are bit-identical for every thread count (see the
//! determinism tests in `tests/training_pipeline.rs`), so this bench
//! measures pure throughput. On a single-core container the two points
//! coincide; on an N-core machine the 8-thread point should show the
//! segment fan's speedup.

use cardest_baselines::traits::TrainingSet;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn gl_cfg(threads: usize) -> GlConfig {
    GlConfig {
        variant: GlVariant::GlMlp,
        n_segments: 12,
        local_train: TrainConfig {
            epochs: 8,
            batch_size: 64,
            threads,
            ..Default::default()
        },
        global_train: TrainConfig {
            epochs: 8,
            batch_size: 64,
            threads,
            ..Default::default()
        },
        max_local_samples: 2000,
        ..GlConfig::default()
    }
}

fn bench(c: &mut Criterion) {
    let spec = DatasetSpec {
        n_data: 2000,
        n_train_queries: 200,
        n_test_queries: 20,
        ..PaperDataset::ImageNet.spec()
    };
    let data = spec.generate(42);
    let w = SearchWorkload::build(&data, &spec, 42);
    let training = TrainingSet::new(&w.queries, &w.train);

    let mut group = c.benchmark_group("train_throughput");
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_function(format!("gl_mlp train, {threads} thread(s)"), |b| {
            let cfg = gl_cfg(threads);
            b.iter(|| {
                black_box(GlEstimator::train(
                    &data,
                    spec.metric,
                    &training,
                    &w.table,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
