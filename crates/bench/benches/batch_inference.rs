//! Criterion bench for the batched inference path: `estimate_batch` vs
//! calling `estimate` once per query, on the batch-capable estimators
//! (GL-CNN, MLP, CardNet). The batched GL path runs one grouped `B_i × d`
//! forward per selected local model instead of B single-row forwards, so
//! throughput at batch 256 should be several times the one-at-a-time
//! path's.
//!
//! Uses the smoke scale so `cargo bench` stays quick.

use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::{train_method, Method};
use cardest_data::paper::PaperDataset;
use cardest_data::vector::VectorView;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const BATCH: usize = 256;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 43);
    let n_queries = ctx.search.queries.len();
    let queries: Vec<(VectorView<'_>, f32)> = (0..BATCH)
        .map(|i| {
            (
                ctx.search.queries.view(i % n_queries),
                ctx.spec.tau_max * (0.1 + 0.8 * (i as f32 / BATCH as f32)),
            )
        })
        .collect();

    let mut group = c.benchmark_group("batch_inference");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCH as u64));

    for method in [Method::GlCnn, Method::Mlp, Method::CardNet] {
        let trained = train_method(&ctx, method, Scale::Smoke);
        let est = trained.estimator.as_ref();
        group.bench_function(format!("{}/batched", method.name()), |b| {
            b.iter(|| black_box(est.estimate_batch(black_box(&queries))))
        });
        group.bench_function(format!("{}/one-at-a-time", method.name()), |b| {
            b.iter(|| {
                let out: Vec<f32> = queries
                    .iter()
                    .map(|&(q, tau)| est.estimate(black_box(q), black_box(tau)))
                    .collect();
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
