//! Criterion bench for Table 4: measures full test-set evaluation of the
//! learned estimators (the operation whose outputs populate Table 4) at
//! smoke scale, and prints the resulting Q-error rows once so the bench
//! doubles as a miniature accuracy regeneration.

use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::{evaluate_search, train_method, Method};
use cardest_data::paper::PaperDataset;
use cardest_nn::metrics::ErrorSummary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let mut group = c.benchmark_group("table4_search_accuracy");
    group.sample_size(10);

    for method in [Method::GlCnn, Method::Qes, Method::Mlp, Method::Sampling10] {
        let trained = train_method(&ctx, method, Scale::Smoke);
        // Print the accuracy row once (the table this bench regenerates).
        let pairs = evaluate_search(trained.estimator.as_ref(), &ctx);
        let q = ErrorSummary::from_q_errors(&pairs);
        eprintln!(
            "[table4/smoke/ImageNET] {:<16} mean={:.2} median={:.2} max={:.1}",
            method.name(),
            q.mean,
            q.median,
            q.max
        );
        group.bench_function(method.name(), |b| {
            b.iter(|| black_box(evaluate_search(trained.estimator.as_ref(), &ctx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
