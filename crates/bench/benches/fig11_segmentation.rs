//! Criterion bench for Fig. 11's underlying operation: fitting the
//! PCA + batch-k-means segmentation at growing segment counts (the cost
//! that scales with the swept parameter; the accuracy trend itself comes
//! from `exp fig11`).

use cardest_bench::context::{DatasetContext, Scale};
use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_data::paper::PaperDataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let mut group = c.benchmark_group("fig11_segmentation_fit");
    group.sample_size(10);
    for n in [1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = SegmentationConfig {
                n_segments: n,
                method: SegmentationMethod::PcaKMeans,
                seed: 42,
                ..Default::default()
            };
            b.iter(|| black_box(Segmentation::fit(&ctx.data, ctx.spec.metric, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
