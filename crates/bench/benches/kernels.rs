//! Criterion benches for the compute kernels introduced by the
//! register-blocked GEMM / monomorphized-metric work: each case times the
//! old scalar path (kept verbatim in the `reference` modules) against the
//! new kernel on the same operands.
//!
//! Besides the Criterion output, the bench performs its own median
//! measurement (the vendored criterion shim does not expose timings) and
//! writes the machine-readable old-vs-new table to `BENCH_kernels.json`
//! at the repository root.

use cardest_data::metric::{reference as metric_reference, Metric};
use cardest_data::vector::{BinaryData, DenseData, VectorData, VectorView};
use cardest_nn::gemm;
use cardest_nn::tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Where the machine-readable results land: the repository root, two
/// levels above this crate's manifest.
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");

const SAMPLES: usize = 15;

/// Median ns per call for two contestants measured sample-interleaved
/// (ref, new, ref, new, …) so OS contention on a shared single-core box
/// hits both distributions alike. Iteration counts are calibrated per
/// contestant so each sample runs a few milliseconds.
fn median_ns_pair<F: FnMut(), G: FnMut()>(mut old: F, mut new: G) -> (f64, f64) {
    fn calibrate<F: FnMut()>(f: &mut F) -> u64 {
        f(); // warm-up
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < Duration::from_millis(4) {
            f();
            iters += 1;
        }
        iters.max(1)
    }
    fn sample<F: FnMut()>(f: &mut F, iters: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() * 1e9 / iters as f64
    }
    let old_iters = calibrate(&mut old);
    let new_iters = calibrate(&mut new);
    let mut olds = Vec::with_capacity(SAMPLES);
    let mut news = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        olds.push(sample(&mut old, old_iters));
        news.push(sample(&mut new, new_iters));
    }
    olds.sort_by(f64::total_cmp);
    news.sort_by(f64::total_cmp);
    (olds[SAMPLES / 2], news[SAMPLES / 2])
}

struct CaseResult {
    group: &'static str,
    case: &'static str,
    reference_ns: f64,
    kernel_ns: f64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.kernel_ns
    }
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// The acceptance shape: 256×64 · (64×64)ᵀ, the forward pass of a
/// 64-wide hidden layer over a 256-row batch.
fn gemm_cases(c: &mut Criterion, results: &mut Vec<CaseResult>) {
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let a = random_matrix(&mut rng, 256, 64);
    let bt = random_matrix(&mut rng, 64, 64); // stored transposed for nt
    let b_nn = random_matrix(&mut rng, 64, 64);
    let dy = random_matrix(&mut rng, 256, 64);
    let mut out = Matrix::zeros(256, 64);

    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(10);
    group.bench_function("matmul_nt_256x64_64x64/reference", |bch| {
        bch.iter(|| black_box(gemm::reference::matmul_nt(black_box(&a), black_box(&bt))))
    });
    group.bench_function("matmul_nt_256x64_64x64/blocked", |bch| {
        bch.iter(|| a.matmul_nt_into(black_box(&bt), &mut out))
    });
    group.bench_function("matmul_tn_256x64_256x64/reference", |bch| {
        bch.iter(|| black_box(gemm::reference::matmul_tn(black_box(&dy), black_box(&a))))
    });
    group.bench_function("matmul_tn_256x64_256x64/fused", |bch| {
        bch.iter(|| black_box(dy.matmul_tn(black_box(&a))))
    });
    group.bench_function("matmul_nn_256x64_64x64/reference", |bch| {
        bch.iter(|| black_box(gemm::reference::matmul_nn(black_box(&a), black_box(&b_nn))))
    });
    group.bench_function("matmul_nn_256x64_64x64/fused", |bch| {
        bch.iter(|| black_box(a.matmul_nn(black_box(&b_nn))))
    });
    group.finish();

    let (reference_ns, kernel_ns) = median_ns_pair(
        || {
            black_box(gemm::reference::matmul_nt(black_box(&a), black_box(&bt)));
        },
        || a.matmul_nt_into(black_box(&bt), &mut out),
    );
    results.push(CaseResult {
        group: "gemm_kernels",
        case: "matmul_nt_256x64_64x64",
        reference_ns,
        kernel_ns,
    });
    let (reference_ns, kernel_ns) = median_ns_pair(
        || {
            black_box(gemm::reference::matmul_tn(black_box(&dy), black_box(&a)));
        },
        || {
            black_box(dy.matmul_tn(black_box(&a)));
        },
    );
    results.push(CaseResult {
        group: "gemm_kernels",
        case: "matmul_tn_256x64_256x64",
        reference_ns,
        kernel_ns,
    });
    let (reference_ns, kernel_ns) = median_ns_pair(
        || {
            black_box(gemm::reference::matmul_nn(black_box(&a), black_box(&b_nn)));
        },
        || {
            black_box(a.matmul_nn(black_box(&b_nn)));
        },
    );
    results.push(CaseResult {
        group: "gemm_kernels",
        case: "matmul_nn_256x64_64x64",
        reference_ns,
        kernel_ns,
    });
}

const DIST_N: usize = 10_000;
const DIST_DIM: usize = 128;

fn distance_cases(c: &mut Criterion, results: &mut Vec<CaseResult>) {
    let mut rng = StdRng::seed_from_u64(0xD157);
    let flat: Vec<f32> = (0..DIST_N * DIST_DIM)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let dense = VectorData::Dense(DenseData::from_flat(DIST_DIM, flat));
    let q: Vec<f32> = (0..DIST_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let qv = VectorView::Dense(&q);

    let mut bits = BinaryData::new(DIST_DIM);
    for _ in 0..DIST_N {
        let row: Vec<bool> = (0..DIST_DIM).map(|_| rng.gen_range(0..2) == 1).collect();
        bits.push_bools(&row);
    }
    let qbits: Vec<bool> = (0..DIST_DIM).map(|_| rng.gen_range(0..2) == 1).collect();
    let mut qrow = BinaryData::new(DIST_DIM);
    qrow.push_bools(&qbits);
    let binary = VectorData::Binary(bits);

    let mut out = vec![0.0f32; DIST_N];
    let reference_scan = |m: Metric, data: &VectorData, q: VectorView<'_>, out: &mut [f32]| {
        for (i, o) in out.iter_mut().enumerate() {
            *o = metric_reference::distance(m, q, data.view(i));
        }
    };

    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(10);
    group.bench_function("dense_l2_d128_n10k/reference", |bch| {
        bch.iter(|| reference_scan(Metric::L2, &dense, qv, &mut out))
    });
    group.bench_function("dense_l2_d128_n10k/kernel", |bch| {
        bch.iter(|| Metric::L2.distance_many_into(black_box(qv), &dense, &mut out))
    });
    group.bench_function("dense_cosine_d128_n10k/reference", |bch| {
        bch.iter(|| reference_scan(Metric::Cosine, &dense, qv, &mut out))
    });
    group.bench_function("dense_cosine_d128_n10k/kernel", |bch| {
        bch.iter(|| Metric::Cosine.distance_many_into(black_box(qv), &dense, &mut out))
    });
    let qbv = VectorView::Binary {
        words: qrow.row(0),
        dim: DIST_DIM,
    };
    group.bench_function("binary_hamming_d128_n10k/reference", |bch| {
        bch.iter(|| reference_scan(Metric::Hamming, &binary, qbv, &mut out))
    });
    group.bench_function("binary_hamming_d128_n10k/kernel", |bch| {
        bch.iter(|| Metric::Hamming.distance_many_into(black_box(qbv), &binary, &mut out))
    });
    group.finish();

    for (case, m, data, q) in [
        ("dense_l2_d128_n10k", Metric::L2, &dense, qv),
        ("dense_cosine_d128_n10k", Metric::Cosine, &dense, qv),
        ("binary_hamming_d128_n10k", Metric::Hamming, &binary, qbv),
    ] {
        let mut ref_out = vec![0.0f32; DIST_N];
        let (reference_ns, kernel_ns) = median_ns_pair(
            || reference_scan(m, data, q, &mut ref_out),
            || m.distance_many_into(black_box(q), data, &mut out),
        );
        results.push(CaseResult {
            group: "distance_kernels",
            case,
            reference_ns,
            kernel_ns,
        });
    }
}

fn write_json(results: &[CaseResult]) {
    let mut body = String::from("{\n  \"unit\": \"median_ns_per_op\",\n");
    body.push_str("  \"generated_by\": \"cargo bench --bench kernels\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"group\": \"{}\", \"case\": \"{}\", \"reference_ns\": {:.0}, \
             \"kernel_ns\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.group,
            r.case,
            r.reference_ns,
            r.kernel_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write(JSON_PATH, body).expect("write BENCH_kernels.json");
    println!("wrote {JSON_PATH}");
}

fn bench(c: &mut Criterion) {
    let mut results = Vec::new();
    gemm_cases(c, &mut results);
    distance_cases(c, &mut results);
    for r in &results {
        println!(
            "{}/{}: reference {:.0} ns, kernel {:.0} ns, speedup {:.2}x",
            r.group,
            r.case,
            r.reference_ns,
            r.kernel_ns,
            r.speedup()
        );
    }
    write_json(&results);
}

criterion_group!(benches, bench);
criterion_main!(benches);
