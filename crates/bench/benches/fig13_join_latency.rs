//! Criterion bench for Fig. 13: batch (sum-pooled) vs single-query join
//! estimation latency for a 200-member join set.

use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_bench::context::{DatasetContext, Scale};
use cardest_bench::methods::MethodConfigs;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::join::{JoinConfig, JoinEstimator, JoinVariant};
use cardest_data::paper::PaperDataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = DatasetContext::build(PaperDataset::ImageNet, Scale::Smoke, 42);
    let jw = ctx.join_workload(Scale::Smoke);
    let cfgs = MethodConfigs::for_scale(Scale::Smoke, 42);
    let training = TrainingSet::new(&ctx.search.queries, &ctx.search.train);
    let tau = ctx.spec.tau_max * 0.3;

    // Train the GL base once; transfer a copy to the join model.
    let gl = GlEstimator::train(
        &ctx.data,
        ctx.spec.metric,
        &training,
        &ctx.search.table,
        &GlConfig {
            variant: GlVariant::GlMlp,
            ..cfgs.gl
        },
    );
    let jcfg = JoinConfig::for_variant(JoinVariant::GlJoin);
    let join_model =
        JoinEstimator::from_search_model(gl.clone(), &ctx.search.queries, &jw.train, &jcfg);

    // A 200-member set from the test pool (with replacement).
    let n_train = ctx.search.n_train_queries;
    let pool = ctx.search.queries.len() - n_train;
    let ids: Vec<usize> = (0..200).map(|i| n_train + i % pool).collect();

    let mut group = c.benchmark_group("fig13_join_latency_200");
    group.sample_size(10);
    group.bench_function("GLJoin batch (sum-pooled)", |b| {
        b.iter(|| black_box(join_model.estimate_join(&ctx.search.queries, black_box(&ids), tau)))
    });
    group.bench_function("GL+ single (per-query)", |b| {
        b.iter(|| {
            // The search model's default join path: one estimate per member.
            black_box(gl.estimate_join(&ctx.search.queries, black_box(&ids), tau))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
