// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-data
//!
//! Data substrate for the `cardest` reproduction of *Learned Cardinality
//! Estimation for Similarity Queries* (SIGMOD 2021):
//!
//! * [`vector`] — dense (`f32`) and bit-packed binary vector storage,
//! * [`metric`] — the paper's distance functions (L1, L2, cosine, angular,
//!   Hamming, Jaccard) over dense, binary and mixed operands, with batched
//!   one-query-vs-many-rows entry points,
//! * [`kernels`] — the monomorphic slice/popcount reductions behind the
//!   metrics, shared with k-means, PCA and the NN feature builders,
//! * [`synth`] — synthetic generators standing in for the paper's six real
//!   datasets (the substitution table lives in `DESIGN.md`),
//! * [`paper`] — the six dataset specifications of Table 3, scaled for a
//!   single-core box,
//! * [`workload`] — query selection and threshold generation by selectivity
//!   (uniform for training, geometric for testing, §6 "Query Selection"),
//!   plus join-set construction,
//! * [`ground_truth`] — exact cardinality labelling, including the
//!   per-segment labels the global model trains on,
//! * [`validate`] — the serving-side input contract: the [`CardestError`]
//!   taxonomy and the [`QueryGuard`] checks behind `try_estimate`.

pub mod cache;
pub mod ground_truth;
pub mod kernels;
pub mod metric;
pub mod paper;
pub mod stats;
pub mod synth;
pub mod validate;
pub mod vector;
pub mod workload;

pub use ground_truth::{DistanceTable, GroundTruth};
pub use metric::Metric;
pub use paper::{paper_datasets, DatasetSpec, PaperDataset};
pub use stats::{Histogram, SelectivityStats, WorkloadReport};
pub use synth::Labeled;
pub use validate::{CardestError, QueryGuard};
pub use vector::{BinaryData, DenseData, VectorData, VectorView};
pub use workload::{JoinSet, JoinWorkload, SearchSample, SearchWorkload};
