//! On-disk caching of generated datasets.
//!
//! Exp-10 shows the workload labelling phase (all query-to-data
//! distances) dominates the offline cost; the dataset generation itself
//! also repeats in every harness invocation. This module persists a
//! generated dataset next to its spec + seed fingerprint so repeated
//! harness runs can reload instead of regenerate, and reload is rejected
//! if the fingerprint drifts (a changed generator must not serve stale
//! bytes).

use crate::paper::DatasetSpec;
use crate::vector::VectorData;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A cached dataset: fingerprint plus payload.
#[derive(Debug, Serialize, Deserialize)]
struct CachedDataset {
    fingerprint: String,
    data: VectorData,
}

/// Fingerprint of (spec, seed): every field that influences generation.
fn fingerprint(spec: &DatasetSpec, seed: u64) -> String {
    format!(
        "{:?}|dim={}|n={}|metric={:?}|tau={}|seed={}|v1",
        spec.dataset, spec.dim, spec.n_data, spec.metric, spec.tau_max, seed
    )
}

/// The cache file path for a spec + seed under `dir`.
pub fn cache_path(dir: &Path, spec: &DatasetSpec, seed: u64) -> PathBuf {
    dir.join(format!(
        "{}_{}d_{}n_{}.json",
        spec.dataset.name().to_ascii_lowercase(),
        spec.dim,
        spec.n_data,
        seed
    ))
}

/// Loads the dataset from cache if present and fingerprint-valid,
/// otherwise generates and writes it. IO errors fall back to plain
/// generation (the cache is an optimization, never a correctness
/// dependency).
pub fn load_or_generate(dir: &Path, spec: &DatasetSpec, seed: u64) -> VectorData {
    let path = cache_path(dir, spec, seed);
    let fp = fingerprint(spec, seed);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(cached) = serde_json::from_slice::<CachedDataset>(&bytes) {
            if cached.fingerprint == fp {
                return cached.data;
            }
        }
    }
    let data = spec.generate(seed);
    if std::fs::create_dir_all(dir).is_ok() {
        let cached = CachedDataset {
            fingerprint: fp,
            data: data.clone(),
        };
        if let Ok(json) = serde_json::to_vec(&cached) {
            let _ = std::fs::write(&path, json);
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperDataset;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cardest-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_roundtrip_returns_identical_data() {
        let dir = tmpdir("roundtrip");
        let spec = DatasetSpec {
            n_data: 120,
            ..PaperDataset::ImageNet.spec()
        };
        let first = load_or_generate(&dir, &spec, 5);
        assert!(
            cache_path(&dir, &spec, 5).exists(),
            "cache file must be written"
        );
        let second = load_or_generate(&dir, &spec, 5);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_seeds_use_different_files() {
        let dir = tmpdir("seeds");
        let spec = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let a = load_or_generate(&dir, &spec, 1);
        let b = load_or_generate(&dir, &spec, 2);
        assert_ne!(a, b);
        assert_ne!(cache_path(&dir, &spec, 1), cache_path(&dir, &spec, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_is_regenerated() {
        let dir = tmpdir("stale");
        let spec = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let fresh = load_or_generate(&dir, &spec, 9);
        // Corrupt the fingerprint on disk.
        let path = cache_path(&dir, &spec, 9);
        let mut cached: CachedDataset =
            serde_json::from_slice(&std::fs::read(&path).expect("cache exists"))
                .expect("valid cache");
        cached.fingerprint = "stale".into();
        std::fs::write(&path, serde_json::to_vec(&cached).expect("serialize")).expect("write");
        let reloaded = load_or_generate(&dir, &spec, 9);
        assert_eq!(
            fresh, reloaded,
            "stale cache must be regenerated, not trusted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_dir_falls_back_to_generation() {
        let spec = DatasetSpec {
            n_data: 50,
            ..PaperDataset::ImageNet.spec()
        };
        let data = load_or_generate(Path::new("/nonexistent-root/cache"), &spec, 3);
        assert_eq!(data.len(), 50);
    }
}
