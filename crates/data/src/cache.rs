//! On-disk caching of generated datasets.
//!
//! Exp-10 shows the workload labelling phase (all query-to-data
//! distances) dominates the offline cost; the dataset generation itself
//! also repeats in every harness invocation. This module persists a
//! generated dataset next to its spec + seed fingerprint so repeated
//! harness runs can reload instead of regenerate, and reload is rejected
//! if the fingerprint drifts (a changed generator must not serve stale
//! bytes).

use crate::paper::DatasetSpec;
use crate::vector::VectorData;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A cached dataset: fingerprint plus payload.
#[derive(Debug, Serialize, Deserialize)]
struct CachedDataset {
    fingerprint: String,
    data: VectorData,
}

/// Fingerprint of (spec, seed): every field that influences generation.
fn fingerprint(spec: &DatasetSpec, seed: u64) -> String {
    format!(
        "{:?}|dim={}|n={}|metric={:?}|tau={}|seed={}|v1",
        spec.dataset, spec.dim, spec.n_data, spec.metric, spec.tau_max, seed
    )
}

/// The cache file path for a spec + seed under `dir`.
///
/// The filename carries every spec field that influences generation —
/// including the metric and τmax, which select the generator's
/// representation and threshold scaling. Two specs that differ only in
/// metric used to collide on the same path: each run then found the other
/// spec's fingerprint, deleted the file, and regenerated, so alternating
/// runs thrashed the cache forever instead of ever hitting it.
pub fn cache_path(dir: &Path, spec: &DatasetSpec, seed: u64) -> PathBuf {
    // τ rendered without '.' so the filename stays portable (0.50 → t0p50).
    let tau = format!("{:.2}", spec.tau_max).replace('.', "p");
    dir.join(format!(
        "{}_{}d_{}n_{:?}_t{}_{}.json",
        spec.dataset.name().to_ascii_lowercase(),
        spec.dim,
        spec.n_data,
        spec.metric,
        tau,
        seed
    ))
}

/// Loads the dataset from cache if present and fingerprint-valid,
/// otherwise generates and writes it. IO errors fall back to plain
/// generation (the cache is an optimization, never a correctness
/// dependency).
///
/// A cache file that fails to parse or carries a stale fingerprint is
/// deleted before regeneration — corrupt bytes must not be re-read (and
/// re-rejected) on every subsequent run. The rewrite goes through a temp
/// file + atomic rename, so a crash mid-write leaves either the old file
/// or the new one, never a torn JSON prefix.
pub fn load_or_generate(dir: &Path, spec: &DatasetSpec, seed: u64) -> VectorData {
    let path = cache_path(dir, spec, seed);
    let fp = fingerprint(spec, seed);
    if let Ok(bytes) = std::fs::read(&path) {
        match serde_json::from_slice::<CachedDataset>(&bytes) {
            Ok(cached) if cached.fingerprint == fp => return cached.data,
            _ => {
                // Torn write, bit rot, or a stale generator version.
                let _ = std::fs::remove_file(&path);
            }
        }
    }
    let data = spec.generate(seed);
    if std::fs::create_dir_all(dir).is_ok() {
        let cached = CachedDataset {
            fingerprint: fp,
            data: data.clone(),
        };
        if let Ok(json) = serde_json::to_vec(&cached) {
            let _ = write_atomic(&path, &json);
        }
    }
    data
}

/// Writes via a sibling temp file and renames it over the target (rename
/// is atomic within a filesystem). The temp name embeds the pid so
/// concurrent harness runs cannot clobber each other's in-flight writes.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cache path has no file name",
        )
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match path.parent().filter(|p| !p.as_os_str().is_empty()) {
        Some(dir) => dir.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperDataset;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cardest-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_roundtrip_returns_identical_data() {
        let dir = tmpdir("roundtrip");
        let spec = DatasetSpec {
            n_data: 120,
            ..PaperDataset::ImageNet.spec()
        };
        let first = load_or_generate(&dir, &spec, 5);
        assert!(
            cache_path(&dir, &spec, 5).exists(),
            "cache file must be written"
        );
        let second = load_or_generate(&dir, &spec, 5);
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_seeds_use_different_files() {
        let dir = tmpdir("seeds");
        let spec = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let a = load_or_generate(&dir, &spec, 1);
        let b = load_or_generate(&dir, &spec, 2);
        assert_ne!(a, b);
        assert_ne!(cache_path(&dir, &spec, 1), cache_path(&dir, &spec, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn specs_differing_only_in_metric_or_tau_coexist() {
        use crate::metric::Metric;
        let dir = tmpdir("metric-tau");
        // ImageNET's generator is binary, so both Hamming and Jaccard are
        // valid metrics over the same representation.
        let hamming = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let jaccard = DatasetSpec {
            metric: Metric::Jaccard,
            ..hamming
        };
        assert_ne!(
            cache_path(&dir, &hamming, 3),
            cache_path(&dir, &jaccard, 3),
            "metric must be part of the cache filename"
        );
        let a = load_or_generate(&dir, &hamming, 3);
        let b = load_or_generate(&dir, &jaccard, 3);
        // Both cache files coexist; reloading each returns its own bytes
        // instead of rejecting the other spec's and regenerating.
        assert!(cache_path(&dir, &hamming, 3).exists());
        assert!(cache_path(&dir, &jaccard, 3).exists());
        assert_eq!(load_or_generate(&dir, &hamming, 3), a);
        assert_eq!(load_or_generate(&dir, &jaccard, 3), b);

        // τ affects threshold scaling in generation: it gets its own file
        // too (fingerprinted either way; the filename avoids the thrash).
        let wider = DatasetSpec {
            tau_max: hamming.tau_max + 0.05,
            ..hamming
        };
        assert_ne!(
            cache_path(&dir, &hamming, 3),
            cache_path(&dir, &wider, 3),
            "tau_max must be part of the cache filename"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_is_regenerated() {
        let dir = tmpdir("stale");
        let spec = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let fresh = load_or_generate(&dir, &spec, 9);
        // Corrupt the fingerprint on disk.
        let path = cache_path(&dir, &spec, 9);
        let mut cached: CachedDataset =
            serde_json::from_slice(&std::fs::read(&path).expect("cache exists"))
                .expect("valid cache");
        cached.fingerprint = "stale".into();
        std::fs::write(&path, serde_json::to_vec(&cached).expect("serialize")).expect("write");
        let reloaded = load_or_generate(&dir, &spec, 9);
        assert_eq!(
            fresh, reloaded,
            "stale cache must be regenerated, not trusted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_is_deleted_and_rewritten() {
        let dir = tmpdir("corrupt");
        let spec = DatasetSpec {
            n_data: 60,
            ..PaperDataset::ImageNet.spec()
        };
        let fresh = load_or_generate(&dir, &spec, 4);
        let path = cache_path(&dir, &spec, 4);
        // Simulate a torn write: a truncated JSON prefix.
        let bytes = std::fs::read(&path).expect("cache exists");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let reloaded = load_or_generate(&dir, &spec, 4);
        assert_eq!(fresh, reloaded);
        // The corrupt file was replaced with a valid one, so the next
        // load parses (no perpetual re-read of bad bytes).
        let cached: CachedDataset =
            serde_json::from_slice(&std::fs::read(&path).expect("cache exists"))
                .expect("rewritten cache must parse");
        assert_eq!(cached.data, fresh);
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_dir_falls_back_to_generation() {
        let spec = DatasetSpec {
            n_data: 50,
            ..PaperDataset::ImageNet.spec()
        };
        let data = load_or_generate(Path::new("/nonexistent-root/cache"), &spec, 3);
        assert_eq!(data.len(), 50);
    }
}
