//! Query workloads: the "Query Selection" procedure of §6.
//!
//! * Search queries are random points of the dataset, split 80/20 into
//!   train/test. Each training query gets 10 thresholds at *uniform*
//!   selectivities in `(0, 1%]`; each testing query gets 10 thresholds at a
//!   low-selectivity-heavy ("geometric") distribution, to probe
//!   generalization exactly as the paper does.
//! * Join sets draw member queries from the corresponding pool: training
//!   sizes in `[1, 100)`, testing sizes in the three buckets `[50,100)`,
//!   `[100,150)`, `[150,200)`, with a shared per-set threshold.
//!
//! All labels are exact, derived from a [`DistanceTable`].

use crate::ground_truth::DistanceTable;
use crate::metric::Metric;
use crate::paper::DatasetSpec;
use crate::vector::VectorData;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Upper bound on query selectivity — the paper keeps both training and
/// testing selectivities below 1% of the dataset (§6).
pub const MAX_SELECTIVITY: f32 = 0.01;

/// Number of thresholds generated per query (§6).
pub const THRESHOLDS_PER_QUERY: usize = 10;

/// One labelled similarity-search sample: `(q, τ, card)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchSample {
    /// Index into the workload's query collection.
    pub query: usize,
    pub tau: f32,
    pub card: f32,
}

/// A labelled search workload over one dataset.
#[derive(Debug)]
pub struct SearchWorkload {
    /// Materialized query vectors (train queries first, then test queries).
    pub queries: VectorData,
    /// Number of training queries (`queries[..n_train]`).
    pub n_train_queries: usize,
    pub train: Vec<SearchSample>,
    pub test: Vec<SearchSample>,
    /// The exact distance table backing the labels; kept for per-segment
    /// label derivation and for exact join cardinalities.
    pub table: DistanceTable,
    pub metric: Metric,
    pub tau_max: f32,
}

impl SearchWorkload {
    /// Builds the workload for a dataset per the paper's procedure.
    pub fn build(data: &VectorData, spec: &DatasetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let n_train = spec.n_train_queries;
        let n_test = spec.n_test_queries;
        // Random dataset points as queries (distinct).
        let mut ids: Vec<usize> = (0..data.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(n_train + n_test);
        let queries = data.gather(&ids);
        let table = DistanceTable::compute(&queries, data, spec.metric);

        let mut train = Vec::with_capacity(n_train * THRESHOLDS_PER_QUERY);
        let mut test = Vec::with_capacity(n_test * THRESHOLDS_PER_QUERY);
        for q in 0..n_train + n_test {
            let sorted = table.sorted_row(q);
            for _ in 0..THRESHOLDS_PER_QUERY {
                let is_train = q < n_train;
                let sel = if is_train {
                    // Uniform selectivity in (0, 1%].
                    rng.gen_range(f32::EPSILON..=MAX_SELECTIVITY)
                } else {
                    // Geometric-like: cube of a uniform biases mass toward
                    // low selectivities ("more queries with lower
                    // selectivity", §6).
                    let u: f32 = rng.gen_range(0.0..1.0);
                    (MAX_SELECTIVITY * u * u * u).max(f32::EPSILON)
                };
                let tau = DistanceTable::tau_at_selectivity(&sorted, sel).min(spec.tau_max);
                let card = table.cardinality(q, tau) as f32;
                let sample = SearchSample {
                    query: q,
                    tau,
                    card,
                };
                if is_train {
                    train.push(sample);
                } else {
                    test.push(sample);
                }
            }
        }
        SearchWorkload {
            queries,
            n_train_queries: n_train,
            train,
            test,
            table,
            metric: spec.metric,
            tau_max: spec.tau_max,
        }
    }

    /// Truncates the training set to the first `n` samples — Exp-7 varies
    /// the training size this way (queries stay grouped, so `n` samples
    /// ≈ `n / 10` queries).
    pub fn with_train_size(&self, n: usize) -> Vec<SearchSample> {
        self.train[..n.min(self.train.len())].to_vec()
    }

    /// Median threshold at the selectivity cap, used as the upper end of
    /// the join threshold range so join sets keep paper-like selectivities.
    pub fn tau_selectivity_cap(&self) -> f32 {
        let mut taus: Vec<f32> = (0..self.n_train_queries)
            .map(|q| {
                let sorted = self.table.sorted_row(q);
                DistanceTable::tau_at_selectivity(&sorted, MAX_SELECTIVITY)
            })
            .collect();
        taus.sort_by(|a, b| a.total_cmp(b));
        taus.get(taus.len() / 2)
            .copied()
            .unwrap_or(self.tau_max)
            .min(self.tau_max)
    }
}

/// One labelled join set: member queries, a shared threshold, and the exact
/// total pair count `card(Q, τ) = Σ_q card(q, τ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSet {
    /// Indices into the search workload's query collection.
    pub query_ids: Vec<usize>,
    pub tau: f32,
    pub card: f32,
}

/// A labelled join workload (training sets + the three test size buckets).
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    pub train: Vec<JoinSet>,
    /// Test sets bucketed by size: `[50,100)`, `[100,150)`, `[150,200)`.
    pub test_buckets: [Vec<JoinSet>; 3],
}

/// Size buckets for join testing, as in §6.
pub const JOIN_TEST_BUCKETS: [(usize, usize); 3] = [(50, 100), (100, 150), (150, 200)];

impl JoinWorkload {
    /// Builds join sets on top of a search workload.
    ///
    /// Training sets sample sizes from `[1, 100)` and members from the
    /// training-query pool; test sets sample members from the test pool
    /// (with replacement when the scaled pool is smaller than the set
    /// size). Thresholds are evenly spaced in `(0, τ_cap]` where `τ_cap`
    /// keeps per-query selectivities at paper-like levels.
    pub fn build(
        search: &SearchWorkload,
        n_train_sets: usize,
        n_test_sets_per_bucket: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10_1DEA);
        let tau_cap = search.tau_selectivity_cap();
        let n_train_q = search.n_train_queries;
        let n_test_q = search.table.n_queries() - n_train_q;
        assert!(
            n_train_q > 0 && n_test_q > 0,
            "need both train and test queries for joins"
        );

        fn make_set(
            rng: &mut StdRng,
            search: &SearchWorkload,
            pool_start: usize,
            pool_len: usize,
            size: usize,
            tau: f32,
        ) -> JoinSet {
            let query_ids: Vec<usize> = (0..size)
                .map(|_| pool_start + rng.gen_range(0..pool_len))
                .collect();
            let card: f32 = query_ids
                .iter()
                .map(|&q| search.table.cardinality(q, tau) as f32)
                .sum();
            JoinSet {
                query_ids,
                tau,
                card,
            }
        }

        let mut train = Vec::with_capacity(n_train_sets);
        for i in 0..n_train_sets {
            let size = rng.gen_range(1..100usize);
            // 10 evenly spaced thresholds over (0, τ_cap], cycled per set.
            let step = (i % THRESHOLDS_PER_QUERY + 1) as f32 / THRESHOLDS_PER_QUERY as f32;
            let tau = tau_cap * step;
            train.push(make_set(&mut rng, search, 0, n_train_q, size, tau));
        }

        let mut test_buckets: [Vec<JoinSet>; 3] = Default::default();
        for (b, &(lo, hi)) in JOIN_TEST_BUCKETS.iter().enumerate() {
            for _ in 0..n_test_sets_per_bucket {
                let size = rng.gen_range(lo..hi);
                let tau = tau_cap * rng.gen_range(0.1..=1.0f32);
                test_buckets[b].push(make_set(&mut rng, search, n_train_q, n_test_q, size, tau));
            }
        }
        JoinWorkload {
            train,
            test_buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperDataset;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            n_data: 400,
            n_train_queries: 20,
            n_test_queries: 10,
            ..PaperDataset::ImageNet.spec()
        }
    }

    #[test]
    fn workload_sizes_and_split_follow_spec() {
        let spec = tiny_spec();
        let data = spec.generate(1);
        let w = SearchWorkload::build(&data, &spec, 1);
        assert_eq!(w.queries.len(), 30);
        assert_eq!(w.n_train_queries, 20);
        assert_eq!(w.train.len(), 20 * THRESHOLDS_PER_QUERY);
        assert_eq!(w.test.len(), 10 * THRESHOLDS_PER_QUERY);
        // Train samples reference train queries only.
        assert!(w.train.iter().all(|s| s.query < 20));
        assert!(w.test.iter().all(|s| s.query >= 20));
    }

    #[test]
    fn labels_are_exact_and_selectivity_capped() {
        let spec = tiny_spec();
        let data = spec.generate(2);
        let w = SearchWorkload::build(&data, &spec, 2);
        for s in w.train.iter().chain(&w.test) {
            assert_eq!(s.card, w.table.cardinality(s.query, s.tau) as f32);
            assert!(s.tau <= spec.tau_max + 1e-6);
        }
        // Mean selectivity should be paper-like (≤ ~1%, allowing ties and
        // the ceil-rank to nudge individual queries slightly above).
        let mean_sel: f32 = w
            .train
            .iter()
            .map(|s| s.card / spec.n_data as f32)
            .sum::<f32>()
            / w.train.len() as f32;
        assert!(mean_sel <= 0.03, "mean selectivity {mean_sel} too large");
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let spec = tiny_spec();
        let data = spec.generate(3);
        let a = SearchWorkload::build(&data, &spec, 7);
        let b = SearchWorkload::build(&data, &spec, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn join_sets_have_exact_summed_cardinalities() {
        let spec = tiny_spec();
        let data = spec.generate(4);
        let w = SearchWorkload::build(&data, &spec, 4);
        let j = JoinWorkload::build(&w, 20, 5, 4);
        assert_eq!(j.train.len(), 20);
        for set in j.train.iter().chain(j.test_buckets.iter().flatten()) {
            let expect: f32 = set
                .query_ids
                .iter()
                .map(|&q| w.table.cardinality(q, set.tau) as f32)
                .sum();
            assert_eq!(set.card, expect);
        }
        // Bucket sizes respect their ranges.
        for (b, &(lo, hi)) in JOIN_TEST_BUCKETS.iter().enumerate() {
            for set in &j.test_buckets[b] {
                assert!(set.query_ids.len() >= lo && set.query_ids.len() < hi);
            }
        }
    }

    #[test]
    fn join_train_members_come_from_train_pool_and_test_from_test_pool() {
        let spec = tiny_spec();
        let data = spec.generate(5);
        let w = SearchWorkload::build(&data, &spec, 5);
        let j = JoinWorkload::build(&w, 10, 3, 5);
        assert!(j.train.iter().all(|s| s.query_ids.iter().all(|&q| q < 20)));
        assert!(j
            .test_buckets
            .iter()
            .flatten()
            .all(|s| s.query_ids.iter().all(|&q| (20..30).contains(&q))));
    }
}
