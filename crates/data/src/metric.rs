//! Distance functions (§2 and §3.2 of the paper).
//!
//! All metrics are *normalized* to land (mostly) in `[0, 1]` so that
//! thresholds are comparable across datasets, matching the τ_max values of
//! Table 3:
//!
//! * `L1`, `L2` — Minkowski distances; for the dense datasets the vectors
//!   are unit-normalized at generation time so L2 ∈ [0, 2].
//! * `Angular` — `arccos(cos_sim) / π ∈ [0, 1]` (the paper prefers angular
//!   over cosine because "its value is always between 0 and 1").
//! * `Hamming` — fraction of differing positions.
//! * `Jaccard` — `1 − |u ∩ v| / |u ∪ v|`; the paper converts Jaccard to an
//!   equivalent Hamming form on binary sets and we keep the native binary
//!   formulation.
//!
//! Every metric also accepts a *fractional* (dense) operand against a
//! binary one, which is how distances from binary points to segment
//! centroids are computed: Hamming generalizes to the mean absolute
//! difference and Jaccard to the Ruzicka (generalized Jaccard) form.
//!
//! # Kernel dispatch
//!
//! Each `(metric, storage-kind)` combination resolves to a monomorphic
//! kernel from [`crate::kernels`] exactly once per pair: dense×dense pairs
//! run eight-lane slice reductions, binary×binary pairs run popcount
//! reductions for *every* metric (on 0/1 coordinates L1, L2 and L∞ are all
//! functions of the differing-bit count), and mixed pairs expand the binary
//! side into a reused thread-local buffer before taking the dense path
//! (every metric here is symmetric, so the operand order never matters).
//! The batched entry points ([`Metric::distance_many`],
//! [`Metric::distance_to_centroids`], [`Metric::count_within`]) hoist that
//! dispatch out of the per-row loop and walk contiguous row-major storage.
//!
//! The pre-kernel coordinate-at-a-time path is preserved in [`reference`]
//! for property tests and A/B benchmarks.

use crate::kernels;
use crate::vector::{VectorData, VectorView};
use serde::{Deserialize, Serialize};

/// A similarity-distance function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Manhattan distance, normalized by the dimension.
    L1,
    /// Euclidean distance (not normalized; dense datasets are generated
    /// unit-norm so distances stay small).
    L2,
    /// Chebyshev (L∞) distance — the `m → ∞` member of the §3.2 `L_m`
    /// family; decomposes over query segments via `max` instead of sum.
    Linf,
    /// Angular distance `arccos(u·v / |u||v|) / π`.
    Angular,
    /// Cosine distance `1 − u·v / |u||v|` (§3.2 shows it equals
    /// `dis_L2²/2` on unit vectors). Not a true metric (no triangle
    /// inequality), so the pivot index rejects it.
    Cosine,
    /// Fraction of differing coordinates.
    Hamming,
    /// `1 − |u∩v| / |u∪v|` on binary vectors; generalized (Ruzicka) form
    /// against fractional operands.
    Jaccard,
}

impl Metric {
    /// Computes the distance between two vectors of the same dimension.
    ///
    /// # Panics
    /// Panics (in debug builds) if the dimensions differ.
    pub fn distance(self, a: VectorView<'_>, b: VectorView<'_>) -> f32 {
        debug_assert_eq!(
            a.dim(),
            b.dim(),
            "metric operands must share dimensionality"
        );
        use VectorView::{Binary, Dense};
        match (a, b) {
            (Dense(x), Dense(y)) => self.dense(x, y),
            (Binary { words: u, dim }, Binary { words: v, .. }) => self.binary(u, v, dim),
            (Binary { words, dim }, Dense(y)) | (Dense(y), Binary { words, dim }) => {
                kernels::with_expand_buf(|buf| {
                    kernels::expand_bits_into(words, dim, buf);
                    self.dense(buf, y)
                })
            }
        }
    }

    /// Distance between a vector and a dense (possibly fractional) centroid.
    pub fn distance_to_centroid(self, a: VectorView<'_>, centroid: &[f32]) -> f32 {
        self.distance(a, VectorView::Dense(centroid))
    }

    /// Distances from one query to every row of a collection; the batched
    /// form of [`Metric::distance`] — kernel dispatch happens once and the
    /// row loop walks contiguous storage.
    pub fn distance_many(self, q: VectorView<'_>, data: &VectorData) -> Vec<f32> {
        let mut out = vec![0.0f32; data.len()];
        self.distance_many_into(q, data, &mut out);
        out
    }

    /// [`Metric::distance_many`] writing into a caller-owned buffer of
    /// length `data.len()` (the allocation-free hot path for feature
    /// construction and ground-truth scans).
    ///
    /// # Panics
    /// Panics if `out.len() != data.len()`; debug-panics on dimension
    /// mismatch.
    pub fn distance_many_into(self, q: VectorView<'_>, data: &VectorData, out: &mut [f32]) {
        assert_eq!(out.len(), data.len(), "distance_many output length");
        debug_assert!(
            data.is_empty() || q.dim() == data.dim(),
            "metric operands must share dimensionality"
        );
        use VectorView::{Binary, Dense};
        match (q, data) {
            (Binary { words: u, dim }, VectorData::Binary(b)) => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.binary(u, b.row(i), dim);
                }
            }
            (Dense(x), VectorData::Dense(d)) => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.dense(x, d.row(i));
                }
            }
            (Binary { words, dim }, VectorData::Dense(d)) => {
                // Expand the query once; every row then runs a dense kernel.
                kernels::with_expand_buf(|buf| {
                    kernels::expand_bits_into(words, dim, buf);
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = self.dense(buf, d.row(i));
                    }
                });
            }
            (Dense(x), VectorData::Binary(b)) => {
                // Rows must be expanded; reuse one buffer for all of them.
                kernels::with_expand_buf(|buf| {
                    for (i, o) in out.iter_mut().enumerate() {
                        kernels::expand_bits_into(b.row(i), b.dim(), buf);
                        *o = self.dense(buf, x);
                    }
                });
            }
        }
    }

    /// Number of rows within distance `tau` of the query — the sampling
    /// baseline's scan, batched without materializing the distances for the
    /// caller.
    pub fn count_within(self, q: VectorView<'_>, data: &VectorData, tau: f32) -> usize {
        kernels::with_dist_buf(|buf| {
            buf.clear();
            buf.resize(data.len(), 0.0);
            self.distance_many_into(q, data, buf);
            buf.iter().filter(|&&d| d <= tau).count()
        })
    }

    /// Distances from one query to a set of dense (fractional) centroids —
    /// the batched form of [`Metric::distance_to_centroid`]. A binary query
    /// is expanded once, not once per centroid.
    pub fn distance_to_centroids(self, q: VectorView<'_>, centroids: &[Vec<f32>]) -> Vec<f32> {
        let mut out = vec![0.0f32; centroids.len()];
        self.distance_to_centroids_into(q, centroids, &mut out);
        out
    }

    /// [`Metric::distance_to_centroids`] writing into a caller-owned buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != centroids.len()`.
    pub fn distance_to_centroids_into(
        self,
        q: VectorView<'_>,
        centroids: &[Vec<f32>],
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), centroids.len(), "centroid output length");
        match q {
            VectorView::Dense(x) => {
                for (o, c) in out.iter_mut().zip(centroids) {
                    *o = self.dense(x, c);
                }
            }
            VectorView::Binary { words, dim } => kernels::with_expand_buf(|buf| {
                kernels::expand_bits_into(words, dim, buf);
                for (o, c) in out.iter_mut().zip(centroids) {
                    *o = self.dense(buf, c);
                }
            }),
        }
    }

    /// Dense×dense kernel: one [`crate::kernels`] reduction plus the
    /// metric's finishing arithmetic.
    fn dense(self, x: &[f32], y: &[f32]) -> f32 {
        let dim = x.len();
        match self {
            // Hamming's generalized form on fractional operands is the mean
            // absolute difference — the same reduction as normalized L1.
            Metric::L1 | Metric::Hamming => kernels::l1_sum(x, y) / dim as f32,
            Metric::L2 => kernels::sq_l2(x, y).sqrt(),
            Metric::Linf => kernels::linf(x, y),
            Metric::Angular | Metric::Cosine => {
                let (dot, na, nb) = kernels::dot_norms(x, y);
                self.finish_angle(dot, na, nb)
            }
            Metric::Jaccard => {
                // Ruzicka / generalized Jaccard on non-negative operands.
                let (mins, maxs) = kernels::minmax_sums(x, y);
                // cardest-lint: allow(float-total-order): exact zero guard against division by zero, not a tolerance check
                if maxs == 0.0 {
                    0.0
                } else {
                    1.0 - mins / maxs
                }
            }
        }
    }

    /// Binary×binary kernel: every metric is a function of a popcount
    /// reduction when coordinates are 0/1.
    fn binary(self, u: &[u64], v: &[u64], dim: usize) -> f32 {
        match self {
            Metric::L1 | Metric::Hamming => kernels::hamming_words(u, v) as f32 / dim as f32,
            // (xᵢ−yᵢ)² = |xᵢ−yᵢ| on bits, so squared L2 is the raw
            // differing-bit count.
            Metric::L2 => (kernels::hamming_words(u, v) as f32).sqrt(),
            Metric::Linf => {
                if kernels::hamming_words(u, v) > 0 {
                    1.0
                } else {
                    0.0
                }
            }
            Metric::Angular | Metric::Cosine => {
                // u·v = |u∩v|, |u|² = popcount(u); exact in f32 for any
                // realistic dimension, so this matches the elementwise path
                // bit-for-bit.
                let (inter, _) = kernels::inter_union_words(u, v);
                self.finish_angle(
                    inter as f32,
                    kernels::popcount_words(u) as f32,
                    kernels::popcount_words(v) as f32,
                )
            }
            Metric::Jaccard => {
                let (inter, union) = kernels::inter_union_words(u, v);
                if union == 0 {
                    0.0
                } else {
                    1.0 - inter as f32 / union as f32
                }
            }
        }
    }

    /// Shared cosine/angular finish: zero-norm operands are maximally
    /// distant by convention, and rounding is clamped out of `acos`'s
    /// domain edges.
    fn finish_angle(self, dot: f32, na: f32, nb: f32) -> f32 {
        // cardest-lint: allow(float-total-order): exact zero guard against division by zero, not a tolerance check
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        if self == Metric::Cosine {
            1.0 - cos
        } else {
            cos.acos() / std::f32::consts::PI
        }
    }

    /// Whether this metric's datasets are binary in this reproduction.
    pub fn is_binary(self) -> bool {
        matches!(self, Metric::Hamming | Metric::Jaccard)
    }

    /// Whether the metric satisfies the triangle inequality between data
    /// points (required by the pivot index and the segment lower bound).
    pub fn is_true_metric(self) -> bool {
        !matches!(self, Metric::Cosine)
    }
}

/// The pre-kernel scalar path, kept verbatim: popcount fast paths for
/// binary Hamming/Jaccard and a coordinate-at-a-time `elementwise` loop
/// (with its per-coordinate storage `match`) for everything else. Property
/// tests pin the kernel dispatcher against it and the `distance_kernels`
/// bench reports measured speedups over it.
pub mod reference {
    use super::Metric;
    use crate::vector::VectorView;

    /// The historical [`Metric::distance`] dispatch.
    pub fn distance(metric: Metric, a: VectorView<'_>, b: VectorView<'_>) -> f32 {
        use VectorView::Binary;
        match (metric, a, b) {
            (Metric::Hamming, Binary { words: u, dim }, Binary { words: v, .. }) => {
                let diff: u32 = u.iter().zip(v).map(|(x, y)| (x ^ y).count_ones()).sum();
                diff as f32 / dim as f32
            }
            (Metric::Jaccard, Binary { words: u, .. }, Binary { words: v, .. }) => {
                let inter: u32 = u.iter().zip(v).map(|(x, y)| (x & y).count_ones()).sum();
                let union: u32 = u.iter().zip(v).map(|(x, y)| (x | y).count_ones()).sum();
                if union == 0 {
                    0.0
                } else {
                    1.0 - inter as f32 / union as f32
                }
            }
            (m, a, b) => elementwise(m, a, b),
        }
    }

    /// Iterates both operands as `f32` coordinates without materializing
    /// buffers, computing the requested metric.
    pub fn elementwise(metric: Metric, a: VectorView<'_>, b: VectorView<'_>) -> f32 {
        let dim = a.dim();
        let get = |v: &VectorView<'_>, j: usize| -> f32 {
            match v {
                VectorView::Dense(s) => s[j],
                VectorView::Binary { words, .. } => ((words[j / 64] >> (j % 64)) & 1) as f32,
            }
        };
        match metric {
            Metric::L1 => {
                let mut s = 0.0f32;
                for j in 0..dim {
                    s += (get(&a, j) - get(&b, j)).abs();
                }
                s / dim as f32
            }
            Metric::L2 => {
                let mut s = 0.0f32;
                for j in 0..dim {
                    let d = get(&a, j) - get(&b, j);
                    s += d * d;
                }
                s.sqrt()
            }
            Metric::Linf => {
                let mut m = 0.0f32;
                for j in 0..dim {
                    m = m.max((get(&a, j) - get(&b, j)).abs());
                }
                m
            }
            Metric::Angular | Metric::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                for j in 0..dim {
                    let (x, y) = (get(&a, j), get(&b, j));
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                // cardest-lint: allow(float-total-order): exact zero guard against division by zero, not a tolerance check
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
                if metric == Metric::Cosine {
                    1.0 - cos
                } else {
                    cos.acos() / std::f32::consts::PI
                }
            }
            Metric::Hamming => {
                // Generalized form: mean absolute difference. On 0/1
                // operands this equals the classic Hamming fraction.
                let mut s = 0.0f32;
                for j in 0..dim {
                    s += (get(&a, j) - get(&b, j)).abs();
                }
                s / dim as f32
            }
            Metric::Jaccard => {
                // Ruzicka / generalized Jaccard on non-negative operands.
                let (mut mins, mut maxs) = (0.0f32, 0.0f32);
                for j in 0..dim {
                    let (x, y) = (get(&a, j), get(&b, j));
                    mins += x.min(y);
                    maxs += x.max(y);
                }
                // cardest-lint: allow(float-total-order): exact zero guard against division by zero, not a tolerance check
                if maxs == 0.0 {
                    0.0
                } else {
                    1.0 - mins / maxs
                }
            }
        }
    }
}

pub const ALL_METRICS: [Metric; 7] = [
    Metric::L1,
    Metric::L2,
    Metric::Linf,
    Metric::Angular,
    Metric::Cosine,
    Metric::Hamming,
    Metric::Jaccard,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{BinaryData, DenseData};

    fn bin(dim: usize, on: &[usize]) -> BinaryData {
        let mut b = BinaryData::new(dim);
        b.push_indices(on);
        b
    }

    #[test]
    fn hamming_popcount_matches_elementwise() {
        let u = bin(70, &[0, 5, 64, 69]);
        let v = bin(70, &[0, 6, 64]);
        let uv = VectorView::Binary {
            words: u.row(0),
            dim: 70,
        };
        let vv = VectorView::Binary {
            words: v.row(0),
            dim: 70,
        };
        let fast = Metric::Hamming.distance(uv, vv);
        let slow = reference::elementwise(Metric::Hamming, uv, vv);
        assert!((fast - slow).abs() < 1e-7);
        // Differing bits: 5, 6, 69 → 3/70.
        assert!((fast - 3.0 / 70.0).abs() < 1e-6);
    }

    #[test]
    fn every_metric_matches_reference_on_binary_pairs() {
        // The kernel dispatcher routes *all* metrics through popcounts on
        // binary×binary; the reference walks coordinates one at a time.
        let u = bin(70, &[0, 5, 11, 40, 64, 69]);
        let v = bin(70, &[0, 6, 11, 41, 64]);
        let uv = VectorView::Binary {
            words: u.row(0),
            dim: 70,
        };
        let vv = VectorView::Binary {
            words: v.row(0),
            dim: 70,
        };
        for m in ALL_METRICS {
            let fast = m.distance(uv, vv);
            let slow = reference::distance(m, uv, vv);
            assert!(
                (fast - slow).abs() <= 1e-6 * slow.abs().max(1.0),
                "{m:?}: kernel {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn every_metric_matches_reference_on_mixed_pairs() {
        let u = bin(12, &[0, 3, 7, 11]);
        let uv = VectorView::Binary {
            words: u.row(0),
            dim: 12,
        };
        let c: Vec<f32> = (0..12).map(|j| (j as f32) / 11.0).collect();
        for m in ALL_METRICS {
            let ab = m.distance(uv, VectorView::Dense(&c));
            let ba = m.distance(VectorView::Dense(&c), uv);
            let slow = reference::distance(m, uv, VectorView::Dense(&c));
            assert!(
                (ab - slow).abs() <= 1e-5 * slow.abs().max(1.0),
                "{m:?}: kernel {ab} vs reference {slow}"
            );
            assert_eq!(ab, ba, "{m:?} mixed-operand symmetry");
        }
    }

    #[test]
    fn distance_many_matches_per_pair_calls() {
        let q: Vec<f32> = (0..17).map(|j| (j as f32 * 0.3).sin()).collect();
        let mut d = DenseData::new(17);
        for i in 0..9 {
            let row: Vec<f32> = (0..17).map(|j| ((i * 17 + j) as f32 * 0.7).cos()).collect();
            d.push(&row);
        }
        let data = VectorData::Dense(d);
        for m in ALL_METRICS {
            let batched = m.distance_many(VectorView::Dense(&q), &data);
            for (i, &b) in batched.iter().enumerate() {
                let one = m.distance(VectorView::Dense(&q), data.view(i));
                assert_eq!(b, one, "{m:?} row {i}");
            }
        }
    }

    #[test]
    fn count_within_matches_filtered_scan() {
        let mut b = BinaryData::new(30);
        for i in 0..20 {
            b.push_indices(&[(i * 3) % 30, (i * 7) % 30, i % 30]);
        }
        let q = bin(30, &[0, 3, 7]);
        let qv = VectorView::Binary {
            words: q.row(0),
            dim: 30,
        };
        let data = VectorData::Binary(b);
        for m in [Metric::Hamming, Metric::Jaccard] {
            for tau in [0.0, 0.1, 0.2, 0.5, 1.0] {
                let fast = m.count_within(qv, &data, tau);
                let slow = (0..data.len())
                    .filter(|&i| m.distance(qv, data.view(i)) <= tau)
                    .count();
                assert_eq!(fast, slow, "{m:?} tau={tau}");
            }
        }
    }

    #[test]
    fn distance_to_centroids_matches_singles() {
        let q = bin(20, &[1, 4, 9, 16]);
        let qv = VectorView::Binary {
            words: q.row(0),
            dim: 20,
        };
        let cents: Vec<Vec<f32>> = (0..5)
            .map(|c| {
                (0..20)
                    .map(|j| ((c * 20 + j) as f32 * 0.13).fract())
                    .collect()
            })
            .collect();
        for m in ALL_METRICS {
            let batched = m.distance_to_centroids(qv, &cents);
            for (c, &b) in batched.iter().enumerate() {
                assert_eq!(b, m.distance_to_centroid(qv, &cents[c]), "{m:?} c={c}");
            }
        }
    }

    #[test]
    fn jaccard_matches_paper_example() {
        // §3.2: u = {a,b,c}, v = {a,b,d} over universe {a,b,c,d}: distance 0.5.
        let u = bin(4, &[0, 1, 2]);
        let v = bin(4, &[0, 1, 3]);
        let d = Metric::Jaccard.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 4,
            },
        );
        assert!((d - 0.5).abs() < 1e-6);
        // And the paper's equivalent Hamming on the one-hot encodings is
        // also 0.5 (2 differing bits out of 4).
        let h = Metric::Hamming.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 4,
            },
        );
        assert!((h - 0.5).abs() < 1e-6);
    }

    #[test]
    fn angular_distance_basics() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let d = Metric::Angular.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!(
            (d - 0.5).abs() < 1e-6,
            "orthogonal vectors are at angular distance 0.5"
        );
        let d2 = Metric::Angular.distance(VectorView::Dense(&a), VectorView::Dense(&a));
        assert!(d2.abs() < 1e-3);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        let d = Metric::L2.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn linf_is_the_max_coordinate_gap_and_a_true_metric() {
        let a = [0.0f32, 3.0, -1.0];
        let b = [4.0f32, 1.0, -1.5];
        let d = Metric::Linf.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!((d - 4.0).abs() < 1e-6);
        assert!(Metric::Linf.is_true_metric());
        // Segment decomposition: L∞ over the whole vector is the max of
        // the per-segment L∞ distances (§3.2's argument for L_m).
        let d1 = Metric::Linf.distance(VectorView::Dense(&a[..2]), VectorView::Dense(&b[..2]));
        let d2 = Metric::Linf.distance(VectorView::Dense(&a[2..]), VectorView::Dense(&b[2..]));
        assert!((d - d1.max(d2)).abs() < 1e-6);
    }

    #[test]
    fn hamming_to_fractional_centroid_is_mean_abs_diff() {
        let u = bin(4, &[0, 1]);
        let c = vec![0.5f32, 1.0, 0.0, 0.25];
        let d = Metric::Hamming.distance_to_centroid(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            &c,
        );
        // |1-0.5| + |1-1| + |0-0| + |0-0.25| = 0.75 → /4
        assert!((d - 0.1875).abs() < 1e-6);
    }

    #[test]
    fn jaccard_of_empty_sets_is_zero() {
        let u = bin(8, &[]);
        let v = bin(8, &[]);
        let d = Metric::Jaccard.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 8,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 8,
            },
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn cosine_equals_half_squared_l2_on_unit_vectors() {
        // §3.2: dis_cos(u, v) = dis_L2(u, v)² / 2 for |u| = |v| = 1.
        let mut u = [0.6f32, 0.8, 0.0];
        let mut v = [0.0f32, 0.6, 0.8];
        let norm = |x: &mut [f32]| {
            let n = x.iter().map(|a| a * a).sum::<f32>().sqrt();
            x.iter_mut().for_each(|a| *a /= n);
        };
        norm(&mut u);
        norm(&mut v);
        let cos = Metric::Cosine.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        let l2 = Metric::L2.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        assert!(
            (cos - l2 * l2 / 2.0).abs() < 1e-5,
            "cos={cos} l2²/2={}",
            l2 * l2 / 2.0
        );
        // And angular is arccos(1 − cos)/π.
        let ang = Metric::Angular.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        assert!((ang - (1.0 - cos).acos() / std::f32::consts::PI).abs() < 1e-5);
    }

    #[test]
    fn cosine_is_not_flagged_as_true_metric() {
        assert!(!Metric::Cosine.is_true_metric());
        for m in [
            Metric::L1,
            Metric::L2,
            Metric::Angular,
            Metric::Hamming,
            Metric::Jaccard,
        ] {
            assert!(m.is_true_metric());
        }
    }

    #[test]
    fn metrics_are_symmetric_and_zero_on_self() {
        let a = [0.3f32, -0.2, 0.9, 0.1];
        let b = [0.1f32, 0.7, -0.3, 0.5];
        for m in [Metric::L1, Metric::L2, Metric::Angular, Metric::Cosine] {
            let ab = m.distance(VectorView::Dense(&a), VectorView::Dense(&b));
            let ba = m.distance(VectorView::Dense(&b), VectorView::Dense(&a));
            assert!((ab - ba).abs() < 1e-6, "{m:?} not symmetric");
            let aa = m.distance(VectorView::Dense(&a), VectorView::Dense(&a));
            assert!(aa.abs() < 1e-3, "{m:?} not ~zero on self: {aa}");
        }
    }
}
