//! Distance functions (§2 and §3.2 of the paper).
//!
//! All metrics are *normalized* to land (mostly) in `[0, 1]` so that
//! thresholds are comparable across datasets, matching the τ_max values of
//! Table 3:
//!
//! * `L1`, `L2` — Minkowski distances; for the dense datasets the vectors
//!   are unit-normalized at generation time so L2 ∈ [0, 2].
//! * `Angular` — `arccos(cos_sim) / π ∈ [0, 1]` (the paper prefers angular
//!   over cosine because "its value is always between 0 and 1").
//! * `Hamming` — fraction of differing positions.
//! * `Jaccard` — `1 − |u ∩ v| / |u ∪ v|`; the paper converts Jaccard to an
//!   equivalent Hamming form on binary sets and we keep the native binary
//!   formulation.
//!
//! Every metric also accepts a *fractional* (dense) operand against a
//! binary one, which is how distances from binary points to segment
//! centroids are computed: Hamming generalizes to the mean absolute
//! difference and Jaccard to the Ruzicka (generalized Jaccard) form.

use crate::vector::VectorView;
use serde::{Deserialize, Serialize};

/// A similarity-distance function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Manhattan distance, normalized by the dimension.
    L1,
    /// Euclidean distance (not normalized; dense datasets are generated
    /// unit-norm so distances stay small).
    L2,
    /// Chebyshev (L∞) distance — the `m → ∞` member of the §3.2 `L_m`
    /// family; decomposes over query segments via `max` instead of sum.
    Linf,
    /// Angular distance `arccos(u·v / |u||v|) / π`.
    Angular,
    /// Cosine distance `1 − u·v / |u||v|` (§3.2 shows it equals
    /// `dis_L2²/2` on unit vectors). Not a true metric (no triangle
    /// inequality), so the pivot index rejects it.
    Cosine,
    /// Fraction of differing coordinates.
    Hamming,
    /// `1 − |u∩v| / |u∪v|` on binary vectors; generalized (Ruzicka) form
    /// against fractional operands.
    Jaccard,
}

impl Metric {
    /// Computes the distance between two vectors of the same dimension.
    ///
    /// # Panics
    /// Panics (in debug builds) if the dimensions differ.
    pub fn distance(self, a: VectorView<'_>, b: VectorView<'_>) -> f32 {
        debug_assert_eq!(
            a.dim(),
            b.dim(),
            "metric operands must share dimensionality"
        );
        use VectorView::Binary;
        match (self, a, b) {
            // Fast binary-binary paths via popcount.
            (Metric::Hamming, Binary { words: u, dim }, Binary { words: v, .. }) => {
                let diff: u32 = u.iter().zip(v).map(|(x, y)| (x ^ y).count_ones()).sum();
                diff as f32 / dim as f32
            }
            (Metric::Jaccard, Binary { words: u, .. }, Binary { words: v, .. }) => {
                let inter: u32 = u.iter().zip(v).map(|(x, y)| (x & y).count_ones()).sum();
                let union: u32 = u.iter().zip(v).map(|(x, y)| (x | y).count_ones()).sum();
                if union == 0 {
                    0.0
                } else {
                    1.0 - inter as f32 / union as f32
                }
            }
            // Everything else goes through the generic elementwise path.
            (m, a, b) => elementwise(m, a, b),
        }
    }

    /// Distance between a vector and a dense (possibly fractional) centroid.
    pub fn distance_to_centroid(self, a: VectorView<'_>, centroid: &[f32]) -> f32 {
        self.distance(a, VectorView::Dense(centroid))
    }

    /// Whether this metric's datasets are binary in this reproduction.
    pub fn is_binary(self) -> bool {
        matches!(self, Metric::Hamming | Metric::Jaccard)
    }

    /// Whether the metric satisfies the triangle inequality between data
    /// points (required by the pivot index and the segment lower bound).
    pub fn is_true_metric(self) -> bool {
        !matches!(self, Metric::Cosine)
    }
}

/// Iterates both operands as `f32` coordinates without materializing
/// buffers, computing the requested metric.
fn elementwise(metric: Metric, a: VectorView<'_>, b: VectorView<'_>) -> f32 {
    let dim = a.dim();
    let get = |v: &VectorView<'_>, j: usize| -> f32 {
        match v {
            VectorView::Dense(s) => s[j],
            VectorView::Binary { words, .. } => ((words[j / 64] >> (j % 64)) & 1) as f32,
        }
    };
    match metric {
        Metric::L1 => {
            let mut s = 0.0f32;
            for j in 0..dim {
                s += (get(&a, j) - get(&b, j)).abs();
            }
            s / dim as f32
        }
        Metric::L2 => {
            let mut s = 0.0f32;
            for j in 0..dim {
                let d = get(&a, j) - get(&b, j);
                s += d * d;
            }
            s.sqrt()
        }
        Metric::Linf => {
            let mut m = 0.0f32;
            for j in 0..dim {
                m = m.max((get(&a, j) - get(&b, j)).abs());
            }
            m
        }
        Metric::Angular | Metric::Cosine => {
            let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
            for j in 0..dim {
                let (x, y) = (get(&a, j), get(&b, j));
                dot += x * y;
                na += x * x;
                nb += y * y;
            }
            if na == 0.0 || nb == 0.0 {
                return 1.0;
            }
            let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
            if metric == Metric::Cosine {
                1.0 - cos
            } else {
                cos.acos() / std::f32::consts::PI
            }
        }
        Metric::Hamming => {
            // Generalized form: mean absolute difference. On 0/1 operands
            // this equals the classic Hamming fraction.
            let mut s = 0.0f32;
            for j in 0..dim {
                s += (get(&a, j) - get(&b, j)).abs();
            }
            s / dim as f32
        }
        Metric::Jaccard => {
            // Ruzicka / generalized Jaccard on non-negative operands.
            let (mut mins, mut maxs) = (0.0f32, 0.0f32);
            for j in 0..dim {
                let (x, y) = (get(&a, j), get(&b, j));
                mins += x.min(y);
                maxs += x.max(y);
            }
            if maxs == 0.0 {
                0.0
            } else {
                1.0 - mins / maxs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::BinaryData;

    fn bin(dim: usize, on: &[usize]) -> BinaryData {
        let mut b = BinaryData::new(dim);
        b.push_indices(on);
        b
    }

    #[test]
    fn hamming_popcount_matches_elementwise() {
        let u = bin(70, &[0, 5, 64, 69]);
        let v = bin(70, &[0, 6, 64]);
        let uv = VectorView::Binary {
            words: u.row(0),
            dim: 70,
        };
        let vv = VectorView::Binary {
            words: v.row(0),
            dim: 70,
        };
        let fast = Metric::Hamming.distance(uv, vv);
        let slow = super::elementwise(Metric::Hamming, uv, vv);
        assert!((fast - slow).abs() < 1e-7);
        // Differing bits: 5, 6, 69 → 3/70.
        assert!((fast - 3.0 / 70.0).abs() < 1e-6);
    }

    #[test]
    fn jaccard_matches_paper_example() {
        // §3.2: u = {a,b,c}, v = {a,b,d} over universe {a,b,c,d}: distance 0.5.
        let u = bin(4, &[0, 1, 2]);
        let v = bin(4, &[0, 1, 3]);
        let d = Metric::Jaccard.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 4,
            },
        );
        assert!((d - 0.5).abs() < 1e-6);
        // And the paper's equivalent Hamming on the one-hot encodings is
        // also 0.5 (2 differing bits out of 4).
        let h = Metric::Hamming.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 4,
            },
        );
        assert!((h - 0.5).abs() < 1e-6);
    }

    #[test]
    fn angular_distance_basics() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let d = Metric::Angular.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!(
            (d - 0.5).abs() < 1e-6,
            "orthogonal vectors are at angular distance 0.5"
        );
        let d2 = Metric::Angular.distance(VectorView::Dense(&a), VectorView::Dense(&a));
        assert!(d2.abs() < 1e-3);
    }

    #[test]
    fn l2_matches_hand_computation() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        let d = Metric::L2.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!((d - 5.0).abs() < 1e-6);
    }

    #[test]
    fn linf_is_the_max_coordinate_gap_and_a_true_metric() {
        let a = [0.0f32, 3.0, -1.0];
        let b = [4.0f32, 1.0, -1.5];
        let d = Metric::Linf.distance(VectorView::Dense(&a), VectorView::Dense(&b));
        assert!((d - 4.0).abs() < 1e-6);
        assert!(Metric::Linf.is_true_metric());
        // Segment decomposition: L∞ over the whole vector is the max of
        // the per-segment L∞ distances (§3.2's argument for L_m).
        let d1 = Metric::Linf.distance(VectorView::Dense(&a[..2]), VectorView::Dense(&b[..2]));
        let d2 = Metric::Linf.distance(VectorView::Dense(&a[2..]), VectorView::Dense(&b[2..]));
        assert!((d - d1.max(d2)).abs() < 1e-6);
    }

    #[test]
    fn hamming_to_fractional_centroid_is_mean_abs_diff() {
        let u = bin(4, &[0, 1]);
        let c = vec![0.5f32, 1.0, 0.0, 0.25];
        let d = Metric::Hamming.distance_to_centroid(
            VectorView::Binary {
                words: u.row(0),
                dim: 4,
            },
            &c,
        );
        // |1-0.5| + |1-1| + |0-0| + |0-0.25| = 0.75 → /4
        assert!((d - 0.1875).abs() < 1e-6);
    }

    #[test]
    fn jaccard_of_empty_sets_is_zero() {
        let u = bin(8, &[]);
        let v = bin(8, &[]);
        let d = Metric::Jaccard.distance(
            VectorView::Binary {
                words: u.row(0),
                dim: 8,
            },
            VectorView::Binary {
                words: v.row(0),
                dim: 8,
            },
        );
        assert_eq!(d, 0.0);
    }

    #[test]
    fn cosine_equals_half_squared_l2_on_unit_vectors() {
        // §3.2: dis_cos(u, v) = dis_L2(u, v)² / 2 for |u| = |v| = 1.
        let mut u = [0.6f32, 0.8, 0.0];
        let mut v = [0.0f32, 0.6, 0.8];
        let norm = |x: &mut [f32]| {
            let n = x.iter().map(|a| a * a).sum::<f32>().sqrt();
            x.iter_mut().for_each(|a| *a /= n);
        };
        norm(&mut u);
        norm(&mut v);
        let cos = Metric::Cosine.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        let l2 = Metric::L2.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        assert!(
            (cos - l2 * l2 / 2.0).abs() < 1e-5,
            "cos={cos} l2²/2={}",
            l2 * l2 / 2.0
        );
        // And angular is arccos(1 − cos)/π.
        let ang = Metric::Angular.distance(VectorView::Dense(&u), VectorView::Dense(&v));
        assert!((ang - (1.0 - cos).acos() / std::f32::consts::PI).abs() < 1e-5);
    }

    #[test]
    fn cosine_is_not_flagged_as_true_metric() {
        assert!(!Metric::Cosine.is_true_metric());
        for m in [
            Metric::L1,
            Metric::L2,
            Metric::Angular,
            Metric::Hamming,
            Metric::Jaccard,
        ] {
            assert!(m.is_true_metric());
        }
    }

    #[test]
    fn metrics_are_symmetric_and_zero_on_self() {
        let a = [0.3f32, -0.2, 0.9, 0.1];
        let b = [0.1f32, 0.7, -0.3, 0.5];
        for m in [Metric::L1, Metric::L2, Metric::Angular, Metric::Cosine] {
            let ab = m.distance(VectorView::Dense(&a), VectorView::Dense(&b));
            let ba = m.distance(VectorView::Dense(&b), VectorView::Dense(&a));
            assert!((ab - ba).abs() < 1e-6, "{m:?} not symmetric");
            let aa = m.distance(VectorView::Dense(&a), VectorView::Dense(&a));
            assert!(aa.abs() < 1e-3, "{m:?} not ~zero on self: {aa}");
        }
    }
}
