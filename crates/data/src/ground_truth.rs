//! Exact ground-truth labelling.
//!
//! Training a cardinality estimator needs, per (query, τ) pair, the true
//! `card(q, τ, D)` — and for the global model, the per-segment cardinalities
//! `card^{j}[i]` (§3.3). Both come from the full query-to-data distance
//! table, which Exp-10 calls out as the dominant offline cost ("the
//! construction computes the distances between all pairs of datasets and
//! queries"). The table is computed once per workload, in parallel across
//! queries, and reused for every threshold.

use crate::metric::Metric;
use crate::vector::VectorData;

/// Dense `n_queries × n_data` matrix of exact distances.
#[derive(Debug, Clone)]
pub struct DistanceTable {
    n_queries: usize,
    n_data: usize,
    dists: Vec<f32>,
}

impl DistanceTable {
    /// Computes all pairwise distances between `queries` and `data`,
    /// splitting the query range over the available cores.
    pub fn compute(queries: &VectorData, data: &VectorData, metric: Metric) -> Self {
        let n_queries = queries.len();
        let n_data = data.len();
        let mut dists = vec![0.0f32; n_queries * n_data];
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let chunk = n_queries.div_ceil(threads.max(1)).max(1);
        std::thread::scope(|s| {
            for (t, slice) in dists.chunks_mut(chunk * n_data).enumerate() {
                let q0 = t * chunk;
                s.spawn(move || {
                    for (dq, q) in slice.chunks_mut(n_data).zip(q0..) {
                        // One batched scan per query row: kernel dispatch
                        // happens once, then the row loop walks the
                        // contiguous data storage.
                        metric.distance_many_into(queries.view(q), data, dq);
                    }
                });
            }
        });
        DistanceTable {
            n_queries,
            n_data,
            dists,
        }
    }

    pub fn n_queries(&self) -> usize {
        self.n_queries
    }

    pub fn n_data(&self) -> usize {
        self.n_data
    }

    /// Distances from query `q` to every data point.
    #[inline]
    pub fn row(&self, q: usize) -> &[f32] {
        &self.dists[q * self.n_data..(q + 1) * self.n_data]
    }

    /// Exact `card(q, τ)` — the number of data points within `tau`.
    pub fn cardinality(&self, q: usize, tau: f32) -> u32 {
        self.row(q).iter().filter(|&&d| d <= tau).count() as u32
    }

    /// Exact per-segment cardinalities `card^{q}[i]` for the global model's
    /// labels, given each point's segment assignment.
    pub fn segment_cardinalities(
        &self,
        q: usize,
        tau: f32,
        seg_of: &[usize],
        n_segments: usize,
    ) -> Vec<u32> {
        assert_eq!(
            seg_of.len(),
            self.n_data,
            "segment assignment length mismatch"
        );
        let mut counts = vec![0u32; n_segments];
        for (&d, &s) in self.row(q).iter().zip(seg_of) {
            if d <= tau {
                counts[s] += 1;
            }
        }
        counts
    }

    /// A sorted copy of query `q`'s distance row, for selectivity-based
    /// threshold selection (one sort serves all 10 thresholds of a query).
    pub fn sorted_row(&self, q: usize) -> Vec<f32> {
        let mut row = self.row(q).to_vec();
        row.sort_by(|a, b| a.total_cmp(b));
        row
    }

    /// The threshold whose exact selectivity is (at least) `selectivity`,
    /// read off a pre-sorted distance row: the distance of the
    /// `⌈selectivity·n⌉`-th nearest point.
    pub fn tau_at_selectivity(sorted_row: &[f32], selectivity: f32) -> f32 {
        debug_assert!(!sorted_row.is_empty());
        let n = sorted_row.len();
        let k = ((selectivity * n as f32).ceil() as usize).clamp(1, n);
        sorted_row[k - 1]
    }
}

/// Convenience bundle: a distance table plus the metric and τ cap it was
/// built under, so downstream code can re-derive labels consistently.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub table: DistanceTable,
    pub metric: Metric,
    pub tau_max: f32,
}

impl GroundTruth {
    pub fn compute(queries: &VectorData, data: &VectorData, metric: Metric, tau_max: f32) -> Self {
        GroundTruth {
            table: DistanceTable::compute(queries, data, metric),
            metric,
            tau_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::DenseData;

    fn line_dataset() -> VectorData {
        // Points at 0.0, 0.1, …, 0.9 on a line (1-d, L1 == |a−b| since the
        // L1 metric normalizes by dim = 1).
        VectorData::Dense(DenseData::from_flat(
            1,
            (0..10).map(|i| i as f32 / 10.0).collect(),
        ))
    }

    #[test]
    fn cardinality_counts_exactly() {
        let data = line_dataset();
        let queries = data.gather(&[0]); // query at 0.0
        let t = DistanceTable::compute(&queries, &data, Metric::L1);
        assert_eq!(t.cardinality(0, 0.0), 1);
        assert_eq!(t.cardinality(0, 0.35), 4); // 0.0, 0.1, 0.2, 0.3
        assert_eq!(t.cardinality(0, 1.0), 10);
    }

    #[test]
    fn segment_cardinalities_partition_the_total() {
        let data = line_dataset();
        let queries = data.gather(&[0, 5]);
        let t = DistanceTable::compute(&queries, &data, Metric::L1);
        let seg_of: Vec<usize> = (0..10).map(|i| i / 5).collect(); // two halves
        for q in 0..2 {
            for tau in [0.1f32, 0.3, 0.7] {
                let segs = t.segment_cardinalities(q, tau, &seg_of, 2);
                assert_eq!(segs.iter().sum::<u32>(), t.cardinality(q, tau));
            }
        }
    }

    #[test]
    fn tau_at_selectivity_hits_requested_rank() {
        let data = line_dataset();
        let queries = data.gather(&[0]);
        let t = DistanceTable::compute(&queries, &data, Metric::L1);
        let sorted = t.sorted_row(0);
        // 30% of 10 points → 3rd nearest → distance 0.2.
        let tau = DistanceTable::tau_at_selectivity(&sorted, 0.3);
        assert!((tau - 0.2).abs() < 1e-6);
        assert!(t.cardinality(0, tau) >= 3);
        // Selectivity 0 still returns the nearest point's distance.
        let tau0 = DistanceTable::tau_at_selectivity(&sorted, 0.0);
        assert!((tau0 - 0.0).abs() < 1e-6);
    }

    #[test]
    fn rows_match_direct_metric_evaluation() {
        let data = line_dataset();
        let queries = data.gather(&[3, 7]);
        let t = DistanceTable::compute(&queries, &data, Metric::L1);
        for (qi, &src) in [3usize, 7].iter().enumerate() {
            for p in 0..data.len() {
                let expect = Metric::L1.distance(data.view(src), data.view(p));
                assert!((t.row(qi)[p] - expect).abs() < 1e-7);
            }
        }
    }
}
