//! The six dataset specifications of Table 3, realized by the synthetic
//! generators of [`crate::synth`] and scaled for a single-core machine.
//!
//! Dimensions and sizes are scaled down together (see `DESIGN.md` §2); the
//! *relative* ordering of the paper's datasets is preserved — ImageNET has
//! the smallest dimension, DBLP the largest, the binary/dense split and the
//! metric per dataset are identical to Table 3.

use crate::metric::Metric;
use crate::synth;
use crate::vector::VectorData;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Identifier for one of the paper's six evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// KDD-Cup 2000 clickstream product baskets (Jaccard).
    Bms,
    /// GloVe 300-d word embeddings (Angular).
    GloVe300,
    /// HashNet binary codes of ImageNET images (Hamming).
    ImageNet,
    /// Aminer publication titles (Edit → Hamming over token vectors).
    Aminer,
    /// YouTube Faces raw frames (Euclidean).
    YouTube,
    /// DBLP publication titles (Edit → Hamming over token vectors).
    Dblp,
}

impl PaperDataset {
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Bms,
        PaperDataset::GloVe300,
        PaperDataset::ImageNet,
        PaperDataset::Aminer,
        PaperDataset::YouTube,
        PaperDataset::Dblp,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Bms => "BMS",
            PaperDataset::GloVe300 => "GloVe300",
            PaperDataset::ImageNet => "ImageNET",
            PaperDataset::Aminer => "Aminer",
            PaperDataset::YouTube => "YouTube",
            PaperDataset::Dblp => "DBLP",
        }
    }

    /// Parses the (case-insensitive) dataset name used on the `exp` CLI.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(s))
    }

    /// The scaled specification for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            // Paper: 512-d, 515,597 points, Jaccard, τmax 0.50, 8000 train.
            PaperDataset::Bms => DatasetSpec {
                dataset: self,
                dim: 128,
                n_data: 12_000,
                n_train_queries: 800,
                n_test_queries: 200,
                metric: Metric::Jaccard,
                tau_max: 0.50,
            },
            // Paper: 300-d, 1.9M points, Angular, τmax 0.60, 8000 train.
            PaperDataset::GloVe300 => DatasetSpec {
                dataset: self,
                dim: 64,
                n_data: 16_000,
                n_train_queries: 800,
                n_test_queries: 200,
                metric: Metric::Angular,
                tau_max: 0.60,
            },
            // Paper: 64-d hash codes, 1.43M points, Hamming, τmax 0.90.
            PaperDataset::ImageNet => DatasetSpec {
                dataset: self,
                dim: 64,
                n_data: 16_000,
                n_train_queries: 800,
                n_test_queries: 200,
                metric: Metric::Hamming,
                tau_max: 0.90,
            },
            // Paper: 2943-d, 1.7M points, Edit→Hamming, τmax 0.05, 4000 train.
            PaperDataset::Aminer => DatasetSpec {
                dataset: self,
                dim: 512,
                n_data: 10_000,
                n_train_queries: 400,
                n_test_queries: 100,
                metric: Metric::Hamming,
                tau_max: 0.08,
            },
            // Paper: 1770-d, 346k points, Euclidean, τmax 0.15, 2400 train.
            PaperDataset::YouTube => DatasetSpec {
                dataset: self,
                dim: 256,
                n_data: 8_000,
                n_train_queries: 240,
                n_test_queries: 60,
                metric: Metric::L2,
                tau_max: 0.30,
            },
            // Paper: 5373-d, 1M points, Edit→Hamming, τmax 0.20, 2400 train.
            PaperDataset::Dblp => DatasetSpec {
                dataset: self,
                dim: 768,
                n_data: 10_000,
                n_train_queries: 240,
                n_test_queries: 60,
                metric: Metric::Hamming,
                tau_max: 0.10,
            },
        }
    }
}

/// A scaled dataset specification (one row of Table 3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub dataset: PaperDataset,
    pub dim: usize,
    pub n_data: usize,
    pub n_train_queries: usize,
    pub n_test_queries: usize,
    pub metric: Metric,
    /// Maximal supported threshold (Table 3's τ_max); thresholds are drawn
    /// by selectivity and capped here.
    pub tau_max: f32,
}

impl DatasetSpec {
    /// Generates the synthetic stand-in for this dataset.
    ///
    /// The per-dataset generator and parameters mirror the modality of the
    /// real data (see module docs). Generation is deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> VectorData {
        self.generate_labeled(seed).data
    }

    /// Like [`DatasetSpec::generate`] but keeps the latent cluster labels
    /// (tests only; the estimators never see them).
    pub fn generate_labeled(&self, seed: u64) -> synth::Labeled {
        // Offset the seed by the dataset so "seed 0 for every dataset"
        // doesn't correlate their randomness.
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9)
                .wrapping_add(self.dataset as u64),
        );
        match self.dataset {
            PaperDataset::Bms => {
                synth::sparse_binary_baskets(&mut rng, self.n_data, self.dim, 24, 9.0, 1.05)
            }
            PaperDataset::GloVe300 => {
                synth::gaussian_mixture_sphere(&mut rng, self.n_data, self.dim, 40, 0.25)
            }
            PaperDataset::ImageNet => synth::hash_codes(&mut rng, self.n_data, self.dim, 48, 0.10),
            PaperDataset::Aminer => {
                synth::token_titles(&mut rng, self.n_data, self.dim, 32, 12.0, 0.85)
            }
            PaperDataset::YouTube => {
                synth::low_rank_mixture(&mut rng, self.n_data, self.dim, 24, 6, 0.06, 0.01)
            }
            PaperDataset::Dblp => {
                synth::token_titles(&mut rng, self.n_data, self.dim, 40, 14.0, 0.85)
            }
        }
    }
}

/// All six scaled specifications, in Table 3 order.
pub fn paper_datasets() -> Vec<DatasetSpec> {
    PaperDataset::ALL.iter().map(|d| d.spec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_six_datasets_with_table3_metrics() {
        let specs = paper_datasets();
        assert_eq!(specs.len(), 6);
        let m = |d: PaperDataset| d.spec().metric;
        assert_eq!(m(PaperDataset::Bms), Metric::Jaccard);
        assert_eq!(m(PaperDataset::GloVe300), Metric::Angular);
        assert_eq!(m(PaperDataset::ImageNet), Metric::Hamming);
        assert_eq!(m(PaperDataset::Aminer), Metric::Hamming);
        assert_eq!(m(PaperDataset::YouTube), Metric::L2);
        assert_eq!(m(PaperDataset::Dblp), Metric::Hamming);
    }

    #[test]
    fn dimension_ordering_matches_paper() {
        // ImageNET smallest … DBLP largest, as in Table 3.
        let d = |p: PaperDataset| p.spec().dim;
        assert!(d(PaperDataset::ImageNet) <= d(PaperDataset::GloVe300));
        assert!(d(PaperDataset::GloVe300) < d(PaperDataset::Bms));
        assert!(d(PaperDataset::Bms) < d(PaperDataset::YouTube));
        assert!(d(PaperDataset::YouTube) < d(PaperDataset::Aminer));
        assert!(d(PaperDataset::Aminer) < d(PaperDataset::Dblp));
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let spec = PaperDataset::ImageNet.spec();
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.n_data);
        assert_eq!(a.dim(), spec.dim);
    }

    #[test]
    fn binary_datasets_are_binary_dense_are_dense() {
        for spec in paper_datasets() {
            // Generate a small clone of the spec to keep the test fast.
            let small = DatasetSpec {
                n_data: 100,
                ..spec
            };
            let data = small.generate(7);
            match spec.metric {
                Metric::Hamming | Metric::Jaccard => {
                    assert!(matches!(data, VectorData::Binary(_)), "{:?}", spec.dataset)
                }
                _ => assert!(matches!(data, VectorData::Dense(_)), "{:?}", spec.dataset),
            }
        }
    }

    #[test]
    fn parse_accepts_case_insensitive_names() {
        assert_eq!(PaperDataset::parse("bms"), Some(PaperDataset::Bms));
        assert_eq!(
            PaperDataset::parse("GLOVE300"),
            Some(PaperDataset::GloVe300)
        );
        assert_eq!(PaperDataset::parse("nope"), None);
    }
}
