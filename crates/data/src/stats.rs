//! Workload statistics: the distributional properties §6's "Query
//! Selection" promises — training thresholds at *uniform* selectivities,
//! testing thresholds at a low-selectivity-heavy ("geometric")
//! distribution, and everything below the 1% selectivity cap.
//!
//! The harness prints these summaries next to Table 3 and the tests use
//! them to verify the workload generator actually has the paper's shape.

use crate::workload::{SearchSample, SearchWorkload};
use serde::{Deserialize, Serialize};

/// Summary of a set of labelled samples' selectivities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectivityStats {
    pub mean: f32,
    pub median: f32,
    pub p90: f32,
    pub max: f32,
    /// Fraction of samples whose cardinality is exactly zero.
    pub zero_fraction: f32,
    pub count: usize,
}

impl SelectivityStats {
    /// Computes selectivity statistics for samples over a dataset of
    /// `n_data` points.
    pub fn compute(samples: &[SearchSample], n_data: usize) -> Self {
        if samples.is_empty() || n_data == 0 {
            return SelectivityStats {
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
                zero_fraction: 0.0,
                count: 0,
            };
        }
        let mut sels: Vec<f32> = samples.iter().map(|s| s.card / n_data as f32).collect();
        sels.sort_by(|a, b| a.total_cmp(b));
        let n = sels.len();
        let pick = |q: f32| sels[(((n as f32) * q).ceil() as usize).clamp(1, n) - 1];
        SelectivityStats {
            mean: sels.iter().sum::<f32>() / n as f32,
            median: pick(0.5),
            p90: pick(0.9),
            max: sels.last().copied().unwrap_or(0.0),
            // cardest-lint: allow(float-total-order): ground-truth cards are exact integer-valued floats; 0.0 is exact
            zero_fraction: samples.iter().filter(|s| s.card == 0.0).count() as f32 / n as f32,
            count: n,
        }
    }
}

/// A fixed-width histogram over `[0, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub max: f32,
    pub counts: Vec<u32>,
}

impl Histogram {
    /// Builds a histogram with `bins` buckets over `[0, max]`; values above
    /// `max` land in the last bucket.
    pub fn build(values: impl IntoIterator<Item = f32>, max: f32, bins: usize) -> Self {
        assert!(
            bins > 0 && max > 0.0,
            "histogram needs positive bins and range"
        );
        let mut counts = vec![0u32; bins];
        for v in values {
            let b = ((v / max * bins as f32).floor() as usize).min(bins - 1);
            counts[b] += 1;
        }
        Histogram { max, counts }
    }

    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Mass fraction in the lower half of the range — the test workload's
    /// geometric bias shows up as a large value here.
    pub fn lower_half_fraction(&self) -> f32 {
        let half = self.counts.len() / 2;
        let lower: u32 = self.counts[..half].iter().sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            lower as f32 / total as f32
        }
    }
}

/// The paper-shape checks bundled: train/test selectivity summaries and
/// the τ histograms of one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    pub train: SelectivityStats,
    pub test: SelectivityStats,
    pub train_tau: Histogram,
    pub test_tau: Histogram,
}

impl WorkloadReport {
    pub fn from_workload(w: &SearchWorkload, n_data: usize) -> Self {
        let tau_max = w
            .train
            .iter()
            .chain(&w.test)
            .map(|s| s.tau)
            .fold(f32::EPSILON, f32::max);
        WorkloadReport {
            train: SelectivityStats::compute(&w.train, n_data),
            test: SelectivityStats::compute(&w.test, n_data),
            train_tau: Histogram::build(w.train.iter().map(|s| s.tau), tau_max, 16),
            test_tau: Histogram::build(w.test.iter().map(|s| s.tau), tau_max, 16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::{DatasetSpec, PaperDataset};

    fn workload() -> (SearchWorkload, usize) {
        let spec = DatasetSpec {
            n_data: 1500,
            n_train_queries: 60,
            n_test_queries: 30,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(9);
        (SearchWorkload::build(&data, &spec, 9), spec.n_data)
    }

    #[test]
    fn selectivities_respect_the_one_percent_regime() {
        let (w, n) = workload();
        let r = WorkloadReport::from_workload(&w, n);
        // Mean selectivity is at the ~1% scale (ties and ceil-ranks can
        // nudge single queries slightly above the cap).
        assert!(
            r.train.mean <= 0.03,
            "train mean selectivity {}",
            r.train.mean
        );
        assert!(r.test.mean <= 0.03, "test mean selectivity {}", r.test.mean);
        assert_eq!(r.train.count, w.train.len());
    }

    #[test]
    fn test_workload_is_biased_to_low_selectivity() {
        // §6: "more queries with lower selectivity" for testing. The test
        // median selectivity must sit below the train median.
        let (w, n) = workload();
        let r = WorkloadReport::from_workload(&w, n);
        assert!(
            r.test.median <= r.train.median,
            "test median {} should be ≤ train median {}",
            r.test.median,
            r.train.median
        );
        // And the τ histogram has most of its mass in the lower half.
        assert!(
            r.test_tau.lower_half_fraction() > 0.5,
            "test τ mass in lower half: {}",
            r.test_tau.lower_half_fraction()
        );
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::build([0.05f32, 0.15, 0.95, 2.0], 1.0, 10);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(
            h.counts[9], 2,
            "out-of-range values clamp to the last bucket"
        );
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = SelectivityStats::compute(&[], 100);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
