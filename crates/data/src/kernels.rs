//! Shared slice-level distance kernels.
//!
//! Every metric in [`crate::metric`] reduces to a handful of dense `f32`
//! reductions (dot, squared L2, L1, L∞, min/max sums) plus popcount
//! reductions over bit-packed words. This module is the single home for
//! those loops: the metric dispatcher picks a kernel *once per pair* (or
//! once per batch) instead of matching on the storage kind at every
//! coordinate, and other crates (k-means, PCA, the NN feature builders)
//! reuse the same kernels instead of carrying private copies.
//!
//! The dense reductions use eight independent accumulator lanes folded in
//! a fixed order, which breaks the sequential FP dependency chain so LLVM
//! autovectorizes the loop; the fold order is a pure function of the slice
//! length, so results are deterministic and independent of any batching or
//! threading at the call site.

use std::cell::RefCell;

const LANES: usize = 8;

/// Folds eight lane accumulators in a fixed tree order (pairs of strided
/// lanes, then two halves). Keeping one canonical fold means every kernel
/// in this module rounds identically for a given length.
#[inline(always)]
fn fold(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Dot product `Σ aᵢ·bᵢ` over equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut s = fold(acc);
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        s += x * y;
    }
    s
}

/// Squared Euclidean distance `Σ (aᵢ−bᵢ)²`.
#[inline]
pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut s = fold(acc);
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Manhattan sum `Σ |aᵢ−bᵢ|` (unnormalized; the metric layer divides by
/// the dimension).
#[inline]
pub fn l1_sum(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            acc[l] += (xa[l] - xb[l]).abs();
        }
    }
    let mut s = fold(acc);
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        s += (x - y).abs();
    }
    s
}

/// Chebyshev distance `max |aᵢ−bᵢ|` (max is associative, so lane order
/// cannot change the result).
#[inline]
pub fn linf(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            acc[l] = acc[l].max((xa[l] - xb[l]).abs());
        }
    }
    let mut m = acc.iter().fold(0.0f32, |x, &y| x.max(y));
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        m = m.max((x - y).abs());
    }
    m
}

/// One-pass `(Σ aᵢbᵢ, Σ aᵢ², Σ bᵢ²)` for cosine/angular distances.
#[inline]
pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut accd = [0.0f32; LANES];
    let mut acca = [0.0f32; LANES];
    let mut accb = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            accd[l] += xa[l] * xb[l];
            acca[l] += xa[l] * xa[l];
            accb[l] += xb[l] * xb[l];
        }
    }
    let (mut d, mut na, mut nb) = (fold(accd), fold(acca), fold(accb));
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        d += x * y;
        na += x * x;
        nb += y * y;
    }
    (d, na, nb)
}

/// One-pass `(Σ min(aᵢ,bᵢ), Σ max(aᵢ,bᵢ))` for the Ruzicka (generalized
/// Jaccard) distance.
#[inline]
pub fn minmax_sums(a: &[f32], b: &[f32]) -> (f32, f32) {
    debug_assert_eq!(a.len(), b.len());
    let mut accn = [0.0f32; LANES];
    let mut accx = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (
            &a[i * LANES..(i + 1) * LANES],
            &b[i * LANES..(i + 1) * LANES],
        );
        for l in 0..LANES {
            accn[l] += xa[l].min(xb[l]);
            accx[l] += xa[l].max(xb[l]);
        }
    }
    let (mut mins, mut maxs) = (fold(accn), fold(accx));
    for (&x, &y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        mins += x.min(y);
        maxs += x.max(y);
    }
    (mins, maxs)
}

/// Number of differing bits `Σ popcount(uᵢ ⊕ vᵢ)`.
#[inline]
pub fn hamming_words(u: &[u64], v: &[u64]) -> u32 {
    debug_assert_eq!(u.len(), v.len());
    u.iter().zip(v).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// One-pass `(|u ∩ v|, |u ∪ v|)` popcounts.
#[inline]
pub fn inter_union_words(u: &[u64], v: &[u64]) -> (u32, u32) {
    debug_assert_eq!(u.len(), v.len());
    let (mut inter, mut union) = (0u32, 0u32);
    for (x, y) in u.iter().zip(v) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    (inter, union)
}

/// Number of set bits.
#[inline]
pub fn popcount_words(u: &[u64]) -> u32 {
    u.iter().map(|w| w.count_ones()).sum()
}

/// Expands `dim` packed bits into 0.0/1.0 floats, reusing `buf`.
pub fn expand_bits_into(words: &[u64], dim: usize, buf: &mut Vec<f32>) {
    buf.clear();
    buf.reserve(dim);
    for j in 0..dim {
        let bit = (words[j / 64] >> (j % 64)) & 1;
        // cardest-lint: allow(kernel-hygiene): bit is 0 or 1; the u64→f32 cast is exact
        buf.push(bit as f32);
    }
}

thread_local! {
    /// Scratch buffer for expanding one binary operand to dense floats so
    /// mixed binary×dense pairs run the dense kernels without allocating
    /// per call.
    static EXPAND_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Scratch distance buffer for count-style batched entry points.
    static DIST_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread-local bit-expansion buffer.
pub fn with_expand_buf<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    EXPAND_BUF.with(|b| f(&mut b.borrow_mut()))
}

/// Runs `f` with the thread-local distance scratch buffer.
pub fn with_dist_buf<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    DIST_BUF.with(|b| f(&mut b.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).cos()).collect();
        (a, b)
    }

    #[test]
    fn kernels_match_naive_loops_across_tail_lengths() {
        for n in [0, 1, 7, 8, 9, 16, 33, 100] {
            let (a, b) = vecs(n);
            let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let naive_sq: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_l1: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            let naive_linf = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!((dot(&a, &b) - naive_dot).abs() < 1e-4, "dot n={n}");
            assert!((sq_l2(&a, &b) - naive_sq).abs() < 1e-4, "sq_l2 n={n}");
            assert!((l1_sum(&a, &b) - naive_l1).abs() < 1e-4, "l1 n={n}");
            assert_eq!(linf(&a, &b), naive_linf, "linf n={n}");
            let (d, na, nb) = dot_norms(&a, &b);
            assert!((d - naive_dot).abs() < 1e-4);
            assert!((na - dot(&a, &a)).abs() < 1e-4);
            assert!((nb - dot(&b, &b)).abs() < 1e-4);
            let (mins, maxs) = minmax_sums(&a, &b);
            let nm: f32 = a.iter().zip(&b).map(|(&x, &y)| x.min(y)).sum();
            let nx: f32 = a.iter().zip(&b).map(|(&x, &y)| x.max(y)).sum();
            assert!((mins - nm).abs() < 1e-4 && (maxs - nx).abs() < 1e-4);
        }
    }

    #[test]
    fn bit_kernels_match_bit_loops() {
        let u = [0b1011u64, u64::MAX, 0];
        let v = [0b1101u64, 0, u64::MAX];
        assert_eq!(hamming_words(&u, &v), 2 + 64 + 64);
        let (i, un) = inter_union_words(&u, &v);
        assert_eq!(i, 2);
        assert_eq!(un, 4 + 64 + 64);
        assert_eq!(popcount_words(&u), 3 + 64);
        let mut buf = Vec::new();
        expand_bits_into(&[0b101u64], 3, &mut buf);
        assert_eq!(buf, vec![1.0, 0.0, 1.0]);
    }
}
