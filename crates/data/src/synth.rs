//! Synthetic dataset generators.
//!
//! The paper evaluates on six real datasets we cannot redistribute; each
//! generator here produces a synthetic stand-in matching the dataset's
//! modality (dense vs binary), metric, and — crucially for the paper's
//! data-segmentation idea — *clustered* structure. Every generator returns
//! the latent cluster id per point ([`Labeled`]), which tests use to verify
//! that segmentation-friendly structure actually exists; the estimators
//! never see these labels.

use crate::vector::{BinaryData, DenseData, VectorData};
use rand::Rng;

/// Generated vectors plus the latent cluster each point was drawn from.
#[derive(Debug, Clone)]
pub struct Labeled {
    pub data: VectorData,
    pub cluster: Vec<usize>,
}

/// Dense unit-sphere Gaussian mixture — the GloVe300 stand-in (angular
/// distance over word embeddings clusters by topic).
pub fn gaussian_mixture_sphere<R: Rng>(
    rng: &mut R,
    n: usize,
    dim: usize,
    k: usize,
    spread: f32,
) -> Labeled {
    let centers: Vec<Vec<f32>> = (0..k).map(|_| random_unit(rng, dim)).collect();
    let mut values = Vec::with_capacity(n * dim);
    let mut cluster = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        cluster.push(c);
        let mut v: Vec<f32> = centers[c]
            .iter()
            .map(|&m| m + spread * gauss(rng))
            .collect();
        normalize(&mut v);
        values.extend_from_slice(&v);
    }
    Labeled {
        data: VectorData::Dense(DenseData::from_flat(dim, values)),
        cluster,
    }
}

/// Dense mixture with per-cluster low-rank covariance — the YouTube Faces
/// stand-in: each cluster is an "identity", the low-rank factors model pose
/// and illumination variation within the identity.
pub fn low_rank_mixture<R: Rng>(
    rng: &mut R,
    n: usize,
    dim: usize,
    k: usize,
    rank: usize,
    factor_scale: f32,
    noise: f32,
) -> Labeled {
    struct ClusterModel {
        mean: Vec<f32>,
        factors: Vec<Vec<f32>>,
    }
    let models: Vec<ClusterModel> = (0..k)
        .map(|_| ClusterModel {
            mean: random_unit(rng, dim),
            factors: (0..rank).map(|_| random_unit(rng, dim)).collect(),
        })
        .collect();
    let mut values = Vec::with_capacity(n * dim);
    let mut cluster = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        cluster.push(c);
        let m = &models[c];
        let coeffs: Vec<f32> = (0..rank).map(|_| factor_scale * gauss(rng)).collect();
        let mut v: Vec<f32> = m
            .mean
            .iter()
            .enumerate()
            .map(|(j, &mu)| {
                let lowrank: f32 = coeffs.iter().zip(&m.factors).map(|(a, f)| a * f[j]).sum();
                mu + lowrank + noise * gauss(rng)
            })
            .collect();
        normalize(&mut v);
        values.extend_from_slice(&v);
    }
    Labeled {
        data: VectorData::Dense(DenseData::from_flat(dim, values)),
        cluster,
    }
}

/// Binary hash codes — the ImageNET stand-in: HashNet-style codes cluster
/// around per-class prototype codes with independent bit flips.
pub fn hash_codes<R: Rng>(rng: &mut R, n: usize, bits: usize, k: usize, flip_prob: f64) -> Labeled {
    let prototypes: Vec<Vec<bool>> = (0..k)
        .map(|_| (0..bits).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let mut data = BinaryData::new(bits);
    let mut cluster = Vec::with_capacity(n);
    let mut row = vec![false; bits];
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        cluster.push(c);
        for (b, &p) in row.iter_mut().zip(&prototypes[c]) {
            *b = if rng.gen_bool(flip_prob) { !p } else { p };
        }
        data.push_bools(&row);
    }
    Labeled {
        data: VectorData::Binary(data),
        cluster,
    }
}

/// Sparse binary baskets — the BMS stand-in: each cluster is a "shopping
/// profile" with its own Zipf-ranked item popularity; a basket samples
/// `Poisson(avg_items)`-many items from its profile.
pub fn sparse_binary_baskets<R: Rng>(
    rng: &mut R,
    n: usize,
    dim: usize,
    k: usize,
    avg_items: f64,
    zipf_s: f64,
) -> Labeled {
    // Per profile: a random permutation of items ranked by Zipf popularity.
    let profiles: Vec<Vec<usize>> = (0..k).map(|_| random_permutation(rng, dim)).collect();
    let zipf = ZipfSampler::new(dim, zipf_s);
    let mut data = BinaryData::new(dim);
    let mut cluster = Vec::with_capacity(n);
    let mut on: Vec<usize> = Vec::new();
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        cluster.push(c);
        on.clear();
        let items = poisson(rng, avg_items).max(1);
        for _ in 0..items {
            let rank = zipf.sample(rng);
            on.push(profiles[c][rank]);
        }
        data.push_indices(&on);
        // (duplicate indices are idempotent under push_indices)
    }
    Labeled {
        data: VectorData::Binary(data),
        cluster,
    }
}

/// Sparse binary token vectors — the Aminer/DBLP stand-in: publication
/// titles as topic-conditioned token sets (the paper converts edit distance
/// on titles to Hamming over exactly this representation).
pub fn token_titles<R: Rng>(
    rng: &mut R,
    n: usize,
    dim: usize,
    k: usize,
    avg_tokens: f64,
    topic_share: f64,
) -> Labeled {
    // Each topic concentrates on its own slice of the vocabulary, with a
    // `1 − topic_share` chance of drawing a global stopword-like token.
    let zipf_topic = ZipfSampler::new(dim / k.max(1), 1.05);
    let zipf_global = ZipfSampler::new(dim, 1.2);
    let global_perm = random_permutation(rng, dim);
    let mut data = BinaryData::new(dim);
    let mut cluster = Vec::with_capacity(n);
    let mut on: Vec<usize> = Vec::new();
    for _ in 0..n {
        let c = rng.gen_range(0..k);
        cluster.push(c);
        on.clear();
        let tokens = poisson(rng, avg_tokens).max(2);
        let base = c * (dim / k.max(1));
        for _ in 0..tokens {
            if rng.gen_bool(topic_share) {
                on.push(base + zipf_topic.sample(rng));
            } else {
                on.push(global_perm[zipf_global.sample(rng)]);
            }
        }
        data.push_indices(&on);
    }
    Labeled {
        data: VectorData::Binary(data),
        cluster,
    }
}

/// Zipf sampler over ranks `0..n` with exponent `s`, via inverse-CDF lookup
/// on the precomputed normalized cumulative weights.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Standard normal via Box–Muller.
pub fn gauss<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Poisson sample via Knuth's method (fine for small means).
fn poisson<R: Rng>(rng: &mut R, mean: f64) -> usize {
    // cardest-lint: allow(raw-exp-decode): Knuth Poisson sampler constant e^-mean, not a cardinality decode
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological means
        }
    }
}

fn random_unit<R: Rng>(rng: &mut R, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim).map(|_| gauss(rng)).collect();
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

fn random_permutation<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(rng);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Intra-cluster distances should be visibly smaller than inter-cluster
    /// ones — the property data segmentation exploits.
    fn assert_clustered(l: &Labeled, metric: Metric, samples: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = l.data.len();
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        while intra.len() < samples || inter.len() < samples {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i == j {
                continue;
            }
            let d = metric.distance(l.data.view(i), l.data.view(j));
            if l.cluster[i] == l.cluster[j] {
                if intra.len() < samples {
                    intra.push(d);
                }
            } else if inter.len() < samples {
                inter.push(d);
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&intra) < 0.9 * mean(&inter),
            "generator is not clustered: intra {} vs inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    fn sphere_mixture_is_unit_norm_and_clustered() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = gaussian_mixture_sphere(&mut rng, 600, 32, 8, 0.08);
        for i in 0..l.data.len() {
            if let crate::vector::VectorView::Dense(v) = l.data.view(i) {
                let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((n - 1.0).abs() < 1e-4);
            }
        }
        assert_clustered(&l, Metric::Angular, 200, 11);
    }

    #[test]
    fn low_rank_mixture_is_clustered_under_l2() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = low_rank_mixture(&mut rng, 600, 48, 6, 4, 0.05, 0.02);
        assert_clustered(&l, Metric::L2, 200, 12);
    }

    #[test]
    fn hash_codes_cluster_under_hamming() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = hash_codes(&mut rng, 600, 64, 10, 0.08);
        assert_clustered(&l, Metric::Hamming, 200, 13);
    }

    #[test]
    fn baskets_cluster_under_jaccard() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = sparse_binary_baskets(&mut rng, 600, 128, 6, 8.0, 1.1);
        assert_clustered(&l, Metric::Jaccard, 200, 14);
    }

    #[test]
    fn token_titles_cluster_under_hamming() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = token_titles(&mut rng, 600, 256, 8, 10.0, 0.8);
        assert_clustered(&l, Metric::Hamming, 200, 15);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
    }

    #[test]
    fn gauss_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f32> = (0..20_000).map(|_| gauss(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = hash_codes(&mut StdRng::seed_from_u64(9), 50, 64, 4, 0.1);
        let b = hash_codes(&mut StdRng::seed_from_u64(9), 50, 64, 4, 0.1);
        assert_eq!(a.data, b.data);
        assert_eq!(a.cluster, b.cluster);
    }
}
