//! Vector storage: dense row-major `f32` collections and bit-packed binary
//! collections with popcount-based distance kernels.
//!
//! The paper's six datasets split into dense ones (GloVe300, YouTube) and
//! binary ones (BMS baskets, ImageNET hash codes, Aminer/DBLP token
//! vectors). Binary data is stored one `u64` word per 64 dimensions so that
//! Hamming/Jaccard ground-truth labelling runs at popcount speed.

use serde::{Deserialize, Serialize};

/// Dense row-major `f32` vector collection (`n × dim`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseData {
    dim: usize,
    values: Vec<f32>,
}

impl DenseData {
    pub fn new(dim: usize) -> Self {
        DenseData {
            dim,
            values: Vec::new(),
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, values: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(values.len() % dim, 0, "flat buffer not a multiple of dim");
        DenseData { dim, values }
    }

    pub fn len(&self) -> usize {
        self.values.len() / self.dim
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row width mismatch");
        self.values.extend_from_slice(row);
    }
}

/// Bit-packed binary vector collection (`n × dim` bits, 64 bits per word).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryData {
    dim: usize,
    words_per_vec: usize,
    words: Vec<u64>,
}

impl BinaryData {
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        BinaryData {
            dim,
            words_per_vec: dim.div_ceil(64),
            words: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.words
            .len()
            .checked_div(self.words_per_vec)
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_vec..(i + 1) * self.words_per_vec]
    }

    /// Appends a vector given as set-bit indices (duplicates are idempotent;
    /// indices must be `< dim`).
    pub fn push_indices(&mut self, on: &[usize]) {
        let start = self.words.len();
        self.words.resize(start + self.words_per_vec, 0);
        for &i in on {
            assert!(
                i < self.dim,
                "bit index {i} out of range for dim {}",
                self.dim
            );
            self.words[start + i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Appends a vector given as a bool slice of length `dim`.
    pub fn push_bools(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.dim, "row width mismatch");
        let start = self.words.len();
        self.words.resize(start + self.words_per_vec, 0);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                self.words[start + i / 64] |= 1u64 << (i % 64);
            }
        }
    }

    /// Reads bit `j` of vector `i`.
    #[inline]
    pub fn bit(&self, i: usize, j: usize) -> bool {
        (self.row(i)[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Number of set bits in vector `i`.
    pub fn popcount(&self, i: usize) -> u32 {
        self.row(i).iter().map(|w| w.count_ones()).sum()
    }
}

/// Borrowed view of one vector, dense or binary.
#[derive(Debug, Clone, Copy)]
pub enum VectorView<'a> {
    Dense(&'a [f32]),
    /// Bit-packed words plus the true bit dimension (the last word may be
    /// partially used).
    Binary {
        words: &'a [u64],
        dim: usize,
    },
}

impl<'a> VectorView<'a> {
    /// Logical dimensionality of the vector.
    pub fn dim(&self) -> usize {
        match self {
            VectorView::Dense(v) => v.len(),
            VectorView::Binary { dim, .. } => *dim,
        }
    }

    /// Expands the vector into an `f32` buffer (binary bits become 0.0/1.0).
    /// Used to build NN feature vectors; `buf` is reused across calls.
    pub fn write_dense(&self, buf: &mut Vec<f32>) {
        buf.clear();
        match self {
            VectorView::Dense(v) => buf.extend_from_slice(v),
            VectorView::Binary { words, dim } => {
                buf.reserve(*dim);
                for j in 0..*dim {
                    let bit = (words[j / 64] >> (j % 64)) & 1;
                    buf.push(bit as f32);
                }
            }
        }
    }
}

/// A vector collection, dense or binary, behind one interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VectorData {
    Dense(DenseData),
    Binary(BinaryData),
}

impl VectorData {
    pub fn len(&self) -> usize {
        match self {
            VectorData::Dense(d) => d.len(),
            VectorData::Binary(b) => b.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dim(&self) -> usize {
        match self {
            VectorData::Dense(d) => d.dim(),
            VectorData::Binary(b) => b.dim(),
        }
    }

    /// Borrow vector `i`.
    #[inline]
    pub fn view(&self, i: usize) -> VectorView<'_> {
        match self {
            VectorData::Dense(d) => VectorView::Dense(d.row(i)),
            VectorData::Binary(b) => VectorView::Binary {
                words: b.row(i),
                dim: b.dim(),
            },
        }
    }

    /// Copies the selected rows into a new collection (used to materialize
    /// query sets out of a dataset).
    pub fn gather(&self, idx: &[usize]) -> VectorData {
        match self {
            VectorData::Dense(d) => {
                let mut out = DenseData::new(d.dim());
                for &i in idx {
                    out.push(d.row(i));
                }
                VectorData::Dense(out)
            }
            VectorData::Binary(b) => {
                let mut out = BinaryData::new(b.dim());
                for &i in idx {
                    let start = out.words.len();
                    out.words.extend_from_slice(b.row(i));
                    debug_assert_eq!(out.words.len(), start + out.words_per_vec);
                }
                VectorData::Binary(out)
            }
        }
    }

    /// Appends one vector given as a borrowed view (the online-insert hot
    /// path: WAL replay and `POST /insert` both append row by row without
    /// materializing a single-row collection first).
    ///
    /// # Panics
    /// Panics if the view's representation or dimension does not match.
    pub fn push_view(&mut self, v: VectorView<'_>) {
        match (self, v) {
            (VectorData::Dense(a), VectorView::Dense(row)) => a.push(row),
            (VectorData::Binary(a), VectorView::Binary { words, dim }) => {
                assert_eq!(a.dim(), dim, "dimension mismatch");
                assert_eq!(words.len(), a.words_per_vec, "word count mismatch");
                a.words.extend_from_slice(words);
            }
            // cardest-lint: allow(panic-path): mixing representations is a caller-contract violation with no recoverable meaning
            _ => panic!("cannot push a mismatched vector representation"),
        }
    }

    /// Appends all rows of `other` (same layout required).
    ///
    /// # Panics
    /// Panics if the kinds or dimensions differ.
    pub fn extend_from(&mut self, other: &VectorData) {
        match (self, other) {
            (VectorData::Dense(a), VectorData::Dense(b)) => {
                assert_eq!(a.dim(), b.dim(), "dimension mismatch");
                a.values.extend_from_slice(&b.values);
            }
            (VectorData::Binary(a), VectorData::Binary(b)) => {
                assert_eq!(a.dim(), b.dim(), "dimension mismatch");
                a.words.extend_from_slice(&b.words);
            }
            // cardest-lint: allow(panic-path): mixing representations is a caller-contract violation with no recoverable meaning
            _ => panic!("cannot mix dense and binary collections"),
        }
    }

    /// Computes the (fractional) mean of the rows in `idx` — the centroid
    /// used by data segmentation. Binary rows average to values in `[0,1]`.
    pub fn centroid(&self, idx: &[usize]) -> Vec<f32> {
        let dim = self.dim();
        let mut acc = vec![0.0f64; dim];
        for &i in idx {
            match self.view(i) {
                VectorView::Dense(v) => {
                    for (a, x) in acc.iter_mut().zip(v) {
                        *a += *x as f64;
                    }
                }
                VectorView::Binary { words, dim } => {
                    for j in 0..dim {
                        if (words[j / 64] >> (j % 64)) & 1 == 1 {
                            acc[j] += 1.0;
                        }
                    }
                }
            }
        }
        let n = idx.len().max(1) as f64;
        acc.iter().map(|a| (a / n) as f32).collect()
    }

    /// Approximate heap size in bytes (Table 5 compares model sizes against
    /// sample sizes; sampling baselines are "sized" by this).
    pub fn heap_bytes(&self) -> usize {
        match self {
            VectorData::Dense(d) => d.values.len() * std::mem::size_of::<f32>(),
            VectorData::Binary(b) => b.words.len() * std::mem::size_of::<u64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_push_and_bit_roundtrip() {
        let mut b = BinaryData::new(70); // crosses a word boundary
        b.push_indices(&[0, 63, 64, 69]);
        b.push_indices(&[1]);
        assert_eq!(b.len(), 2);
        assert!(b.bit(0, 0) && b.bit(0, 63) && b.bit(0, 64) && b.bit(0, 69));
        assert!(!b.bit(0, 1));
        assert!(b.bit(1, 1));
        assert_eq!(b.popcount(0), 4);
    }

    #[test]
    fn push_bools_matches_push_indices() {
        let mut a = BinaryData::new(10);
        a.push_indices(&[2, 7]);
        let mut bits = vec![false; 10];
        bits[2] = true;
        bits[7] = true;
        let mut b = BinaryData::new(10);
        b.push_bools(&bits);
        assert_eq!(a, b);
    }

    #[test]
    fn view_write_dense_expands_binary() {
        let mut b = BinaryData::new(5);
        b.push_indices(&[0, 4]);
        let data = VectorData::Binary(b);
        let mut buf = Vec::new();
        data.view(0).write_dense(&mut buf);
        assert_eq!(buf, vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn gather_preserves_rows() {
        let d = DenseData::from_flat(2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let data = VectorData::Dense(d);
        let g = data.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        match g.view(0) {
            VectorView::Dense(v) => assert_eq!(v, &[5.0, 6.0]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn centroid_of_binary_rows_is_fractional() {
        let mut b = BinaryData::new(3);
        b.push_indices(&[0]);
        b.push_indices(&[0, 1]);
        let data = VectorData::Binary(b);
        let c = data.centroid(&[0, 1]);
        assert_eq!(c, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn extend_from_appends_rows() {
        let mut a = VectorData::Dense(DenseData::from_flat(2, vec![1.0, 2.0]));
        let b = VectorData::Dense(DenseData::from_flat(2, vec![3.0, 4.0]));
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn push_view_appends_dense_and_binary_rows() {
        let mut d = VectorData::Dense(DenseData::from_flat(2, vec![1.0, 2.0]));
        d.push_view(VectorView::Dense(&[3.0, 4.0]));
        assert_eq!(d.len(), 2);
        match d.view(1) {
            VectorView::Dense(v) => assert_eq!(v, &[3.0, 4.0]),
            _ => unreachable!(),
        }
        let mut b = BinaryData::new(70);
        b.push_indices(&[0, 69]);
        let words: Vec<u64> = b.row(0).to_vec();
        let mut data = VectorData::Binary(b);
        data.push_view(VectorView::Binary {
            words: &words,
            dim: 70,
        });
        assert_eq!(data.len(), 2);
        match (data.view(0), data.view(1)) {
            (VectorView::Binary { words: a, .. }, VectorView::Binary { words: b, .. }) => {
                assert_eq!(a, b)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "cannot push a mismatched")]
    fn push_view_rejects_repr_mismatch() {
        let mut d = VectorData::Dense(DenseData::new(2));
        d.push_view(VectorView::Binary {
            words: &[0],
            dim: 2,
        });
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn extend_from_rejects_kind_mismatch() {
        let mut a = VectorData::Dense(DenseData::new(2));
        let b = VectorData::Binary(BinaryData::new(2));
        a.extend_from(&b);
    }
}
