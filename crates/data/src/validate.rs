//! Input validation for the serving surface.
//!
//! Every estimator's raw `estimate` path assumes a well-formed query: the
//! right dimensionality, finite components, and a threshold inside the
//! trained range. A malformed input either panics deep inside a matmul
//! (dimension mismatch) or silently poisons the output (NaN components,
//! negative τ). This module centralizes the checks the fallible
//! `try_estimate` / `try_estimate_batch` twins run *before* any forward
//! pass, and the [`CardestError`] taxonomy they report with.
//!
//! Validation is metric-agnostic: a binary (bit-packed) query is always
//! finite, so only its dimensionality is checked; dense queries are
//! scanned component-by-component.

use crate::vector::VectorView;
use std::fmt;

/// Everything that can go wrong on the guarded serving path.
///
/// Variants carry the batch position (`index`, 0 for single-query calls)
/// so a batched caller can report exactly which entry was malformed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CardestError {
    /// The query's dimensionality differs from the trained model's.
    DimensionMismatch {
        index: usize,
        expected: usize,
        got: usize,
    },
    /// A query component is NaN or ±∞.
    NonFiniteQuery {
        index: usize,
        component: usize,
        value: f32,
    },
    /// The threshold is NaN or ±∞.
    NonFiniteTau { index: usize, tau: f32 },
    /// The threshold is negative — distances are non-negative, so no
    /// model (or fallback) can answer this meaningfully.
    NegativeTau { index: usize, tau: f32 },
    /// The threshold exceeds the range seen in training. The model would
    /// extrapolate; a sampling/histogram fallback can still answer.
    TauOutOfRange { index: usize, tau: f32, bound: f32 },
    /// The model produced a non-finite (or negative) estimate — the
    /// symptom of corrupted weights or numeric blow-up, detected *after*
    /// the forward pass.
    NonFiniteEstimate { index: usize, value: f32 },
}

impl CardestError {
    /// Batch position of the offending entry (0 for single-query calls).
    pub fn batch_index(&self) -> usize {
        match *self {
            CardestError::DimensionMismatch { index, .. }
            | CardestError::NonFiniteQuery { index, .. }
            | CardestError::NonFiniteTau { index, .. }
            | CardestError::NegativeTau { index, .. }
            | CardestError::TauOutOfRange { index, .. }
            | CardestError::NonFiniteEstimate { index, .. } => index,
        }
    }

    /// Whether a cheap model-free fallback (sampling, histogram) can still
    /// answer the query. True for thresholds beyond the trained range and
    /// for non-finite model outputs — the *input* is well-formed in both
    /// cases. False for malformed inputs nothing can answer.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            CardestError::TauOutOfRange { .. } | CardestError::NonFiniteEstimate { .. }
        )
    }
}

impl fmt::Display for CardestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CardestError::DimensionMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "query {index}: dimension mismatch (model expects {expected}, got {got})"
            ),
            CardestError::NonFiniteQuery {
                index,
                component,
                value,
            } => write!(
                f,
                "query {index}: non-finite component {component} ({value})"
            ),
            CardestError::NonFiniteTau { index, tau } => {
                write!(f, "query {index}: non-finite threshold ({tau})")
            }
            CardestError::NegativeTau { index, tau } => {
                write!(f, "query {index}: negative threshold ({tau})")
            }
            CardestError::TauOutOfRange { index, tau, bound } => write!(
                f,
                "query {index}: threshold {tau} beyond trained range (max {bound})"
            ),
            CardestError::NonFiniteEstimate { index, value } => {
                write!(f, "query {index}: model produced invalid estimate {value}")
            }
        }
    }
}

impl std::error::Error for CardestError {}

/// The admissible-input contract of one trained estimator: expected query
/// dimensionality and the largest threshold seen in training. `None`
/// disables the respective check (e.g. a query-oblivious histogram has no
/// dimension requirement; an exact sampling counter has no τ ceiling).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryGuard {
    pub dim: Option<usize>,
    pub tau_max: Option<f32>,
}

impl QueryGuard {
    /// Validates one `(query, τ)` pair at batch position `index`.
    ///
    /// Unrecoverable checks run first — dimensionality, τ NaN/∞/sign,
    /// then a component scan for dense queries — and the *recoverable*
    /// trained-range check runs last. The order matters: a query that is
    /// both malformed and out of range must be rejected outright, not
    /// routed to a fallback by the recoverable error masking the fatal
    /// one. Bit-packed binary queries are finite by construction and
    /// skip the scan.
    pub fn validate(&self, index: usize, q: VectorView<'_>, tau: f32) -> Result<(), CardestError> {
        if let Some(expected) = self.dim {
            let got = q.dim();
            if got != expected {
                return Err(CardestError::DimensionMismatch {
                    index,
                    expected,
                    got,
                });
            }
        }
        if !tau.is_finite() {
            return Err(CardestError::NonFiniteTau { index, tau });
        }
        if tau < 0.0 {
            return Err(CardestError::NegativeTau { index, tau });
        }
        if let VectorView::Dense(v) = q {
            for (component, &value) in v.iter().enumerate() {
                if !value.is_finite() {
                    return Err(CardestError::NonFiniteQuery {
                        index,
                        component,
                        value,
                    });
                }
            }
        }
        if let Some(bound) = self.tau_max {
            if tau > bound {
                return Err(CardestError::TauOutOfRange { index, tau, bound });
            }
        }
        Ok(())
    }

    /// Validates every entry of a batch, failing fast on the first
    /// malformed one (nothing has been evaluated yet, so rejecting the
    /// whole batch loses no work).
    pub fn validate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Result<(), CardestError> {
        for (i, &(q, tau)) in queries.iter().enumerate() {
            self.validate(i, q, tau)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::BinaryData;

    fn guard() -> QueryGuard {
        QueryGuard {
            dim: Some(3),
            tau_max: Some(1.0),
        }
    }

    #[test]
    fn accepts_well_formed_queries() {
        let g = guard();
        assert_eq!(
            g.validate(0, VectorView::Dense(&[0.0, 1.0, -2.0]), 0.5),
            Ok(())
        );
        assert_eq!(
            g.validate(0, VectorView::Dense(&[0.0, 1.0, -2.0]), 0.0),
            Ok(())
        );
        assert_eq!(
            g.validate(0, VectorView::Dense(&[0.0, 1.0, -2.0]), 1.0),
            Ok(())
        );
    }

    #[test]
    fn rejects_each_malformed_class_with_its_variant() {
        let g = guard();
        assert_eq!(
            g.validate(2, VectorView::Dense(&[0.0, 1.0]), 0.5),
            Err(CardestError::DimensionMismatch {
                index: 2,
                expected: 3,
                got: 2
            })
        );
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0, f32::NAN, 0.0]), 0.5),
            Err(CardestError::NonFiniteQuery { component: 1, .. })
        ));
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0, 0.0, f32::INFINITY]), 0.5),
            Err(CardestError::NonFiniteQuery { component: 2, .. })
        ));
        assert!(matches!(
            g.validate(1, VectorView::Dense(&[0.0; 3]), f32::NAN),
            Err(CardestError::NonFiniteTau { index: 1, .. })
        ));
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0; 3]), -0.1),
            Err(CardestError::NegativeTau { .. })
        ));
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0; 3]), 1.5),
            Err(CardestError::TauOutOfRange { .. })
        ));
    }

    #[test]
    fn binary_queries_skip_the_component_scan_but_check_dims() {
        let mut b = BinaryData::new(70);
        b.push_indices(&[0, 69]);
        let g = QueryGuard {
            dim: Some(70),
            tau_max: None,
        };
        let view = VectorView::Binary {
            words: b.row(0),
            dim: 70,
        };
        assert_eq!(g.validate(0, view, 0.3), Ok(()));
        let wrong = QueryGuard {
            dim: Some(64),
            tau_max: None,
        };
        assert!(matches!(
            wrong.validate(0, view, 0.3),
            Err(CardestError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unconstrained_guard_accepts_anything_finite() {
        let g = QueryGuard::default();
        assert_eq!(g.validate(0, VectorView::Dense(&[1e30; 2]), 1e30), Ok(()));
        // But never NaN/∞/negative τ.
        assert!(g
            .validate(0, VectorView::Dense(&[1.0]), f32::INFINITY)
            .is_err());
        assert!(g.validate(0, VectorView::Dense(&[1.0]), -1.0).is_err());
        assert!(g
            .validate(0, VectorView::Dense(&[f32::NEG_INFINITY]), 0.1)
            .is_err());
    }

    #[test]
    fn validate_batch_reports_the_offending_position() {
        let g = guard();
        let a = [0.0, 1.0, 2.0];
        let bad = [0.0, f32::NAN, 2.0];
        let batch = [
            (VectorView::Dense(&a), 0.1),
            (VectorView::Dense(&a), 0.2),
            (VectorView::Dense(&bad), 0.3),
        ];
        let err = g.validate_batch(&batch).unwrap_err();
        assert_eq!(err.batch_index(), 2);
    }

    #[test]
    fn recoverability_split_matches_the_fallback_policy() {
        let oor = CardestError::TauOutOfRange {
            index: 0,
            tau: 2.0,
            bound: 1.0,
        };
        let nfe = CardestError::NonFiniteEstimate {
            index: 0,
            value: f32::NAN,
        };
        let dim = CardestError::DimensionMismatch {
            index: 0,
            expected: 3,
            got: 2,
        };
        assert!(oor.is_recoverable() && nfe.is_recoverable());
        assert!(!dim.is_recoverable());
    }

    #[test]
    fn unrecoverable_errors_mask_the_recoverable_one() {
        // A query that is both malformed AND out of τ-range must be
        // rejected, not routed to a fallback: the recoverable
        // TauOutOfRange check runs last.
        let g = guard();
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0, f32::NAN, 0.0]), 5.0),
            Err(CardestError::NonFiniteQuery { component: 1, .. })
        ));
        assert!(matches!(
            g.validate(0, VectorView::Dense(&[0.0, 1.0]), 5.0),
            Err(CardestError::DimensionMismatch { .. })
        ));
    }
}
