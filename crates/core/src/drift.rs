//! Drift detection for online ingestion.
//!
//! "Are We Ready For Learned Cardinality Estimation?" singles out
//! update/drift behaviour as the weak point of learned estimators: a
//! model trained on yesterday's data keeps answering confidently while
//! the dataset moves underneath it. This module watches estimate quality
//! instead of raw data statistics: it tracks per-segment Q-error on the
//! held-out probe set (the label-patched test samples, whose true
//! cardinalities [`UpdatableGl`] keeps exact across inserts) and fires a
//! fine-tune only for segments whose degradation is *localized* —
//! i.e. large relative to the median degradation across segments.
//!
//! The median normalization is what bounds false positives on stationary
//! streams: uniform staleness (every probe's cardinality creeping up as
//! in-distribution points arrive) raises every segment's error ratio
//! together, so no segment stands out against the median and nothing
//! fires. A genuine distribution shift lands its new points — and
//! therefore its label changes — in a few segments, whose ratios then
//! clear both the absolute floor and the median multiple.

use crate::update::UpdatableGl;
use cardest_baselines::traits::CardinalityEstimator;
use cardest_nn::metrics::q_error;
use serde::{Deserialize, Serialize};

/// Drift-monitor thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Inserts between quality checks (a check costs one probe-set
    /// evaluation, so checks are batched).
    pub check_every: usize,
    /// Segments with fewer probes than this never fire (their mean is
    /// too noisy to act on).
    pub min_probes: usize,
    /// A segment fires only if its error ratio exceeds this multiple of
    /// the median ratio across segments (localization requirement).
    pub median_multiple: f32,
    /// ...and only if its error ratio also exceeds this absolute floor
    /// (a segment can be above the median by noise alone when nothing
    /// actually degraded).
    pub abs_ratio: f32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            check_every: 64,
            min_probes: 1,
            median_multiple: 1.5,
            abs_ratio: 1.5,
        }
    }
}

/// The outcome of one drift check.
#[derive(Debug, Clone, Default)]
pub struct DriftVerdict {
    /// Segments whose probe error degraded enough to warrant a local
    /// fine-tune (the global model rides along on any trigger).
    pub fired: Vec<usize>,
    /// Per-segment degradation ratios (current mean Q-error over the
    /// baseline mean, smoothed); `1.0` for unprobed segments.
    pub ratios: Vec<f32>,
    /// Median of the ratios over probed segments.
    pub median_ratio: f32,
}

impl DriftVerdict {
    /// Whether this check asks for a fine-tune.
    pub fn triggered(&self) -> bool {
        !self.fired.is_empty()
    }
}

/// Tracks per-segment estimate quality on the held-out probe set and
/// decides when (and where) to fine-tune.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    /// Segment owning each probe query (nearest-centroid attribution;
    /// centroids are fixed after fit, so this is computed once).
    probe_seg: Vec<usize>,
    /// Per-segment probe counts.
    counts: Vec<usize>,
    /// Per-segment mean Q-error at the last (re)baseline.
    baseline: Vec<f32>,
    inserts_since_check: usize,
    checks: u64,
    triggers: u64,
}

/// Smoothing so near-zero baselines do not explode ratios.
const EPS: f32 = 1e-3;

impl DriftMonitor {
    /// Attributes every probe to its owning segment and records the
    /// current per-segment error as the baseline.
    pub fn new(upd: &UpdatableGl, cfg: DriftConfig) -> Self {
        let n_segments = upd.gl().segmentation().n_segments();
        let probe_seg: Vec<usize> = upd
            .test_samples()
            .iter()
            .map(|s| {
                upd.gl()
                    .segmentation()
                    .nearest_segment(upd.queries().view(s.query))
            })
            .collect();
        let mut counts = vec![0usize; n_segments];
        for &s in &probe_seg {
            counts[s] += 1;
        }
        let mut m = DriftMonitor {
            cfg,
            probe_seg,
            counts,
            baseline: vec![0.0; n_segments],
            inserts_since_check: 0,
            checks: 0,
            triggers: 0,
        };
        m.baseline = m.per_segment_error(upd);
        m
    }

    /// Mean probe Q-error per segment (0 for unprobed segments).
    fn per_segment_error(&self, upd: &UpdatableGl) -> Vec<f32> {
        let n_segments = self.counts.len();
        let mut sums = vec![0.0f32; n_segments];
        for (i, s) in upd.test_samples().iter().enumerate() {
            let est = upd.gl().estimate(upd.queries().view(s.query), s.tau);
            sums[self.probe_seg[i]] += q_error(est, s.card);
        }
        sums.iter()
            .zip(&self.counts)
            .map(|(sum, &c)| if c == 0 { 0.0 } else { sum / c as f32 })
            .collect()
    }

    /// Records `n` applied inserts; returns `true` when a quality check
    /// is due (the caller then runs [`DriftMonitor::check`]).
    pub fn note_inserts(&mut self, n: usize) -> bool {
        self.inserts_since_check += n;
        self.inserts_since_check >= self.cfg.check_every
    }

    /// Evaluates the probe set and returns which segments (if any) have
    /// drifted enough to fine-tune. Resets the insert counter.
    pub fn check(&mut self, upd: &UpdatableGl) -> DriftVerdict {
        self.inserts_since_check = 0;
        self.checks += 1;
        let current = self.per_segment_error(upd);
        let ratios: Vec<f32> = current
            .iter()
            .zip(&self.baseline)
            .zip(&self.counts)
            .map(|((cur, base), &c)| {
                if c == 0 {
                    1.0
                } else {
                    (cur + EPS) / (base + EPS)
                }
            })
            .collect();
        let mut probed: Vec<f32> = ratios
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(r, _)| *r)
            .collect();
        probed.sort_by(f32::total_cmp);
        let median_ratio = if probed.is_empty() {
            1.0
        } else {
            probed[probed.len() / 2]
        };
        let fired: Vec<usize> = ratios
            .iter()
            .enumerate()
            .filter(|(s, &r)| {
                self.counts[*s] >= self.cfg.min_probes
                    && r > self.cfg.abs_ratio
                    && r > self.cfg.median_multiple * median_ratio
            })
            .map(|(s, _)| s)
            .collect();
        if !fired.is_empty() {
            self.triggers += 1;
        }
        DriftVerdict {
            fired,
            ratios,
            median_ratio,
        }
    }

    /// Re-records the current per-segment error as the baseline — called
    /// after a fine-tune so the monitor measures degradation since the
    /// model last adapted, not since it was first trained.
    pub fn rebaseline(&mut self, upd: &UpdatableGl) {
        self.baseline = self.per_segment_error(upd);
    }

    /// Checks run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Checks that fired at least one segment.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gl::{GlConfig, GlEstimator, GlVariant};
    use crate::tuning::TuningConfig;
    use crate::update::UpdateConfig;
    use cardest_baselines::traits::TrainingSet;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;
    use cardest_nn::trainer::TrainConfig;

    fn setup(seed: u64) -> UpdatableGl {
        let spec = DatasetSpec {
            n_data: 500,
            n_train_queries: 40,
            n_test_queries: 15,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        let cfg = GlConfig {
            variant: GlVariant::GlCnn,
            n_segments: 6,
            local_train: TrainConfig {
                epochs: 5,
                batch_size: 64,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 6,
                batch_size: 64,
                ..Default::default()
            },
            tuning: TuningConfig::fast(),
            tuning_segments: 1,
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
        UpdatableGl::new(
            data,
            spec.metric,
            gl,
            w.queries,
            w.train,
            w.test,
            &w.table,
            UpdateConfig::default(),
        )
    }

    fn test_cfg() -> DriftConfig {
        DriftConfig {
            check_every: 8,
            ..Default::default()
        }
    }

    /// The probe whose true cardinality is smallest — drifting "into" it
    /// (a burst of points inside its threshold) is the sharpest relative
    /// label shift we can manufacture for a fixed probe set.
    fn quietest_probe(upd: &UpdatableGl) -> usize {
        upd.test_samples()
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.card.total_cmp(&b.card))
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn stationary_stream_does_not_fire() {
        let mut upd = setup(220);
        let mut monitor = DriftMonitor::new(&upd, test_cfg());
        // Stationary stream: duplicates of existing rows spread across the
        // whole dataset (~3% growth), checked after every batch.
        let mut fired_checks = 0u64;
        for b in 0..4usize {
            let ids: Vec<usize> = (0..4).map(|k| (b * 131 + k * 37) % 500).collect();
            let pts = upd.data().gather(&ids);
            for i in 0..pts.len() {
                upd.apply_insert(pts.view(i));
            }
            if monitor.note_inserts(pts.len()) {
                let verdict = monitor.check(&upd);
                if verdict.triggered() {
                    fired_checks += 1;
                }
            }
        }
        // False-positive bound: an in-distribution stream of this size
        // must never trigger a fine-tune.
        assert!(monitor.checks() >= 2, "checks must actually have run");
        assert_eq!(
            fired_checks, 0,
            "stationary stream fired a drift trigger (false positive)"
        );
    }

    #[test]
    fn shift_stream_fires_the_affected_segment() {
        let mut upd = setup(221);
        let mut monitor = DriftMonitor::new(&upd, test_cfg());
        // Distribution shift: a burst of points all landing exactly on one
        // probe query (distance 0 ≤ every tau), so that probe's true
        // cardinality jumps while the model still answers from stale
        // labels. The burst routes to the query's own nearest segment.
        let probe = quietest_probe(&upd);
        let s = upd.test_samples()[probe];
        let target_seg = upd
            .gl()
            .segmentation()
            .nearest_segment(upd.queries().view(s.query));
        let burst = upd.queries().gather(&[s.query]);
        let mut verdicts = Vec::new();
        for _ in 0..3 {
            for _ in 0..8 {
                upd.apply_insert(burst.view(0));
            }
            if monitor.note_inserts(8) {
                verdicts.push(monitor.check(&upd));
            }
        }
        let fired: Vec<usize> = verdicts.iter().flat_map(|v| v.fired.clone()).collect();
        assert!(
            !fired.is_empty(),
            "shift stream never fired (last ratios: {:?})",
            verdicts.last().map(|v| v.ratios.clone())
        );
        assert!(
            fired.contains(&target_seg),
            "drift fired {fired:?} but the shifted probe lives in segment {target_seg}"
        );
        assert!(monitor.triggers() >= 1);
    }

    #[test]
    fn rebaseline_resets_the_trigger() {
        let mut upd = setup(222);
        let mut monitor = DriftMonitor::new(
            &upd,
            DriftConfig {
                check_every: 1,
                ..Default::default()
            },
        );
        let probe = quietest_probe(&upd);
        let s = upd.test_samples()[probe];
        let q = upd.queries().gather(&[s.query]);
        for _ in 0..24 {
            upd.apply_insert(q.view(0));
        }
        let before = monitor.check(&upd);
        assert!(before.triggered(), "burst must trigger before rebaseline");
        // After a fine-tune the worker rebaselines; the same state must no
        // longer read as drifted (here the rebaseline alone is exercised).
        monitor.rebaseline(&upd);
        let after = monitor.check(&upd);
        assert!(
            !after.triggered(),
            "rebaselined monitor re-fired on unchanged state: {:?}",
            after.fired
        );
    }
}
