//! Jittered exponential backoff with deadline clamping — the one retry
//! policy every reconnect/retry loop in the workspace shares.
//!
//! Delays grow as `base * 2^attempt`, capped at `max`, with a
//! multiplicative jitter drawn from `[1 - jitter, 1]` so a fleet of
//! clients that all lost the same primary does not reconnect in
//! lockstep. Randomness comes from an internal xorshift64* stream seeded
//! by the caller — same seed, same schedule — keeping the workspace's
//! bit-reproducibility contract intact (no OS entropy, no clock reads).
//!
//! Users: the replication client's reconnect loop
//! (`cardest_store::replicate`) and the serving-side fine-tune worker's
//! retry-after-failure path (`cardest_server::ingest`).

use std::time::Duration;

/// Shape of a backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First (pre-jitter) delay.
    pub base: Duration,
    /// Upper bound every delay is clamped to (pre-jitter).
    pub max: Duration,
    /// Fraction of each delay the jitter may remove: the delay is drawn
    /// uniformly from `[(1 - jitter) * d, d]`. Clamped to `[0, 1]`.
    pub jitter: f64,
    /// Attempts before [`Backoff::next_delay`] starts answering `None`;
    /// 0 means unbounded.
    pub max_attempts: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(50),
            max: Duration::from_secs(5),
            jitter: 0.5,
            max_attempts: 0,
        }
    }
}

/// One retry loop's backoff state.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    attempt: u32,
    rng_state: u64,
}

impl Backoff {
    /// A fresh schedule. `seed` drives the jitter stream deterministically.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        Backoff {
            cfg,
            attempt: 0,
            // xorshift64* must never sit at 0; fold the seed into a
            // non-zero state the same way splitmix64 primes generators.
            rng_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next delay to sleep before retrying, or `None` once the
    /// attempt budget is spent. Advances the attempt counter.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.cfg.max_attempts > 0 && self.attempt >= self.cfg.max_attempts {
            return None;
        }
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let unjittered = self
            .cfg
            .base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.cfg.max);
        let jitter = self.cfg.jitter.clamp(0.0, 1.0);
        let u = self.next_unit();
        let scale = 1.0 - jitter * u;
        Some(Duration::from_secs_f64(unjittered.as_secs_f64() * scale))
    }

    /// Resets after a success, so the next failure starts from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Attempts consumed since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Whether the attempt budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.cfg.max_attempts > 0 && self.attempt >= self.cfg.max_attempts
    }

    /// xorshift64*: tiny, deterministic, good enough for jitter.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

/// Clamps a proposed delay so it never overshoots the time left before a
/// deadline: `min(delay, remaining)`. A spent deadline clamps to zero —
/// the caller's next deadline check fails immediately instead of after
/// one more full backoff sleep.
pub fn clamp_to_deadline(delay: Duration, remaining: Duration) -> Duration {
    delay.min(remaining)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(base_ms: u64, max_ms: u64, jitter: f64, max_attempts: u32) -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(base_ms),
            max: Duration::from_millis(max_ms),
            jitter,
            max_attempts,
        }
    }

    #[test]
    fn grows_exponentially_without_jitter() {
        let mut b = Backoff::new(cfg(10, 1000, 0.0, 0), 1);
        let delays: Vec<u64> = (0..5)
            .map(|_| b.next_delay().unwrap().as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 160]);
    }

    #[test]
    fn caps_at_max() {
        let mut b = Backoff::new(cfg(10, 55, 0.0, 0), 1);
        let d: Vec<u64> = (0..6)
            .map(|_| b.next_delay().unwrap().as_millis() as u64)
            .collect();
        assert_eq!(d, vec![10, 20, 40, 55, 55, 55]);
    }

    #[test]
    fn jitter_stays_within_the_declared_band() {
        let mut b = Backoff::new(cfg(100, 10_000, 0.5, 0), 42);
        for attempt in 0..8u32 {
            let unjittered = (100u64 << attempt.min(31)).min(10_000) as f64;
            let d = b.next_delay().unwrap().as_secs_f64() * 1e3;
            assert!(
                d >= unjittered * 0.5 - 1e-6 && d <= unjittered + 1e-6,
                "attempt {attempt}: {d} ms outside [{}, {unjittered}]",
                unjittered * 0.5
            );
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_diverges() {
        let mk = |seed| {
            let mut b = Backoff::new(cfg(100, 10_000, 0.9, 0), seed);
            (0..6).map(|_| b.next_delay().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn attempt_budget_is_enforced_and_reset_restores_it() {
        let mut b = Backoff::new(cfg(1, 100, 0.0, 3), 1);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.exhausted());
        assert_eq!(b.next_delay(), None);
        b.reset();
        assert!(!b.exhausted());
        assert_eq!(b.next_delay().unwrap(), Duration::from_millis(1));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(cfg(1_000, 3_000, 0.0, 0), 1);
        for _ in 0..100 {
            let d = b.next_delay().unwrap();
            assert!(d <= Duration::from_secs(3));
        }
    }

    #[test]
    fn deadline_clamp_never_overshoots() {
        let d = Duration::from_millis(400);
        assert_eq!(
            clamp_to_deadline(d, Duration::from_millis(90)),
            Duration::from_millis(90)
        );
        assert_eq!(clamp_to_deadline(d, Duration::from_secs(10)), d);
        assert_eq!(clamp_to_deadline(d, Duration::ZERO), Duration::ZERO);
    }
}
