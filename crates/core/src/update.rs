//! Incremental learning for data updates (§5.3, evaluated in Exp-11).
//!
//! "GL+ supports incremental learning for updates because GL+ is highly
//! modular": inserted points are routed to the nearest cluster by centroid
//! distance, the cached query labels are patched (a new point inside a
//! query's threshold bumps that query's cardinality and the owning
//! segment's share), and only the affected local models plus the global
//! model are fine-tuned for a couple of epochs — instead of retraining
//! from scratch.

use crate::arch::{tau_features, TAU_DIM};
use crate::gl::{build_feature_caches, GlEstimator};
use cardest_baselines::traits::CardinalityEstimator;
use cardest_data::ground_truth::DistanceTable;
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use cardest_data::workload::SearchSample;
use cardest_nn::metrics::{q_error, ErrorSummary};
use cardest_nn::parallel::{fan_exclusive, train_threads};
use cardest_nn::trainer::{train_branch_regression, train_global_classifier, TrainConfig};
use cardest_nn::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fine-tuning schedule after an update batch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UpdateConfig {
    /// Epochs of local-model fine-tuning per affected segment.
    pub local_epochs: usize,
    /// Epochs of global-model fine-tuning.
    pub global_epochs: usize,
    pub learning_rate: f32,
    pub batch_size: usize,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            local_epochs: 2,
            global_epochs: 2,
            learning_rate: 3e-4,
            batch_size: 128,
        }
    }
}

/// The serialized form of [`UpdatableGl`] — everything a recovery needs,
/// minus the rebuildable feature caches.
#[derive(Serialize, Deserialize)]
struct SnapshotState {
    data: VectorData,
    metric: Metric,
    gl: GlEstimator,
    queries: VectorData,
    train: Vec<SearchSample>,
    test: Vec<SearchSample>,
    seg_cards: Vec<Vec<f32>>,
    deleted: Vec<bool>,
    cfg: UpdateConfig,
}

/// A GL estimator that supports incremental inserts with label patching
/// and partial fine-tuning.
pub struct UpdatableGl {
    data: VectorData,
    metric: Metric,
    gl: GlEstimator,
    queries: VectorData,
    train: Vec<SearchSample>,
    test: Vec<SearchSample>,
    /// Per-training-sample per-segment cardinalities (mutable labels).
    seg_cards: Vec<Vec<f32>>,
    /// Cached query features (queries do not change on data updates).
    xq_cache: Vec<Vec<f32>>,
    xc_cache: Vec<Vec<f32>>,
    /// Tombstone flags for deleted rows (storage keeps the row).
    deleted: Vec<bool>,
    cfg: UpdateConfig,
}

impl UpdatableGl {
    /// Wraps a trained estimator together with the labelled workload it
    /// was trained on.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        data: VectorData,
        metric: Metric,
        gl: GlEstimator,
        queries: VectorData,
        train: Vec<SearchSample>,
        test: Vec<SearchSample>,
        table: &DistanceTable,
        cfg: UpdateConfig,
    ) -> Self {
        let n_segments = gl.segmentation().n_segments();
        let seg_cards: Vec<Vec<f32>> = train
            .iter()
            .map(|s| {
                table
                    .segment_cardinalities(
                        s.query,
                        s.tau,
                        gl.segmentation().assignment(),
                        n_segments,
                    )
                    .into_iter()
                    .map(|c| c as f32)
                    .collect()
            })
            .collect();
        let (xq_cache, xc_cache) = build_feature_caches(&queries, gl.segmentation());
        let deleted = vec![false; data.len()];
        UpdatableGl {
            data,
            metric,
            gl,
            queries,
            train,
            test,
            seg_cards,
            xq_cache,
            xc_cache,
            deleted,
            cfg,
        }
    }

    pub fn dataset_len(&self) -> usize {
        self.data.len()
    }

    /// The evolving dataset (original rows plus inserted points).
    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// The workload's materialized query vectors (fixed across updates).
    pub fn queries(&self) -> &VectorData {
        &self.queries
    }

    /// The wrapped estimator (shared by serving and the drift monitor).
    pub fn gl(&self) -> &GlEstimator {
        &self.gl
    }

    pub fn gl_mut(&mut self) -> &mut GlEstimator {
        &mut self.gl
    }

    pub fn train_samples(&self) -> &[SearchSample] {
        &self.train
    }

    pub fn test_samples(&self) -> &[SearchSample] {
        &self.test
    }

    /// The pure insert step shared by the offline experiment and the WAL
    /// replay path (§5.3 routing + label patching, *no* fine-tuning, no
    /// I/O, no randomness): appends the point to the dataset, routes it to
    /// its nearest segment, and patches every cached label. Returns the
    /// owning segment. Replaying the same point sequence through this
    /// method always reproduces bit-identical state, which is what makes
    /// snapshot-load + WAL-replay recovery exact.
    pub fn apply_insert(&mut self, p: VectorView<'_>) -> usize {
        assert_eq!(
            p.dim(),
            self.data.dim(),
            "inserted point has wrong dimension"
        );
        let idx = self.data.len();
        let seg = self.gl.segmentation_mut().insert_point(idx, p);
        self.data.push_view(p);
        self.deleted.push(false);
        self.patch_labels(p, seg, 1.0);
        seg
    }

    /// The pure delete step (tombstone + membership removal + label
    /// patching, no fine-tuning). Returns the segment the point left, or
    /// `None` if the row was already tombstoned. Deterministic, like
    /// [`UpdatableGl::apply_insert`].
    pub fn apply_delete(&mut self, idx: usize) -> Option<usize> {
        assert!(idx < self.data.len(), "delete index {idx} out of range");
        if std::mem::replace(&mut self.deleted[idx], true) {
            return None;
        }
        let seg = self.gl.segmentation_mut().remove_point(idx);
        // Borrow-friendly dense copy of the row for label patching.
        let mut buf = Vec::with_capacity(self.data.dim());
        self.data.view(idx).write_dense(&mut buf);
        let owned = cardest_data::vector::DenseData::from_flat(self.data.dim(), buf);
        self.patch_labels(VectorView::Dense(owned.row(0)), seg, -1.0);
        Some(seg)
    }

    /// Inserts a batch of points: routes each to its nearest segment,
    /// patches the training/testing labels, and (optionally) fine-tunes
    /// the affected local models and the global model. Returns the set of
    /// affected segments.
    pub fn insert(&mut self, points: &VectorData, finetune: bool) -> Vec<usize> {
        assert_eq!(
            points.dim(),
            self.data.dim(),
            "inserted points have wrong dimension"
        );
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        for i in 0..points.len() {
            affected.insert(self.apply_insert(points.view(i)));
        }
        let affected: Vec<usize> = affected.into_iter().collect();
        if finetune {
            self.finetune_locals(&affected);
            self.finetune_global();
        }
        affected
    }

    /// Deletes points by dataset index (§5.3 handles deletions the same
    /// way as inserts: patch cluster membership and labels, then
    /// incrementally retrain the affected models). Rows become tombstones —
    /// the storage keeps them, but they leave their segment and every
    /// cached cardinality they used to contribute to. Returns the affected
    /// segments; already-deleted indices are ignored.
    pub fn delete(&mut self, ids: &[usize], finetune: bool) -> Vec<usize> {
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        for &idx in ids {
            if let Some(seg) = self.apply_delete(idx) {
                affected.insert(seg);
            }
        }
        let affected: Vec<usize> = affected.into_iter().collect();
        if finetune {
            self.finetune_locals(&affected);
            self.finetune_global();
        }
        affected
    }

    /// Fine-tunes the local models owning `affected` plus the global model
    /// — the §5.3 schedule, exposed so the drift monitor's background
    /// worker can trigger it outside an insert/delete call. The segment
    /// list is de-duplicated here, so callers may pass raw trigger lists.
    pub fn finetune(&mut self, affected: &[usize]) {
        let mut segs = affected.to_vec();
        segs.sort_unstable();
        segs.dedup();
        segs.retain(|&s| s < self.gl.segmentation().n_segments());
        self.finetune_locals(&segs);
        self.finetune_global();
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_len(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }

    /// Whether a dataset row has been tombstoned.
    pub fn is_deleted(&self, idx: usize) -> bool {
        self.deleted[idx]
    }

    /// Updates every cached label with one inserted (+1) or deleted (−1)
    /// point: a query whose threshold covers the point gains or loses one
    /// match, attributed to `seg`.
    fn patch_labels(&mut self, p: VectorView<'_>, seg: usize, delta: f32) {
        // One distance per query, shared by its (up to 10) samples.
        let mut qdist: Vec<f32> = Vec::with_capacity(self.queries.len());
        for q in 0..self.queries.len() {
            qdist.push(self.metric.distance(self.queries.view(q), p));
        }
        for (j, s) in self.train.iter_mut().enumerate() {
            if qdist[s.query] <= s.tau {
                s.card = (s.card + delta).max(0.0);
                self.seg_cards[j][seg] = (self.seg_cards[j][seg] + delta).max(0.0);
            }
        }
        for s in self.test.iter_mut() {
            if qdist[s.query] <= s.tau {
                s.card = (s.card + delta).max(0.0);
            }
        }
    }

    /// Short fine-tuning of the local models owning the affected segments,
    /// fanned across scoped threads (each affected segment's model and
    /// sample subset are independent given the patched labels).
    // The slot-take `expect` encodes the de-duplicated `affected` list
    // invariant; a violation must abort rather than alias a local model.
    #[allow(clippy::expect_used)]
    fn finetune_locals(&mut self, affected: &[usize]) {
        let dim = self.queries.dim();
        let tau_scale = self.gl.tau_scale();
        let n_segments = self.gl.segmentation().n_segments();
        let radii: Vec<f32> = (0..n_segments)
            .map(|i| self.gl.segmentation().radius(i))
            .collect();
        // Sample selection happens before the fan so job weights (sample
        // counts) are known and empty segments drop out.
        let mut seg_chosen: Vec<(usize, Vec<usize>)> = Vec::new();
        for &seg in affected {
            // Samples with mass in this segment plus a slice of zeros.
            let mut chosen: Vec<usize> = (0..self.train.len())
                .filter(|&j| self.seg_cards[j][seg] > 0.0)
                .collect();
            let zeros: Vec<usize> = (0..self.train.len())
                // cardest-lint: allow(float-total-order): exact zero sentinel — labels are set to the 0.0 literal, never computed
                .filter(|&j| self.seg_cards[j][seg] == 0.0)
                .take(chosen.len().max(16))
                .collect();
            chosen.extend(zeros);
            if !chosen.is_empty() {
                seg_chosen.push((seg, chosen));
            }
        }
        let train = &self.train;
        let seg_cards = &self.seg_cards;
        let xq_cache = &self.xq_cache;
        let xc_cache = &self.xc_cache;
        let radii = &radii;
        let (local_epochs, batch_size, learning_rate) = (
            self.cfg.local_epochs,
            self.cfg.batch_size,
            self.cfg.learning_rate,
        );
        // `affected` is a de-duplicated segment list (BTreeSet upstream),
        // so slot-take hands each job a distinct local model.
        let mut slots: Vec<Option<&mut cardest_nn::net::BranchNet>> =
            self.gl.locals_mut().iter_mut().map(Some).collect();
        let jobs: Vec<_> = seg_chosen
            .into_iter()
            .map(|(seg, chosen)| {
                // cardest-lint: allow(panic-path): the `affected` list is de-duplicated; a second take would alias a local model
                let local = slots[seg].take().expect("affected segments are unique");
                let weight = chosen.len();
                (seg, (local, chosen), weight)
            })
            .collect();
        fan_exclusive(
            jobs,
            train_threads(),
            |seg, (local, chosen): (_, Vec<usize>)| {
                let mut build = |idx: &[usize]| {
                    let b = idx.len();
                    let mut xq = Matrix::zeros(b, dim);
                    let mut xt = Matrix::zeros(b, TAU_DIM);
                    let mut xc = Matrix::zeros(b, 2 * n_segments);
                    let mut cards = Vec::with_capacity(b);
                    for (r, &ci) in idx.iter().enumerate() {
                        let j = chosen[ci];
                        let s = &train[j];
                        xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
                        xt.row_mut(r)
                            .copy_from_slice(&tau_features(s.tau, tau_scale));
                        xc.row_mut(r).copy_from_slice(&crate::gl::aux_features(
                            &xc_cache[s.query],
                            radii,
                            s.tau,
                        ));
                        cards.push(seg_cards[j][seg]);
                    }
                    (vec![xq, xt, xc], cards)
                };
                let tcfg = TrainConfig {
                    epochs: local_epochs,
                    batch_size,
                    learning_rate,
                    seed: seg as u64,
                    // The outer fan already owns the cores; sharded
                    // training is thread-count independent, so forcing the
                    // inner level sequential changes nothing but contention.
                    threads: 1,
                    ..Default::default()
                };
                let n = chosen.len();
                train_branch_regression(local, n, &mut build, &tcfg);
            },
        );
    }

    /// Short fine-tuning of the global model on the patched labels.
    fn finetune_global(&mut self) {
        let dim = self.queries.dim();
        let tau_scale = self.gl.tau_scale();
        let n_segments = self.gl.segmentation().n_segments();
        let radii: Vec<f32> = (0..n_segments)
            .map(|i| self.gl.segmentation().radius(i))
            .collect();
        let train = &self.train;
        let seg_cards = &self.seg_cards;
        let xq_cache = &self.xq_cache;
        let xc_cache = &self.xc_cache;
        let mut build = |idx: &[usize]| {
            let b = idx.len();
            let mut xq = Matrix::zeros(b, dim);
            let mut xt = Matrix::zeros(b, TAU_DIM);
            let mut xc = Matrix::zeros(b, 2 * n_segments);
            let mut lab = Matrix::zeros(b, n_segments);
            let mut wts = Matrix::zeros(b, n_segments);
            for (r, &j) in idx.iter().enumerate() {
                let s = &train[j];
                xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
                xt.row_mut(r)
                    .copy_from_slice(&tau_features(s.tau, tau_scale));
                xc.row_mut(r).copy_from_slice(&crate::gl::aux_features(
                    &xc_cache[s.query],
                    &radii,
                    s.tau,
                ));
                let weights = cardest_nn::loss::minmax_weights(&seg_cards[j]);
                for i in 0..n_segments {
                    lab.set(r, i, if seg_cards[j][i] > 0.0 { 1.0 } else { 0.0 });
                    wts.set(r, i, weights[i]);
                }
            }
            (vec![xq, xt, xc], lab, wts)
        };
        let tcfg = TrainConfig {
            epochs: self.cfg.global_epochs,
            batch_size: self.cfg.batch_size,
            learning_rate: self.cfg.learning_rate,
            ..Default::default()
        };
        let n = self.train.len();
        if let Some(g) = self.gl.global_mut() {
            train_global_classifier(g.net_mut(), n, &mut build, &tcfg);
        }
    }

    /// Serializes the full durable state — dataset, metric, model,
    /// queries, patched labels, segment shares, tombstones, and the
    /// fine-tune schedule — as the JSON payload a `cardest-store` snapshot
    /// persists. The query-feature caches are *not* included: they are a
    /// deterministic function of the (fixed) queries and the segmentation
    /// centroids, so [`UpdatableGl::from_snapshot_json`] rebuilds them
    /// bit-identically.
    pub fn snapshot_json(&self) -> serde_json::Result<String> {
        let state = SnapshotState {
            data: self.data.clone(),
            metric: self.metric,
            gl: self.gl.clone(),
            queries: self.queries.clone(),
            train: self.train.clone(),
            test: self.test.clone(),
            seg_cards: self.seg_cards.clone(),
            deleted: self.deleted.clone(),
            cfg: self.cfg,
        };
        serde_json::to_string(&state)
    }

    /// Rebuilds an [`UpdatableGl`] from a snapshot payload written by
    /// [`UpdatableGl::snapshot_json`], recomputing the feature caches.
    pub fn from_snapshot_json(json: &str) -> serde_json::Result<Self> {
        let state: SnapshotState = serde_json::from_str(json)?;
        let (xq_cache, xc_cache) = build_feature_caches(&state.queries, state.gl.segmentation());
        Ok(UpdatableGl {
            data: state.data,
            metric: state.metric,
            gl: state.gl,
            queries: state.queries,
            train: state.train,
            test: state.test,
            seg_cards: state.seg_cards,
            xq_cache,
            xc_cache,
            deleted: state.deleted,
            cfg: state.cfg,
        })
    }

    /// FNV-1a 64 digest of the serialized state — the equality the crash
    /// matrix pins: recovery (snapshot-load + WAL-replay) must reproduce
    /// the never-crashed run's fingerprint exactly.
    pub fn state_fingerprint(&self) -> serde_json::Result<u64> {
        Ok(cardest_nn::artifact::fnv1a64(
            self.snapshot_json()?.as_bytes(),
        ))
    }

    /// Mean Q-error over the (label-patched) test samples — the metric
    /// Fig. 15 tracks across update operations.
    pub fn mean_test_q_error(&mut self) -> f32 {
        let mut errs = Vec::with_capacity(self.test.len());
        for i in 0..self.test.len() {
            let s = self.test[i];
            let est = self.gl.estimate(self.queries.view(s.query), s.tau);
            errs.push(q_error(est, s.card));
        }
        ErrorSummary::from_errors(&errs).mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gl::{GlConfig, GlVariant};
    use crate::tuning::TuningConfig;
    use cardest_baselines::traits::TrainingSet;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;

    fn setup(seed: u64) -> (UpdatableGl, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 500,
            n_train_queries: 40,
            n_test_queries: 15,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        let cfg = GlConfig {
            variant: GlVariant::GlCnn,
            n_segments: 6,
            local_train: TrainConfig {
                epochs: 5,
                batch_size: 64,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 6,
                batch_size: 64,
                ..Default::default()
            },
            tuning: TuningConfig::fast(),
            tuning_segments: 1,
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
        let upd = UpdatableGl::new(
            data,
            spec.metric,
            gl,
            w.queries,
            w.train,
            w.test,
            &w.table,
            UpdateConfig::default(),
        );
        (upd, spec)
    }

    #[test]
    fn insert_patches_labels_exactly() {
        let (mut upd, spec) = setup(131);
        // Insert copies of existing points so coverage is predictable.
        let new_points = upd.data.gather(&[0, 1, 2]);
        let before: Vec<f32> = upd.train_samples().iter().map(|s| s.card).collect();
        let n_before = upd.dataset_len();
        upd.insert(&new_points, false);
        assert_eq!(upd.dataset_len(), n_before + 3);
        // Each sample's card grows by exactly the number of inserted
        // points within its threshold.
        for (j, s) in upd.train_samples().iter().enumerate() {
            let expected_gain = (0..3)
                .filter(|&i| {
                    spec.metric
                        .distance(upd.queries.view(s.query), new_points.view(i))
                        <= s.tau
                })
                .count() as f32;
            assert_eq!(s.card - before[j], expected_gain, "sample {j}");
            // Segment shares still partition the total.
            let seg_total: f32 = upd.seg_cards[j].iter().sum();
            assert_eq!(seg_total, s.card, "sample {j} segment shares drifted");
        }
    }

    #[test]
    fn finetuned_updates_keep_accuracy() {
        // Fig. 15's claim at miniature scale: after a series of insert
        // batches with fine-tuning, accuracy does not collapse.
        let (mut upd, _) = setup(132);
        let before = upd.mean_test_q_error();
        let mut rng_idx = 0usize;
        for _ in 0..3 {
            let ids: Vec<usize> = (0..5).map(|k| (rng_idx + k * 37) % 500).collect();
            rng_idx += 11;
            let pts = upd.data.gather(&ids);
            upd.insert(&pts, true);
        }
        let after = upd.mean_test_q_error();
        assert!(
            after < before * 3.0 + 5.0,
            "accuracy collapsed after updates: {before} → {after}"
        );
    }

    #[test]
    fn insert_reports_affected_segments() {
        let (mut upd, _) = setup(133);
        let pts = upd.data.gather(&[10]);
        let expected = upd.gl.segmentation().nearest_segment(pts.view(0));
        let affected = upd.insert(&pts, false);
        assert_eq!(affected, vec![expected]);
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let (mut upd, _) = setup(134);
        let pts = upd.data.gather(&[3, 7, 11]);
        upd.insert(&pts, false);
        upd.delete(&[5], false);
        let json = upd.snapshot_json().unwrap();
        let fp = upd.state_fingerprint().unwrap();
        let restored = UpdatableGl::from_snapshot_json(&json).unwrap();
        assert_eq!(restored.state_fingerprint().unwrap(), fp);
        // The rebuilt feature caches match the originals exactly.
        assert_eq!(restored.xq_cache, upd.xq_cache);
        assert_eq!(restored.xc_cache, upd.xc_cache);
        assert_eq!(restored.dataset_len(), upd.dataset_len());
        assert!(restored.is_deleted(5));
    }

    #[test]
    fn apply_insert_matches_batched_insert_bit_for_bit() {
        // The WAL replay path (apply_insert, one point at a time) and the
        // offline experiment (insert with a batch) must be the same code
        // path producing the same state.
        let (upd_a, _) = setup(135);
        let json0 = upd_a.snapshot_json().unwrap();
        let mut upd_b = UpdatableGl::from_snapshot_json(&json0).unwrap();
        let mut upd_a = upd_a;
        let pts = upd_a.data.gather(&[1, 4, 9, 16]);
        upd_a.insert(&pts, false);
        for i in 0..pts.len() {
            upd_b.apply_insert(pts.view(i));
        }
        assert_eq!(
            upd_a.state_fingerprint().unwrap(),
            upd_b.state_fingerprint().unwrap()
        );
    }
}
