// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-core
//!
//! The primary contribution of *Learned Cardinality Estimation for
//! Similarity Queries* (Sun, Li, Tang — SIGMOD 2021), reimplemented in
//! Rust on top of the workspace substrates:
//!
//! * [`arch`] — the shared model architecture (query/threshold/distance
//!   embedding branches and output heads of Figs. 2/3/5/7),
//! * [`qes`] — **QES**: the query-segmentation estimator of §3.2, a
//!   shared-weight CNN that learns per-segment distance distributions
//!   `f()` and their merge `g()`,
//! * [`global`] — the global discriminative model `G` of §3.3 with the
//!   cardinality-weighted loss ("penalty") and the learnable pre-sigmoid
//!   threshold of §5.1,
//! * [`gl`] — the global-local framework: **Local+**, **GL-MLP**,
//!   **GL-CNN** and **GL+** (per-segment local models, global selection,
//!   summed local estimates),
//! * [`tuning`] — Algorithm 3: greedy layer-wise hyperparameter search
//!   for the query-embedding CNN,
//! * [`join`] — similarity-join estimation (§4): **CNNJoin**, **GLJoin**,
//!   **GLJoin+**, with mask-based routing and sum-pooled query-set
//!   embeddings, transferred from search models and fine-tuned,
//! * [`update`] — incremental training for data updates (§5.3),
//! * [`drift`] — estimate-quality drift detection that decides when the
//!   online ingestion path should fine-tune (per-segment probe Q-error
//!   against a median-normalized baseline),
//! * [`backoff`] — the shared jittered-exponential-backoff policy every
//!   retry/reconnect loop (replication client, fine-tune worker) uses.
//!
//! Every estimator implements
//! [`cardest_baselines::traits::CardinalityEstimator`], so the bench
//! harness treats our models and the baselines uniformly.

pub mod arch;
pub mod backoff;
pub mod drift;
pub mod gl;
pub mod global;
pub mod join;
pub mod labels;
pub mod qes;
pub mod tuning;
pub mod update;

pub use arch::{ModelDims, QueryEmbed};
pub use backoff::{Backoff, BackoffConfig};
pub use drift::{DriftConfig, DriftMonitor, DriftVerdict};
pub use gl::{GlConfig, GlEstimator, GlVariant};
pub use global::{GlobalConfig, GlobalModel};
pub use join::{JoinConfig, JoinEstimator, JoinVariant};
pub use labels::SegmentLabels;
pub use qes::{QesConfig, QesEstimator};
pub use tuning::{tune_query_embedding, TuningConfig};
pub use update::UpdatableGl;
