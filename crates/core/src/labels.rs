//! Per-segment training labels for the global-local framework.
//!
//! Phase 1 of the §3.3 training trains one local regressor per segment on
//! `card^{j}[i]` — query `j`'s cardinality restricted to segment `i` — and
//! phase 2 trains the global model on the binary selection labels
//! `R^{j}[i] = 1{card^{j}[i] > 0}` with the min-max cardinality weights
//! `ε^{j}[i]`. All three matrices come from one pass over the exact
//! distance table and are cached here.

use cardest_cluster::segmentation::Segmentation;
use cardest_data::ground_truth::DistanceTable;
use cardest_data::workload::SearchSample;

/// Per-(sample, segment) cardinality labels for a fixed segmentation.
#[derive(Debug, Clone)]
pub struct SegmentLabels {
    n_segments: usize,
    /// `cards[sample * n_segments + segment]`.
    cards: Vec<f32>,
}

impl SegmentLabels {
    /// Computes `card^{j}[i]` for every training sample and segment.
    pub fn compute(
        table: &DistanceTable,
        samples: &[SearchSample],
        segmentation: &Segmentation,
    ) -> Self {
        let n_segments = segmentation.n_segments();
        let mut cards = Vec::with_capacity(samples.len() * n_segments);
        for s in samples {
            let seg_cards =
                table.segment_cardinalities(s.query, s.tau, segmentation.assignment(), n_segments);
            debug_assert_eq!(
                seg_cards.iter().sum::<u32>() as f32,
                s.card,
                "segment cardinalities must partition the total"
            );
            cards.extend(seg_cards.into_iter().map(|c| c as f32));
        }
        SegmentLabels { n_segments, cards }
    }

    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    pub fn n_samples(&self) -> usize {
        self.cards.len() / self.n_segments.max(1)
    }

    /// The per-segment cardinalities of sample `j`.
    #[inline]
    pub fn row(&self, j: usize) -> &[f32] {
        &self.cards[j * self.n_segments..(j + 1) * self.n_segments]
    }

    /// `card^{j}[i]`.
    #[inline]
    pub fn card(&self, j: usize, segment: usize) -> f32 {
        self.cards[j * self.n_segments + segment]
    }

    /// Binary selection label `R^{j}[i]`.
    #[inline]
    pub fn selected(&self, j: usize, segment: usize) -> bool {
        self.card(j, segment) > 0.0
    }

    /// Min-max-normalized weights `ε^{j}` for sample `j` (§3.3).
    pub fn minmax_weights(&self, j: usize) -> Vec<f32> {
        cardest_nn::loss::minmax_weights(self.row(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_cluster::segmentation::{SegmentationConfig, SegmentationMethod};
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;

    fn setup() -> (SearchWorkload, Segmentation) {
        let spec = DatasetSpec {
            n_data: 500,
            n_train_queries: 20,
            n_test_queries: 5,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(71);
        let w = SearchWorkload::build(&data, &spec, 71);
        let seg = Segmentation::fit(
            &data,
            spec.metric,
            &SegmentationConfig {
                n_segments: 6,
                pca_rank: 4,
                pca_iters: 6,
                method: SegmentationMethod::PcaKMeans,
                seed: 71,
            },
        );
        (w, seg)
    }

    #[test]
    fn rows_partition_the_total_cardinality() {
        let (w, seg) = setup();
        let labels = SegmentLabels::compute(&w.table, &w.train, &seg);
        assert_eq!(labels.n_samples(), w.train.len());
        for (j, s) in w.train.iter().enumerate() {
            let total: f32 = labels.row(j).iter().sum();
            assert_eq!(total, s.card, "sample {j}");
        }
    }

    #[test]
    fn selection_labels_match_positivity() {
        let (w, seg) = setup();
        let labels = SegmentLabels::compute(&w.table, &w.train, &seg);
        for j in 0..labels.n_samples() {
            for i in 0..labels.n_segments() {
                assert_eq!(labels.selected(j, i), labels.card(j, i) > 0.0);
            }
        }
    }

    #[test]
    fn weights_are_minmax_normalized() {
        let (w, seg) = setup();
        let labels = SegmentLabels::compute(&w.table, &w.train, &seg);
        for j in 0..labels.n_samples().min(50) {
            let ws = labels.minmax_weights(j);
            assert!(ws.iter().all(|w| (0.0..=1.0).contains(w)));
            let row = labels.row(j);
            let spread = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
                - row.iter().cloned().fold(f32::INFINITY, f32::min);
            if spread > 0.0 {
                assert!(ws.contains(&1.0), "max-cardinality segment gets weight 1");
                assert!(ws.contains(&0.0));
            }
        }
    }
}
