//! Similarity-join cardinality estimation (§4, Fig. 6).
//!
//! The global-local framework is reused with two join-specific pieces:
//!
//! * **Mask-based routing** — the global model predicts the indicating
//!   matrix `M` (one row per member query, one column per data segment);
//!   its transpose tells each local model which member queries it must
//!   evaluate, dropping zero-cardinality (query, segment) pairs.
//! * **Query-set embedding** — a *sum-pooling* layer between the query
//!   embedding module and the output module combines the routed queries'
//!   embeddings into one set embedding, so the output module runs once per
//!   segment instead of once per (query, segment) pair. Sum pooling adds
//!   no parameters, generalizes across set sizes, and lets the model be
//!   transferred from the search model "by training on a few samples and
//!   by only 2-3 iterations" (§4).
//!
//! Three variants (Table 2 rows 11–13):
//! * **CNNJoin** — sum-pooled query-segmentation embeddings, *no* data
//!   segmentation (one model over the whole dataset),
//! * **GLJoin** — global-local with MLP query embeddings,
//! * **GLJoin+** — global-local with the tuned CNN embeddings of GL+.

use crate::arch::tau_features;
use crate::gl::{GlConfig, GlEstimator, GlVariant};
use crate::qes::{QesConfig, QesEstimator};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_data::metric::Metric;
use cardest_data::vector::VectorData;
use cardest_data::workload::JoinSet;
use cardest_nn::loss::HybridLoss;
use cardest_nn::metrics::decode_log_card;
use cardest_nn::net::BranchNet;
use cardest_nn::optim::{Adam, Optimizer};
use cardest_nn::parallel::{fan_exclusive, resolve_threads};
use cardest_nn::trainer::BatchIter;
use cardest_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Join estimator variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinVariant {
    /// Sum-pooled CNN query embedding, no data segmentation.
    CnnJoin,
    /// Global-local with MLP embeddings.
    GlJoin,
    /// Global-local with tuned CNN embeddings (shares GL+'s tuning).
    GlJoinPlus,
}

impl JoinVariant {
    pub fn name(self) -> &'static str {
        match self {
            JoinVariant::CnnJoin => "CNNJoin",
            JoinVariant::GlJoin => "GLJoin",
            JoinVariant::GlJoinPlus => "GLJoin+",
        }
    }

    /// The search variant a join model is transferred from.
    fn base_variant(self) -> Option<GlVariant> {
        match self {
            JoinVariant::CnnJoin => None,
            JoinVariant::GlJoin => Some(GlVariant::GlMlp),
            JoinVariant::GlJoinPlus => Some(GlVariant::GlPlus),
        }
    }
}

/// Configuration for training a join estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinConfig {
    pub variant: JoinVariant,
    /// Configuration of the underlying search model the join model is
    /// transferred from.
    pub base: GlConfig,
    /// QES configuration for the CNNJoin variant.
    pub qes: QesConfig,
    /// Fine-tuning passes over the join training sets ("2-3 iterations").
    pub finetune_epochs: usize,
    pub finetune_lr: f32,
    pub seed: u64,
}

impl JoinConfig {
    pub fn for_variant(variant: JoinVariant) -> Self {
        let base = match variant.base_variant() {
            Some(v) => GlConfig::for_variant(v),
            None => GlConfig::default(),
        };
        JoinConfig {
            variant,
            base,
            qes: QesConfig::default(),
            finetune_epochs: 3,
            finetune_lr: 2e-4,
            seed: 0,
        }
    }
}

/// Backing model of a join estimator.
enum JoinBackend {
    /// CNNJoin: one QES-style model over the whole dataset.
    Single(QesEstimator, VectorData, Metric),
    /// GLJoin / GLJoin+: a transferred global-local model.
    GlobalLocal(GlEstimator),
}

/// A trained join estimator.
pub struct JoinEstimator {
    variant: JoinVariant,
    backend: JoinBackend,
}

impl JoinEstimator {
    /// Trains a search model, transfers it to the join setting and
    /// fine-tunes the output modules on labelled join sets.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        data: &VectorData,
        metric: Metric,
        training: &TrainingSet<'_>,
        table: &cardest_data::ground_truth::DistanceTable,
        join_train: &[JoinSet],
        cfg: &JoinConfig,
    ) -> Self {
        let mut est = match cfg.variant.base_variant() {
            Some(_) => {
                let gl = GlEstimator::train(data, metric, training, table, &cfg.base);
                JoinEstimator {
                    variant: cfg.variant,
                    backend: JoinBackend::GlobalLocal(gl),
                }
            }
            None => {
                let (qes, _) = QesEstimator::train(data, metric, training, &cfg.qes, cfg.seed);
                JoinEstimator {
                    variant: cfg.variant,
                    backend: JoinBackend::Single(qes, data.clone(), metric),
                }
            }
        };
        est.finetune(training.queries, join_train, cfg);
        est
    }

    /// Builds a join estimator directly from an already-trained search
    /// model (the transfer path of §4), fine-tuning on join sets.
    pub fn from_search_model(
        gl: GlEstimator,
        queries: &VectorData,
        join_train: &[JoinSet],
        cfg: &JoinConfig,
    ) -> Self {
        let mut est = JoinEstimator {
            variant: cfg.variant,
            backend: JoinBackend::GlobalLocal(gl),
        };
        est.finetune(queries, join_train, cfg);
        est
    }

    pub fn variant(&self) -> JoinVariant {
        self.variant
    }

    /// Fine-tunes on labelled join sets for the configured 2–3 epochs.
    fn finetune(&mut self, queries: &VectorData, join_train: &[JoinSet], cfg: &JoinConfig) {
        if join_train.is_empty() || cfg.finetune_epochs == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x70_17);
        let loss_fn = HybridLoss::default();
        let threads = resolve_threads(cfg.base.local_train.threads);
        match &mut self.backend {
            JoinBackend::GlobalLocal(gl) => {
                // One optimizer per local model keeps Adam state aligned
                // even though each join set touches a different segment
                // subset.
                let mut opts: Vec<Adam> = (0..gl.n_segments())
                    .map(|_| Adam::new(cfg.finetune_lr))
                    .collect();
                for _ in 0..cfg.finetune_epochs {
                    for idx in BatchIter::new(&mut rng, join_train.len(), 1) {
                        let set = &join_train[idx[0]];
                        finetune_gl_step(gl, queries, set, &loss_fn, &mut opts, threads);
                    }
                }
            }
            JoinBackend::Single(_, _, _) => {
                // CNNJoin's fine-tuning re-trains the head on pooled
                // embeddings below.
                let mut opt = Adam::new(cfg.finetune_lr);
                for _ in 0..cfg.finetune_epochs {
                    for idx in BatchIter::new(&mut rng, join_train.len(), 1) {
                        let set = &join_train[idx[0]];
                        if let JoinBackend::Single(qes, data, metric) = &mut self.backend {
                            finetune_single_step(
                                qes, *metric, data, queries, set, &loss_fn, &mut opt,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Batched join estimate: one sum-pooled head evaluation per (selected)
    /// segment, as in Fig. 6. Immutable — runs on the pooled inference path
    /// so a trained join model can be shared across serving threads.
    pub fn estimate_join_batched(
        &self,
        queries: &VectorData,
        member_ids: &[usize],
        tau: f32,
    ) -> f32 {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl_join_infer(gl, queries, member_ids, tau),
            JoinBackend::Single(qes, data, metric) => {
                single_join_infer(qes, *metric, data, queries, member_ids, tau)
            }
        }
    }

    /// The underlying global-local model (None for CNNJoin).
    pub fn gl(&self) -> Option<&GlEstimator> {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => Some(gl),
            JoinBackend::Single(..) => None,
        }
    }
}

impl CardinalityEstimator for JoinEstimator {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    /// Point estimates fall back to a singleton join set.
    fn estimate(&self, q: cardest_data::vector::VectorView<'_>, tau: f32) -> f32 {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl.estimate(q, tau),
            JoinBackend::Single(qes, _, _) => qes.estimate(q, tau),
        }
    }

    fn estimate_batch(&self, queries: &[(cardest_data::vector::VectorView<'_>, f32)]) -> Vec<f32> {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl.estimate_batch(queries),
            JoinBackend::Single(qes, _, _) => qes.estimate_batch(queries),
        }
    }

    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        self.estimate_join_batched(queries, member_ids, tau)
    }

    fn model_bytes(&self) -> usize {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl.model_bytes(),
            JoinBackend::Single(qes, _, _) => qes.model_bytes(),
        }
    }

    fn expected_dim(&self) -> Option<usize> {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl.expected_dim(),
            JoinBackend::Single(qes, _, _) => qes.expected_dim(),
        }
    }

    fn tau_bound(&self) -> Option<f32> {
        match &self.backend {
            JoinBackend::GlobalLocal(gl) => gl.tau_bound(),
            JoinBackend::Single(qes, _, _) => qes.tau_bound(),
        }
    }
}

/// Member feature matrices `x_q` / aux and the indicating matrix `M`
/// (mask-based routing) for one join set — shared by the inference and
/// fine-tuning passes. Without a global model every query routes to every
/// segment.
fn join_features(
    segmentation: &cardest_cluster::segmentation::Segmentation,
    global: Option<&crate::global::GlobalModel>,
    queries: &VectorData,
    member_ids: &[usize],
    tau: f32,
) -> (Matrix, Matrix, Vec<Vec<bool>>) {
    let n_segments = segmentation.n_segments();
    let dim = queries.dim();
    let radii: Vec<f32> = (0..n_segments).map(|i| segmentation.radius(i)).collect();
    let mut xq = Matrix::zeros(member_ids.len(), dim);
    let mut xc = Matrix::zeros(member_ids.len(), n_segments);
    let mut aux = Matrix::zeros(member_ids.len(), 2 * n_segments);
    let mut buf = Vec::with_capacity(dim);
    for (r, &qid) in member_ids.iter().enumerate() {
        let view = queries.view(qid);
        view.write_dense(&mut buf);
        xq.row_mut(r).copy_from_slice(&buf);
        let dists = segmentation.centroid_distances(view);
        aux.row_mut(r)
            .copy_from_slice(&crate::gl::aux_features(&dists, &radii, tau));
        xc.row_mut(r).copy_from_slice(&dists);
    }
    let taus = vec![tau; member_ids.len()];
    let mask: Vec<Vec<bool>> = match global {
        Some(g) => g.select_batch(&xq, &taus, &xc),
        None => vec![vec![true; n_segments]; member_ids.len()],
    };
    (xq, aux, mask)
}

/// Immutable forward pass of the global-local join model (Fig. 6) on the
/// pooled inference path. Mirrors [`gl_join_forward`] without touching the
/// training caches.
fn gl_join_infer(gl: &GlEstimator, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
    let tau_scale = gl.tau_scale();
    let segmentation = gl.segmentation();
    let (xq, aux, mask) = join_features(segmentation, gl.global(), queries, member_ids, tau);
    cardest_nn::scratch::with_thread_scratch(|scratch| {
        let mut total = 0.0f32;
        for (seg, local) in gl.locals().iter().enumerate() {
            let routed: Vec<usize> = (0..member_ids.len()).filter(|&r| mask[r][seg]).collect();
            if routed.is_empty() {
                continue;
            }
            let o = pooled_head_infer(local, &xq, &aux, &routed, tau, tau_scale, scratch);
            let cap = (segmentation.members(seg).len() * routed.len()) as f32;
            total += decode_log_card(o, cap);
        }
        total
    })
}

/// Immutable counterpart of [`pooled_head_forward`]: sum-pooled embeddings
/// for the routed rows, one head evaluation, no cache writes.
#[allow(clippy::too_many_arguments)]
fn pooled_head_infer(
    local: &BranchNet,
    xq: &Matrix,
    aux: &Matrix,
    routed: &[usize],
    tau: f32,
    tau_scale: f32,
    scratch: &mut cardest_nn::Scratch,
) -> f32 {
    let xq_routed = xq.gather_rows(routed);
    let xc_routed = aux.gather_rows(routed);
    let eq = local.infer_branch(0, &xq_routed, scratch);
    let zq = eq.sum_rows();
    scratch.recycle(eq);
    let xt = Matrix::from_row(&tau_features(tau, tau_scale));
    let zt = local.infer_branch(1, &xt, scratch);
    let ec = local.infer_branch(2, &xc_routed, scratch);
    let zc = ec.sum_rows();
    scratch.recycle(ec);
    let concat = Matrix::hconcat(&[&zq, &zt, &zc]);
    let out = local.infer_head(&concat, scratch);
    let o = out.get(0, 0);
    scratch.recycle(zt);
    scratch.recycle(out);
    o
}

/// Immutable forward pass of the CNNJoin model: sum-pool query and
/// sample-distance embeddings over all members, one head evaluation.
fn single_join_infer(
    qes: &QesEstimator,
    metric: Metric,
    data: &VectorData,
    queries: &VectorData,
    member_ids: &[usize],
    tau: f32,
) -> f32 {
    let (xq, xd) = single_join_features(qes, metric, queries, member_ids);
    let net = qes.net();
    cardest_nn::scratch::with_thread_scratch(|scratch| {
        let eq = net.infer_branch(0, &xq, scratch);
        let zq = eq.sum_rows();
        scratch.recycle(eq);
        let zt = net.infer_branch(1, &Matrix::from_row(&[tau]), scratch);
        let ed = net.infer_branch(2, &xd, scratch);
        let zd = ed.sum_rows();
        scratch.recycle(ed);
        let concat = Matrix::hconcat(&[&zq, &zt, &zd]);
        let out = net.infer_head(&concat, scratch);
        let o = out.get(0, 0);
        scratch.recycle(zt);
        scratch.recycle(out);
        // Cap at the trivial bound |Q|·|D|.
        let cap = (member_ids.len() * data.len()) as f32;
        decode_log_card(o, cap)
    })
}

/// Member query matrix `x_q` and sample-distance matrix `x_D` for CNNJoin.
fn single_join_features(
    qes: &QesEstimator,
    metric: Metric,
    queries: &VectorData,
    member_ids: &[usize],
) -> (Matrix, Matrix) {
    let dim = queries.dim();
    let mut xq = Matrix::zeros(member_ids.len(), dim);
    let mut buf = Vec::with_capacity(dim);
    let k = qes.samples().len();
    let mut xd = Matrix::zeros(member_ids.len(), k);
    for (r, &qid) in member_ids.iter().enumerate() {
        let view = queries.view(qid);
        view.write_dense(&mut buf);
        xq.row_mut(r).copy_from_slice(&buf);
        for i in 0..k {
            xd.set(r, i, metric.distance(view, qes.samples().view(i)));
        }
    }
    (xq, xd)
}

/// Forward pass of the global-local join model. Returns the total
/// estimate plus, per segment, the routed member rows and the head output
/// (`ln card`), so the fine-tuning step can backprop through the same
/// pass.
/// Per-segment record of a training-time join forward pass:
/// `(segment, routed member rows, raw prediction, capped contribution)`.
type SegmentForward = (usize, Vec<usize>, f32, f32);

fn gl_join_forward(
    gl: &mut GlEstimator,
    queries: &VectorData,
    member_ids: &[usize],
    tau: f32,
    threads: usize,
) -> (f32, Vec<SegmentForward>) {
    let tau_scale = gl.tau_scale();
    let (xq, aux, mask) = join_features(gl.segmentation(), gl.global(), queries, member_ids, tau);
    let (locals, _, segmentation) = gl.parts_mut();

    // Mᵀ rows per segment; segments with no routed members drop out before
    // the fan so workers never see empty jobs. The routed count doubles as
    // the scheduling weight (forward cost is linear in it).
    let mut jobs = Vec::new();
    for (seg, local) in locals.iter_mut().enumerate() {
        let routed: Vec<usize> = (0..member_ids.len()).filter(|&r| mask[r][seg]).collect();
        if !routed.is_empty() {
            let weight = routed.len();
            jobs.push((seg, (local, routed), weight));
        }
    }
    let results = fan_exclusive(jobs, threads, |_seg, (local, routed): (_, Vec<usize>)| {
        let o = pooled_head_forward(local, &xq, &aux, &routed, tau, tau_scale);
        (o, routed)
    });

    // Reduce in ascending segment order so the f32 total is bit-identical
    // for every thread count (and to the original sequential loop).
    let mut total = 0.0f32;
    let mut per_segment = Vec::new();
    for (seg, (o, routed)) in results {
        // A segment cannot contribute more than |D[seg]| pairs per routed
        // member; the cap guards against log-space extrapolation blowups
        // (same rationale as the search path).
        let cap = (segmentation.members(seg).len() * routed.len()) as f32;
        let contribution = decode_log_card(o, cap);
        total += contribution;
        per_segment.push((seg, routed, o, contribution));
    }
    (total, per_segment)
}

/// Runs one local model with sum-pooled query/centroid embeddings over the
/// routed member rows; returns the head output (`ln card` of the segment).
fn pooled_head_forward(
    local: &mut BranchNet,
    xq: &Matrix,
    aux: &Matrix,
    routed: &[usize],
    tau: f32,
    tau_scale: f32,
) -> f32 {
    let xq_routed = xq.gather_rows(routed);
    let xc_routed = aux.gather_rows(routed);
    let zq = local.forward_branch(0, &xq_routed).sum_rows();
    let zt = {
        let xt = Matrix::from_row(&tau_features(tau, tau_scale));
        local.forward_branch(1, &xt)
    };
    let zc = local.forward_branch(2, &xc_routed).sum_rows();
    let concat = Matrix::hconcat(&[&zq, &zt, &zc]);
    local.forward_head(&concat).get(0, 0)
}

/// Backprop for one segment of the join model, mirroring
/// [`pooled_head_forward`] (which must have been the model's most recent
/// forward pass).
fn pooled_head_backward(local: &mut BranchNet, routed_len: usize, grad_out: f32) {
    let g = Matrix::from_row(&[grad_out]);
    let gconcat = local.backward_head(&g);
    let widths = local.branch_out_dims().to_vec();
    let parts = gconcat.hsplit(&widths);
    // Sum pooling distributes the gradient identically to every member row.
    let expand = |m: &Matrix, rows: usize| {
        let mut out = Matrix::zeros(rows, m.cols());
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(m.row(0));
        }
        out
    };
    local.backward_branch(0, &expand(&parts[0], routed_len));
    local.backward_branch(1, &parts[1]);
    local.backward_branch(2, &expand(&parts[2], routed_len));
}

/// One fine-tuning step of the global-local join model on one join set.
// The slot-take `expect`s encode a real invariant — each segment is
// routed at most once per step — and a violation must abort training
// rather than silently corrupt two jobs' exclusive borrows.
#[allow(clippy::expect_used)]
fn finetune_gl_step(
    gl: &mut GlEstimator,
    queries: &VectorData,
    set: &JoinSet,
    loss_fn: &HybridLoss,
    opts: &mut [Adam],
    threads: usize,
) {
    let (total, per_segment) = gl_join_forward(gl, queries, &set.query_ids, set.tau, threads);
    if per_segment.is_empty() {
        return;
    }
    let pred_log = (total.max(1e-3)).ln();
    let (_, grad) = loss_fn.eval(&[pred_log], &[set.card]);
    let g_total = grad[0] / total.max(1e-3);
    // d total / d o_i = exp(o_i) while the cap is inactive (the capped
    // branch has zero derivative); each local's forward caches are still
    // those of gl_join_forward, so its backward sees matching activations.
    //
    // Each touched segment owns its net and optimizer, so backward + Adam
    // step fan out with no cross-segment state; slot-take turns the two
    // slices into per-job exclusive borrows.
    let locals = gl.locals_mut();
    let mut slots: Vec<Option<&mut BranchNet>> = locals.iter_mut().map(Some).collect();
    let mut opt_slots: Vec<Option<&mut Adam>> = opts.iter_mut().map(Some).collect();
    let mut jobs = Vec::new();
    for &(seg, ref routed, o, contribution) in &per_segment {
        let uncapped = decode_log_card(o, f32::INFINITY);
        if contribution < uncapped {
            continue; // cap active: no gradient flows
        }
        let g_o = g_total * uncapped;
        // cardest-lint: allow(panic-path): the routing pass de-duplicates segments; a second take would alias a local model
        let local = slots[seg].take().expect("segment routed at most once");
        // cardest-lint: allow(panic-path): the routing pass de-duplicates segments; a second take would alias a local model
        let opt = opt_slots[seg].take().expect("segment routed at most once");
        jobs.push((seg, (local, opt, routed.len(), g_o), routed.len()));
    }
    fan_exclusive(
        jobs,
        threads,
        |_seg, (local, opt, routed_len, g_o): (_, _, _, f32)| {
            pooled_head_backward(local, routed_len, g_o);
            opt.step(&mut local.params_mut());
            local.apply_constraints();
        },
    );
}

/// Forward pass of the CNNJoin model: sum-pool query and sample-distance
/// embeddings over all members, one head evaluation.
fn single_join_forward(
    qes: &mut QesEstimator,
    metric: Metric,
    _data: &VectorData,
    queries: &VectorData,
    member_ids: &[usize],
    tau: f32,
) -> (f32, usize) {
    let (xq, xd) = single_join_features(qes, metric, queries, member_ids);
    let net = qes.net_mut();
    let zq = net.forward_branch(0, &xq).sum_rows();
    let zt = net.forward_branch(1, &Matrix::from_row(&[tau]));
    let zd = net.forward_branch(2, &xd).sum_rows();
    let concat = Matrix::hconcat(&[&zq, &zt, &zd]);
    let o = net.forward_head(&concat).get(0, 0);
    // Cap at the trivial bound |Q|·|D|.
    let cap = (member_ids.len() * _data.len()) as f32;
    (decode_log_card(o, cap), member_ids.len())
}

/// One fine-tuning step of CNNJoin on one join set.
fn finetune_single_step(
    qes: &mut QesEstimator,
    metric: Metric,
    data: &VectorData,
    queries: &VectorData,
    set: &JoinSet,
    loss_fn: &HybridLoss,
    opt: &mut Adam,
) {
    let (total, n_members) =
        single_join_forward(qes, metric, data, queries, &set.query_ids, set.tau);
    let pred_log = total.max(1e-3).ln();
    let (_, grad) = loss_fn.eval(&[pred_log], &[set.card]);
    // total = exp(o) → d pred_log/d o = 1.
    let g_o = grad[0];
    let net = qes.net_mut();
    let g = Matrix::from_row(&[g_o]);
    let gconcat = net.backward_head(&g);
    let widths = net.branch_out_dims().to_vec();
    let parts = gconcat.hsplit(&widths);
    let expand = |m: &Matrix, rows: usize| {
        let mut out = Matrix::zeros(rows, m.cols());
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(m.row(0));
        }
        out
    };
    net.backward_branch(0, &expand(&parts[0], n_members));
    net.backward_branch(1, &parts[1]);
    net.backward_branch(2, &expand(&parts[2], n_members));
    opt.step(&mut net.params_mut());
    net.apply_constraints();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::{JoinWorkload, SearchWorkload};
    use cardest_nn::metrics::ErrorSummary;
    use cardest_nn::trainer::TrainConfig;

    fn tiny(seed: u64) -> (VectorData, SearchWorkload, JoinWorkload, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 700,
            n_train_queries: 60,
            n_test_queries: 20,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        let j = JoinWorkload::build(&w, 24, 6, seed);
        (data, w, j, spec)
    }

    fn fast_join_cfg(variant: JoinVariant) -> JoinConfig {
        let mut cfg = JoinConfig::for_variant(variant);
        cfg.base.n_segments = 6;
        cfg.base.local_train = TrainConfig {
            epochs: 6,
            batch_size: 64,
            ..Default::default()
        };
        cfg.base.global_train = TrainConfig {
            epochs: 8,
            batch_size: 64,
            ..Default::default()
        };
        cfg.base.tuning = crate::tuning::TuningConfig::fast();
        cfg.base.tuning_segments = 1;
        cfg.qes.train = TrainConfig {
            epochs: 8,
            ..Default::default()
        };
        cfg
    }

    fn join_mean_qerr(est: &JoinEstimator, w: &SearchWorkload, j: &JoinWorkload) -> f32 {
        let pairs: Vec<(f32, f32)> = j.test_buckets[0]
            .iter()
            .map(|s| {
                (
                    est.estimate_join_batched(&w.queries, &s.query_ids, s.tau),
                    s.card,
                )
            })
            .collect();
        ErrorSummary::from_q_errors(&pairs).mean
    }

    #[test]
    fn gljoin_trains_and_estimates_finite_totals() {
        let (data, w, j, spec) = tiny(121);
        let training = TrainingSet::new(&w.queries, &w.train);
        let est = JoinEstimator::train(
            &data,
            spec.metric,
            &training,
            &w.table,
            &j.train,
            &fast_join_cfg(JoinVariant::GlJoin),
        );
        let err = join_mean_qerr(&est, &w, &j);
        assert!(err.is_finite() && err >= 1.0);
        // Join estimates should beat trivially answering 0.
        let zero: Vec<(f32, f32)> = j.test_buckets[0].iter().map(|s| (0.0, s.card)).collect();
        assert!(err < ErrorSummary::from_q_errors(&zero).mean);

        // Sum pooling folds the set size into the aggregated embedding
        // (§4: "it can easily generalize both the size and distribution of
        // the join query set"), so repeating the members must change the
        // pooled estimate — unlike mean pooling, which would be invariant.
        let ids: Vec<usize> = (60..70).collect(); // test-pool queries
        let tau = j.test_buckets[0][0].tau;
        let single = est.estimate_join_batched(&w.queries, &ids, tau);
        let doubled: Vec<usize> = ids.iter().chain(&ids).copied().collect();
        let double = est.estimate_join_batched(&w.queries, &doubled, tau);
        assert!(
            (double - single).abs() > 1e-6,
            "sum-pooled estimate ignored set size: {single} == {double}"
        );
        // And the estimate is deterministic for a fixed set.
        let again = est.estimate_join_batched(&w.queries, &ids, tau);
        assert_eq!(single, again);
    }

    #[test]
    fn cnnjoin_pools_and_estimates() {
        let (data, w, j, spec) = tiny(122);
        let training = TrainingSet::new(&w.queries, &w.train);
        let est = JoinEstimator::train(
            &data,
            spec.metric,
            &training,
            &w.table,
            &j.train,
            &fast_join_cfg(JoinVariant::CnnJoin),
        );
        let set = &j.test_buckets[0][0];
        let e = est.estimate_join_batched(&w.queries, &set.query_ids, set.tau);
        assert!(e.is_finite() && e >= 0.0);
        assert_eq!(est.name(), "CNNJoin");
    }
}
