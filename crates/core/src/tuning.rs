//! Algorithm 3 (§5.2): greedy hyperparameter tuning for the query
//! embedding CNN of a local model.
//!
//! The tunable tuple per conv layer is
//! `Θ = {θ_ch, θ_ker, θ_stri, θ_pad, θ_pker, θ_op}` with
//! `θ_op ∈ {MAX, AVG, SUM}`. The search is greedy twice over:
//!
//! 1. *cold start* — 3 random single-layer configurations; the best (by
//!    validation error after a short trial training) seeds the model,
//! 2. *coordinate descent* — each of the 6 hyperparameters is updated in
//!    turn until the inner relative improvement drops below 2%,
//! 3. *layer growth* — a new layer is appended and tuned the same way;
//!    the outer loop stops when appending stops improving by ≥ 2%.
//!
//! Trials train on a random subsample (the paper uses 1000 train / 200
//! validation queries) so a tuning run costs a bounded number of short
//! trainings.

use crate::arch::{build_regressor, tau_features, ModelDims, QueryEmbed, TAU_DIM};
use cardest_baselines::traits::TrainingSet;
use cardest_nn::layers::{Conv1d, ConvSpec, PoolOp};
use cardest_nn::metrics::{decode_log_card, q_error};
use cardest_nn::trainer::{train_branch_regression, TrainConfig};
use cardest_nn::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Tuning budget and trial-training settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Trial training subset size (Algorithm 3 line 1).
    pub train_samples: usize,
    /// Validation subset size (line 2).
    pub val_samples: usize,
    /// Cold-start candidates (line 4; the paper uses 3).
    pub init_configs: usize,
    /// Maximum conv layers to grow.
    pub max_layers: usize,
    /// Relative-improvement stopping criterion (2% in the paper).
    pub rel_improvement: f32,
    /// Hard cap on trial trainings per tuning run (the greedy loops of
    /// Algorithm 3 are otherwise unbounded); the best-so-far wins when the
    /// budget runs out.
    pub max_evals: usize,
    /// Short training used for each trial.
    pub trial_train: TrainConfig,
    pub dims: ModelDims,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig {
            train_samples: 1000,
            val_samples: 200,
            init_configs: 3,
            max_layers: 3,
            rel_improvement: 0.02,
            max_evals: 30,
            trial_train: TrainConfig {
                epochs: 8,
                batch_size: 64,
                ..Default::default()
            },
            dims: ModelDims::default(),
        }
    }
}

impl TuningConfig {
    /// A heavily reduced budget for tests.
    pub fn fast() -> Self {
        TuningConfig {
            train_samples: 150,
            val_samples: 50,
            init_configs: 2,
            max_layers: 2,
            max_evals: 8,
            trial_train: TrainConfig {
                epochs: 3,
                batch_size: 64,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Output shape (channels, length) of a conv stack applied to a
/// `1 × dim` query vector.
fn stack_shape(dim: usize, layers: &[ConvSpec]) -> (usize, usize) {
    let (mut ch, mut len) = (1usize, dim);
    for spec in layers {
        debug_assert!(Conv1d::spec_fits(len, spec));
        let conv_len = (len + 2 * spec.padding - spec.kernel) / spec.stride.max(1) + 1;
        len = conv_len.div_ceil(spec.pool_size.max(1));
        ch = spec.out_channels;
    }
    (ch, len)
}

/// Candidate values for each hyperparameter, filtered to fit `in_len`.
// `choose` on non-empty literal arrays cannot fail.
#[allow(clippy::expect_used)]
fn candidate_specs(rng: &mut StdRng, in_len: usize) -> Option<ConvSpec> {
    if in_len == 0 {
        return None;
    }
    let kernels: Vec<usize> = [in_len.div_ceil(8), in_len.div_ceil(4), 3, 5, 2]
        .into_iter()
        .filter(|&k| k >= 1 && k <= in_len)
        .collect();
    let kernel = *kernels.choose(rng)?;
    let stride = *[kernel, (kernel / 2).max(1), 1]
        .choose(rng)
        // cardest-lint: allow(panic-path): choose() on a non-empty literal array cannot return None
        .expect("non-empty stride candidates");
    let spec = ConvSpec {
        // cardest-lint: allow(panic-path): choose() on a non-empty literal array cannot return None
        out_channels: *[2usize, 4, 8].choose(rng).expect("non-empty"),
        kernel,
        stride,
        // cardest-lint: allow(panic-path): choose() on a non-empty literal array cannot return None
        padding: *[0usize, kernel / 2].choose(rng).expect("non-empty"),
        // cardest-lint: allow(panic-path): choose() on a non-empty literal array cannot return None
        pool_size: *[1usize, 2, 4].choose(rng).expect("non-empty"),
        pool: *[PoolOp::Max, PoolOp::Avg, PoolOp::Sum]
            .choose(rng)
            // cardest-lint: allow(panic-path): choose() on a non-empty literal array cannot return None
            .expect("non-empty"),
    };
    Conv1d::spec_fits(in_len, &spec).then_some(spec)
}

/// Neighbouring values to try while coordinate-descending one field.
fn field_candidates(field: usize, current: &ConvSpec, in_len: usize) -> Vec<ConvSpec> {
    let mut out = Vec::new();
    let mut push = |s: ConvSpec| {
        if Conv1d::spec_fits(in_len, &s) && s.stride >= 1 && s.out_channels >= 1 {
            out.push(s);
        }
    };
    match field {
        0 => {
            for ch in [2usize, 4, 8, 16] {
                push(ConvSpec {
                    out_channels: ch,
                    ..*current
                });
            }
        }
        1 => {
            for k in [
                current.kernel.saturating_sub(2).max(1),
                current.kernel + 2,
                current.kernel * 2,
                (current.kernel / 2).max(1),
            ] {
                push(ConvSpec {
                    kernel: k,
                    stride: current.stride.min(k),
                    ..*current
                });
            }
        }
        2 => {
            for s in [1usize, (current.kernel / 2).max(1), current.kernel] {
                push(ConvSpec {
                    stride: s,
                    ..*current
                });
            }
        }
        3 => {
            for p in [0usize, current.kernel / 2, current.kernel.saturating_sub(1)] {
                push(ConvSpec {
                    padding: p,
                    ..*current
                });
            }
        }
        4 => {
            for ps in [1usize, 2, 4] {
                push(ConvSpec {
                    pool_size: ps,
                    ..*current
                });
            }
        }
        _ => {
            for op in [PoolOp::Max, PoolOp::Avg, PoolOp::Sum] {
                push(ConvSpec {
                    pool: op,
                    ..*current
                });
            }
        }
    }
    out
}

/// Trains a trial model with the given conv stack and returns its mean
/// validation Q-error.
#[allow(clippy::too_many_arguments)]
fn evaluate_stack(
    dim: usize,
    layers: &[ConvSpec],
    training: &TrainingSet<'_>,
    targets: &[f32],
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
    train_idx: &[usize],
    val_idx: &[usize],
    cfg: &TuningConfig,
    seed: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let aux_dim = xc_cache.first().map_or(1, Vec::len);
    let tau_scale = training
        .samples
        .iter()
        .map(|s| s.tau)
        .fold(0.0f32, f32::max)
        .max(1e-6);
    let embed = QueryEmbed::Cnn {
        layers: layers.to_vec(),
    };
    let mut net = build_regressor(&mut rng, dim, TAU_DIM, aux_dim, &embed, &cfg.dims);
    let samples = training.samples;
    let mut build = |idx: &[usize]| {
        let b = idx.len();
        let mut xq = Matrix::zeros(b, dim);
        let mut xt = Matrix::zeros(b, TAU_DIM);
        let mut xc = Matrix::zeros(b, aux_dim);
        let mut cards = Vec::with_capacity(b);
        for (r, &ti) in idx.iter().enumerate() {
            let j = train_idx[ti];
            let s = &samples[j];
            xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
            xt.row_mut(r)
                .copy_from_slice(&tau_features(s.tau, tau_scale));
            xc.row_mut(r).copy_from_slice(&xc_cache[s.query]);
            cards.push(targets[j]);
        }
        (vec![xq, xt, xc], cards)
    };
    let mut tcfg = cfg.trial_train;
    tcfg.seed = seed;
    train_branch_regression(&mut net, train_idx.len(), &mut build, &tcfg);

    // Validation mean Q-error.
    let mut total = 0.0f64;
    for &j in val_idx {
        let s = &samples[j];
        let xq = Matrix::from_row(&xq_cache[s.query]);
        let xt = Matrix::from_row(&tau_features(s.tau, tau_scale));
        let xc = Matrix::from_row(&xc_cache[s.query]);
        let pred = decode_log_card(net.forward(&[&xq, &xt, &xc]).get(0, 0), f32::INFINITY);
        total += q_error(pred, targets[j]) as f64;
    }
    (total / val_idx.len().max(1) as f64) as f32
}

/// Runs Algorithm 3, returning the tuned query embedding and its
/// validation error.
///
/// `targets[j]` is the regression target of training sample `j` for the
/// local model being tuned (its per-segment cardinality).
pub fn tune_query_embedding(
    dim: usize,
    training: &TrainingSet<'_>,
    targets: &[f32],
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
    cfg: &TuningConfig,
    seed: u64,
) -> (QueryEmbed, f32) {
    assert_eq!(
        targets.len(),
        training.samples.len(),
        "one target per training sample"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x704E);
    // Lines 1–2: random trial subsets.
    let mut all: Vec<usize> = (0..training.samples.len()).collect();
    all.shuffle(&mut rng);
    let n_train = cfg.train_samples.min(all.len().saturating_sub(1)).max(1);
    let n_val = cfg.val_samples.min(all.len() - n_train).max(1);
    let (train_idx, rest) = all.split_at(n_train);
    let val_idx = &rest[..n_val];

    let eval_counter = std::cell::Cell::new(0u64);
    let eval = |layers: &[ConvSpec]| {
        eval_counter.set(eval_counter.get() + 1);
        evaluate_stack(
            dim,
            layers,
            training,
            targets,
            xq_cache,
            xc_cache,
            train_idx,
            val_idx,
            cfg,
            seed.wrapping_add(eval_counter.get()),
        )
    };

    let mut model: Vec<ConvSpec> = Vec::new();
    let mut error = f32::INFINITY;
    let budget = cfg.max_evals.max(cfg.init_configs);
    for _layer in 0..cfg.max_layers {
        if eval_counter.get() >= budget as u64 {
            break;
        }
        let (_, in_len) = stack_shape(dim, &model);
        if in_len < 2 {
            break;
        }
        // Lines 3–6: cold-start candidates for this layer.
        let mut best: Option<(ConvSpec, f32)> = None;
        for _ in 0..cfg.init_configs.max(1) {
            let Some(spec) = candidate_specs(&mut rng, in_len) else {
                continue;
            };
            let mut trial = model.clone();
            trial.push(spec);
            let e = eval(&trial);
            if best.as_ref().is_none_or(|(_, b)| e < *b) {
                best = Some((spec, e));
            }
        }
        let Some((mut theta, mut theta_err)) = best else {
            break;
        };
        // Lines 9–11: coordinate descent over the 6 hyperparameters.
        loop {
            let before = theta_err;
            for field in 0..6 {
                if eval_counter.get() >= budget as u64 {
                    break;
                }
                for cand in field_candidates(field, &theta, in_len) {
                    if cand == theta {
                        continue;
                    }
                    let mut trial = model.clone();
                    trial.push(cand);
                    let e = eval(&trial);
                    if e < theta_err {
                        theta_err = e;
                        theta = cand;
                    }
                }
            }
            if eval_counter.get() >= budget as u64
                || (before - theta_err) / before.max(1e-9) < cfg.rel_improvement
            {
                break;
            }
        }
        // Line 7: outer stopping criterion.
        if (error - theta_err) / error.max(1e-9) < cfg.rel_improvement && !model.is_empty() {
            break;
        }
        if theta_err < error {
            model.push(theta);
            error = theta_err;
        } else {
            break;
        }
    }
    if model.is_empty() {
        // Fall back to the default segmentation CNN.
        let embed = QueryEmbed::default_cnn(dim, 8);
        let e = if let QueryEmbed::Cnn { layers } = &embed {
            eval(layers)
        } else {
            error
        };
        return (embed, e);
    }
    (QueryEmbed::Cnn { layers: model }, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;

    #[test]
    fn stack_shape_tracks_layers() {
        let l1 = ConvSpec {
            out_channels: 4,
            kernel: 8,
            stride: 8,
            padding: 0,
            pool_size: 1,
            pool: PoolOp::Avg,
        };
        let l2 = ConvSpec {
            out_channels: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
            pool_size: 2,
            pool: PoolOp::Max,
        };
        assert_eq!(stack_shape(64, &[l1]), (4, 8));
        assert_eq!(stack_shape(64, &[l1, l2]), (2, 4));
    }

    #[test]
    fn candidates_always_fit() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [4usize, 7, 16, 64, 300] {
            for _ in 0..50 {
                if let Some(spec) = candidate_specs(&mut rng, len) {
                    assert!(Conv1d::spec_fits(len, &spec), "{spec:?} at len {len}");
                }
            }
        }
    }

    #[test]
    fn field_candidates_preserve_fit() {
        let base = ConvSpec {
            out_channels: 4,
            kernel: 8,
            stride: 8,
            padding: 0,
            pool_size: 1,
            pool: PoolOp::Avg,
        };
        for field in 0..6 {
            for cand in field_candidates(field, &base, 64) {
                assert!(Conv1d::spec_fits(64, &cand), "field {field}: {cand:?}");
            }
        }
    }

    #[test]
    fn tuning_returns_a_usable_embedding() {
        let spec = DatasetSpec {
            n_data: 600,
            n_train_queries: 40,
            n_test_queries: 10,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(111);
        let w = SearchWorkload::build(&data, &spec, 111);
        let training = TrainingSet::new(&w.queries, &w.train);
        let targets: Vec<f32> = w.train.iter().map(|s| s.card).collect();
        let mut xq = Vec::new();
        let mut xc = Vec::new();
        for q in 0..w.queries.len() {
            let mut buf = Vec::new();
            w.queries.view(q).write_dense(&mut buf);
            xq.push(buf);
            xc.push(vec![0.5f32; 4]); // dummy aux feature
        }
        let (embed, err) = tune_query_embedding(
            spec.dim,
            &training,
            &targets,
            &xq,
            &xc,
            &TuningConfig::fast(),
            111,
        );
        assert!(err.is_finite() && err >= 1.0);
        match embed {
            QueryEmbed::Cnn { layers } => {
                assert!(!layers.is_empty());
                assert!(Conv1d::spec_fits(spec.dim, &layers[0]));
            }
            QueryEmbed::Mlp { .. } => panic!("tuning must return a CNN embedding"),
        }
    }
}
