//! **QES** — the query-segmentation estimator of §3.2 (Table 2 row 1).
//!
//! The basic model of Fig. 2 with the query branch replaced by the
//! shared-weight segmentation CNN of Fig. 3/7: the first conv layer (one
//! filter bank applied per query segment) learns the per-segment
//! distance-density function `f()`, deeper layers learn the merge function
//! `g()`, and a final dense layer emits the query embedding `z_q`. The
//! auxiliary feature is `x_D`, the distances from the query to `k`
//! retained data samples, and the head regresses `ln card` under the
//! hybrid loss of Algorithm 1.
//!
//! QES is trained on the whole dataset (no data segmentation); the
//! global-local variants in [`crate::gl`] reuse the same architecture per
//! data segment.

use crate::arch::{
    build_aux_branch, build_monotonic_head, build_query_branch, build_regressor,
    build_threshold_branch, ModelDims, QueryEmbed,
};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use cardest_nn::metrics::decode_log_card;
use cardest_nn::net::BranchNet;
use cardest_nn::net::Sequential;
use cardest_nn::trainer::{train_branch_regression, TrainConfig, TrainReport};
use cardest_nn::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// QES hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QesConfig {
    /// Number of query segments fed to the first CNN layer.
    pub n_query_segments: usize,
    /// Explicit CNN layout; `None` uses [`QueryEmbed::default_cnn`].
    pub cnn: Option<QueryEmbed>,
    /// Number of retained data samples backing `x_D`.
    pub k_samples: usize,
    pub dims: ModelDims,
    /// Constrain the full τ-path to positive weights, making the
    /// estimator provably monotone in τ (the paper constrains only `E2`;
    /// this extends the constraint through `F`, trading a little capacity
    /// for the guarantee — checked by property tests).
    pub strict_monotonic: bool,
    pub train: TrainConfig,
}

impl Default for QesConfig {
    fn default() -> Self {
        QesConfig {
            n_query_segments: 8,
            cnn: None,
            k_samples: 64,
            dims: ModelDims::default(),
            strict_monotonic: false,
            train: TrainConfig::default(),
        }
    }
}

/// The trained QES estimator. Inference is immutable (`&self`) and
/// batchable: the CNN embedding and head run on true `B×d` batches with
/// temporaries drawn from a thread-local scratch pool.
pub struct QesEstimator {
    net: BranchNet,
    samples: VectorData,
    metric: Metric,
    /// Dataset size at training time; estimates are capped here (a search
    /// cardinality cannot exceed the dataset).
    n_data: usize,
    /// Largest threshold seen in training — the serving guard's τ bound.
    tau_seen: f32,
}

impl QesEstimator {
    /// Builds and trains QES.
    pub fn train(
        data: &VectorData,
        metric: Metric,
        training: &TrainingSet<'_>,
        cfg: &QesConfig,
        seed: u64,
    ) -> (Self, TrainReport) {
        assert!(!training.is_empty(), "training set is empty");
        let dim = data.dim();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E5);
        let embed = cfg
            .cnn
            .clone()
            .unwrap_or_else(|| QueryEmbed::default_cnn(dim, cfg.n_query_segments));
        // Retain k data samples for x_D.
        let mut ids: Vec<usize> = (0..data.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(cfg.k_samples.clamp(1, data.len()));
        let samples = data.gather(&ids);

        let net = if cfg.strict_monotonic {
            let bq = build_query_branch(&mut rng, dim, &embed, cfg.dims.embed_q);
            let bt: Sequential = build_threshold_branch(&mut rng, 1, cfg.dims.embed_t);
            let ba = build_aux_branch(&mut rng, samples.len(), cfg.dims.embed_aux);
            let concat = cfg.dims.embed_q + cfg.dims.embed_t + cfg.dims.embed_aux;
            let head = build_monotonic_head(
                &mut rng,
                concat,
                cfg.dims.hidden,
                (cfg.dims.embed_q, cfg.dims.embed_t),
            );
            cardest_nn::net::BranchNet::new(vec![bq, bt, ba], vec![dim, 1, samples.len()], head)
        } else {
            build_regressor(&mut rng, dim, 1, samples.len(), &embed, &cfg.dims)
        };
        let tau_seen = training
            .samples
            .iter()
            .map(|s| s.tau)
            .fold(0.0f32, f32::max)
            .max(1e-6);
        let mut est = QesEstimator {
            net,
            samples,
            metric,
            n_data: data.len(),
            tau_seen,
        };

        // Cache per-query features once.
        let mut xd_cache: Vec<Vec<f32>> = Vec::with_capacity(training.queries.len());
        let mut xq_cache: Vec<Vec<f32>> = Vec::with_capacity(training.queries.len());
        for q in 0..training.queries.len() {
            let view = training.queries.view(q);
            xd_cache.push(est.distance_vector(view));
            let mut buf = Vec::with_capacity(dim);
            view.write_dense(&mut buf);
            xq_cache.push(buf);
        }
        let samples_list = training.samples;
        let k = est.samples.len();
        let mut build = |idx: &[usize]| {
            let b = idx.len();
            let mut xq = Matrix::zeros(b, dim);
            let mut xt = Matrix::zeros(b, 1);
            let mut xd = Matrix::zeros(b, k);
            let mut cards = Vec::with_capacity(b);
            for (r, &i) in idx.iter().enumerate() {
                let s = &samples_list[i];
                xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
                xt.set(r, 0, s.tau);
                xd.row_mut(r).copy_from_slice(&xd_cache[s.query]);
                cards.push(s.card);
            }
            (vec![xq, xt, xd], cards)
        };
        let report =
            train_branch_regression(&mut est.net, samples_list.len(), &mut build, &cfg.train);
        (est, report)
    }

    fn distance_vector(&self, q: VectorView<'_>) -> Vec<f32> {
        self.metric.distance_many(q, &self.samples)
    }

    pub fn net(&self) -> &BranchNet {
        &self.net
    }

    /// Mutable network access (the join model drives the branches and head
    /// separately around its sum-pooling layer).
    pub fn net_mut(&mut self) -> &mut BranchNet {
        &mut self.net
    }

    /// The retained data samples backing `x_D`.
    pub fn samples(&self) -> &VectorData {
        &self.samples
    }
}

impl CardinalityEstimator for QesEstimator {
    fn name(&self) -> &'static str {
        "QES"
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        self.estimate_batch(&[(q, tau)])[0]
    }

    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        if queries.is_empty() {
            return Vec::new();
        }
        let b = queries.len();
        let dim = self.net.in_dims()[0];
        let k = self.samples.len();
        cardest_nn::scratch::with_thread_scratch(|scratch| {
            let mut xq = scratch.take(b, dim);
            let mut xt = scratch.take(b, 1);
            let mut xd = scratch.take(b, k);
            let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
            for (r, &(q, tau)) in queries.iter().enumerate() {
                q.write_dense(&mut qbuf);
                xq.row_mut(r).copy_from_slice(&qbuf);
                xt.set(r, 0, tau);
                self.metric
                    .distance_many_into(q, &self.samples, xd.row_mut(r));
            }
            let pred = self.net.infer(&[&xq, &xt, &xd], scratch);
            let out = (0..b)
                .map(|r| decode_log_card(pred.get(r, 0), self.n_data as f32))
                .collect();
            for m in [xq, xt, xd, pred] {
                scratch.recycle(m);
            }
            out
        })
    }

    fn model_bytes(&self) -> usize {
        self.net.param_bytes() + self.samples.heap_bytes()
    }

    fn expected_dim(&self) -> Option<usize> {
        Some(self.net.in_dims()[0])
    }

    fn tau_bound(&self) -> Option<f32> {
        Some(self.tau_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;
    use cardest_nn::metrics::ErrorSummary;

    fn tiny(dataset: PaperDataset, seed: u64) -> (VectorData, SearchWorkload, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 800,
            n_train_queries: 60,
            n_test_queries: 20,
            ..dataset.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        (data, w, spec)
    }

    fn test_error(est: &QesEstimator, w: &SearchWorkload) -> f32 {
        let pairs: Vec<(f32, f32)> = w
            .test
            .iter()
            .map(|s| (est.estimate(w.queries.view(s.query), s.tau), s.card))
            .collect();
        ErrorSummary::from_q_errors(&pairs).mean
    }

    #[test]
    fn trains_on_binary_hamming_data() {
        let (data, w, spec) = tiny(PaperDataset::ImageNet, 81);
        let cfg = QesConfig {
            k_samples: 32,
            train: TrainConfig {
                epochs: 25,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, report) = QesEstimator::train(&data, spec.metric, &training, &cfg, 81);
        assert!(report.final_loss.is_finite());
        let err = test_error(&est, &w);
        assert!(err < 100.0, "QES mean Q-error {err} unreasonably large");
    }

    #[test]
    fn qes_model_is_small() {
        // The paper's Table 5 shows QES is by far the smallest learned
        // model (well under a megabyte at paper scale); at our scale it
        // must be a few tens of kilobytes.
        let (data, w, spec) = tiny(PaperDataset::ImageNet, 82);
        let cfg = QesConfig {
            k_samples: 16,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 82);
        assert!(
            est.model_bytes() < 256 * 1024,
            "model is {} bytes",
            est.model_bytes()
        );
    }

    #[test]
    fn strict_monotonic_qes_is_monotone_in_tau() {
        let (data, w, spec) = tiny(PaperDataset::ImageNet, 84);
        let cfg = QesConfig {
            k_samples: 16,
            strict_monotonic: true,
            train: TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 84);
        for q in 0..5 {
            let mut prev = f32::NEG_INFINITY;
            for i in 0..=10 {
                let tau = spec.tau_max * i as f32 / 10.0;
                let e = est.estimate(w.queries.view(q), tau);
                assert!(
                    e >= prev - prev.abs() * 1e-5 - 1e-5,
                    "QES strict mode not monotone at q={q} τ={tau}: {e} < {prev}"
                );
                prev = e;
            }
        }
    }

    #[test]
    fn custom_cnn_layout_is_honored() {
        use cardest_nn::layers::{ConvSpec, PoolOp};
        let (data, w, spec) = tiny(PaperDataset::ImageNet, 83);
        let cfg = QesConfig {
            cnn: Some(QueryEmbed::Cnn {
                layers: vec![ConvSpec {
                    out_channels: 2,
                    kernel: 16,
                    stride: 16,
                    padding: 0,
                    pool_size: 1,
                    pool: PoolOp::Sum,
                }],
            }),
            k_samples: 8,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let (est, _) = QesEstimator::train(&data, spec.metric, &training, &cfg, 83);
        // Just exercise the forward path.
        let e = est.estimate(w.queries.view(0), 0.1);
        assert!(e.is_finite() && e >= 0.0);
    }
}
