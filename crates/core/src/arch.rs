//! Shared model architecture: the embedding branches and output heads from
//! Figs. 2, 3, 5 and 7 of the paper, assembled into
//! [`cardest_nn::net::BranchNet`]s.
//!
//! Every estimator in this crate is the same three-branch shape —
//! `F(E_q(x_q) ⊕ E_τ(x_τ) ⊕ E_aux(x_aux))` — differing only in
//! * the query branch: MLP (GL-MLP, the §3.1 basic model) vs the
//!   shared-weight segmentation CNN (QES, GL-CNN, GL+; §3.2/Fig. 7),
//! * the auxiliary feature: `x_D` (distances to `k` data samples, §3.1)
//!   vs `x_C` (distances to the segment centroids, Fig. 5),
//! * the head: regression (`dense + linear`, §5.1) vs the global model's
//!   classifier (`dense + linear + shift-sigmoid`).

use cardest_nn::layers::{Conv1d, ConvSpec, Dense, Layer, PoolOp, ShiftSigmoid};
use cardest_nn::net::{BranchNet, Sequential};
use cardest_nn::Activation;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Query-embedding branch choice (`E1`/`E4`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryEmbed {
    /// Fully-connected embedding — the basic model of §3.1 and the
    /// "GL-MLP" variant.
    Mlp { hidden: usize },
    /// The query-segmentation CNN of §3.2/Fig. 7: the first conv layer
    /// (kernel = stride = segment length) learns the per-segment
    /// distribution `f()`, deeper layers learn the merge `g()`.
    Cnn { layers: Vec<ConvSpec> },
}

impl QueryEmbed {
    /// The default segmentation CNN for a query dimension: `n_segments`
    /// equal segments handled by a shared filter bank, followed by one
    /// merging conv layer. `dim` need not divide evenly — the trailing
    /// partial segment is padded (matching `⌈d/n⌉`-sized segments, §3.2).
    pub fn default_cnn(dim: usize, n_segments: usize) -> Self {
        let n_segments = n_segments.clamp(1, dim);
        let seg_len = dim.div_ceil(n_segments);
        let pad = (seg_len * n_segments).saturating_sub(dim).div_ceil(2);
        let layer1 = ConvSpec {
            out_channels: 4,
            kernel: seg_len,
            stride: seg_len,
            padding: pad,
            pool_size: 1,
            pool: PoolOp::Avg,
        };
        let layer2 = ConvSpec {
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            pool_size: 2,
            pool: PoolOp::Max,
        };
        QueryEmbed::Cnn {
            layers: vec![layer1, layer2],
        }
    }
}

/// Embedding widths shared by the estimators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDims {
    /// Query embedding width (`z_q`).
    pub embed_q: usize,
    /// Threshold embedding width (`z_τ`).
    pub embed_t: usize,
    /// Distance-feature embedding width (`z_D` / `z_C`).
    pub embed_aux: usize,
    /// Hidden width of the output module.
    pub hidden: usize,
}

impl Default for ModelDims {
    fn default() -> Self {
        ModelDims {
            embed_q: 16,
            embed_t: 6,
            embed_aux: 12,
            hidden: 24,
        }
    }
}

/// Builds the query branch (`E1`/`E4`) for input width `dim`.
pub fn build_query_branch<R: Rng>(
    rng: &mut R,
    dim: usize,
    embed: &QueryEmbed,
    out: usize,
) -> Sequential {
    match embed {
        QueryEmbed::Mlp { hidden } => Sequential::new(vec![
            Layer::Dense(Dense::new(rng, dim, *hidden, Activation::Relu)),
            Layer::Dense(Dense::new(rng, *hidden, out, Activation::Relu)),
        ]),
        QueryEmbed::Cnn { layers: specs } => {
            let mut layers: Vec<Layer> = Vec::with_capacity(specs.len() + 1);
            let mut in_channels = 1usize;
            let mut in_len = dim;
            for spec in specs {
                assert!(
                    Conv1d::spec_fits(in_len, spec),
                    "conv spec {spec:?} does not fit input length {in_len}"
                );
                let conv = Conv1d::new(rng, in_channels, in_len, *spec, Activation::Relu);
                in_channels = spec.out_channels;
                in_len = conv.pool_len();
                layers.push(Layer::Conv1d(conv));
            }
            let flat = in_channels * in_len;
            layers.push(Layer::Dense(Dense::new(rng, flat, out, Activation::Relu)));
            Sequential::new(layers)
        }
    }
}

/// Width of the expanded threshold feature used by the global-local
/// models: `[t, t², √t]` with `t = τ/τ_scale`. A single raw scalar gives
/// the positivity-constrained ReLU embedding too little to work with at
/// this training scale; the three monotone basis functions keep the
/// τ-path monotone while making the distribution over τ learnable.
pub const TAU_DIM: usize = 3;

/// Expands a threshold into the monotone feature basis.
pub fn tau_features(tau: f32, tau_scale: f32) -> [f32; TAU_DIM] {
    let t = (tau / tau_scale.max(1e-6)).clamp(0.0, 4.0);
    [t, t * t, t.sqrt()]
}

/// Builds the monotone threshold branch (`E2`/`E5`): an MLP with one
/// hidden layer and positivity-constrained weights (§5.1). `in_dim` is 1
/// for the raw scalar (QES / the basic model) or [`TAU_DIM`] for the
/// expanded basis used by the global-local family.
pub fn build_threshold_branch<R: Rng>(rng: &mut R, in_dim: usize, out: usize) -> Sequential {
    Sequential::new(vec![
        Layer::Dense(Dense::new_nonneg(rng, in_dim, out, Activation::Relu)),
        Layer::Dense(Dense::new_nonneg(rng, out, out, Activation::Relu)),
    ])
}

/// Builds the distance-feature branch (`E3`/`E6`): an MLP with two hidden
/// layers (§5.1), for either `x_D` (k sample distances) or `x_C`
/// (n-segment centroid distances).
pub fn build_aux_branch<R: Rng>(rng: &mut R, in_dim: usize, out: usize) -> Sequential {
    let h = (in_dim * 2).clamp(out, 64);
    Sequential::new(vec![
        Layer::Dense(Dense::new(rng, in_dim, h, Activation::Relu)),
        Layer::Dense(Dense::new(rng, h, out, Activation::Relu)),
        Layer::Dense(Dense::new(rng, out, out, Activation::Relu)),
    ])
}

/// Builds the regression head `F`: one dense layer and one linear layer
/// (§5.1); the single output is `ln card`.
pub fn build_regression_head<R: Rng>(rng: &mut R, concat: usize, hidden: usize) -> Sequential {
    Sequential::new(vec![
        Layer::Dense(Dense::new(rng, concat, hidden, Activation::Relu)),
        Layer::Dense(Dense::new(rng, hidden, 1, Activation::Identity)),
    ])
}

/// Builds a regression head whose τ-path is provably monotone: the
/// columns reading the `z_τ` block (`tau_cols` = (offset, width) within
/// the concatenated embedding) are positivity-constrained in the first
/// layer, and the final linear layer is fully positivity-constrained, so
/// every path from τ to the output composes non-decreasing functions.
pub fn build_monotonic_head<R: Rng>(
    rng: &mut R,
    concat: usize,
    hidden: usize,
    tau_cols: (usize, usize),
) -> Sequential {
    let (off, width) = tau_cols;
    assert!(off + width <= concat, "tau column range out of bounds");
    let mut mask = vec![false; concat];
    for flag in mask.iter_mut().skip(off).take(width) {
        *flag = true;
    }
    Sequential::new(vec![
        Layer::Dense(Dense::new(rng, concat, hidden, Activation::Relu).with_nonneg_cols(mask)),
        Layer::Dense(Dense::new_nonneg(rng, hidden, 1, Activation::Identity)),
    ])
}

/// Builds the global model head `G`: dense features, one logit per data
/// segment, and the learnable threshold before the sigmoid (§5.1).
pub fn build_global_head<R: Rng>(
    rng: &mut R,
    concat: usize,
    hidden: usize,
    n_segments: usize,
) -> Sequential {
    Sequential::new(vec![
        Layer::Dense(Dense::new(rng, concat, hidden, Activation::Relu)),
        Layer::Dense(Dense::new(rng, hidden, n_segments, Activation::Identity)),
        Layer::ShiftSigmoid(ShiftSigmoid::new(n_segments)),
    ])
}

/// Assembles a full three-branch regressor (a local model or QES).
/// `tau_dim` selects the threshold-feature width (1 or [`TAU_DIM`]).
pub fn build_regressor<R: Rng>(
    rng: &mut R,
    dim: usize,
    tau_dim: usize,
    aux_dim: usize,
    embed: &QueryEmbed,
    dims: &ModelDims,
) -> BranchNet {
    let bq = build_query_branch(rng, dim, embed, dims.embed_q);
    let bt = build_threshold_branch(rng, tau_dim, dims.embed_t);
    let ba = build_aux_branch(rng, aux_dim, dims.embed_aux);
    let concat = dims.embed_q + dims.embed_t + dims.embed_aux;
    let head = build_regression_head(rng, concat, dims.hidden);
    BranchNet::new(vec![bq, bt, ba], vec![dim, tau_dim, aux_dim], head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_cnn_handles_non_divisible_dims() {
        for dim in [64usize, 100, 300, 768, 7] {
            let mut rng = StdRng::seed_from_u64(1);
            let embed = QueryEmbed::default_cnn(dim, 8);
            let branch = build_query_branch(&mut rng, dim, &embed, 16);
            assert_eq!(branch.out_dim_for(dim), 16, "dim {dim}");
        }
    }

    #[test]
    fn regressor_has_single_log_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = build_regressor(
            &mut rng,
            64,
            1,
            10,
            &QueryEmbed::Mlp { hidden: 16 },
            &ModelDims::default(),
        );
        let xq = Matrix::zeros(3, 64);
        let xt = Matrix::zeros(3, 1);
        let xa = Matrix::zeros(3, 10);
        let y = net.forward(&[&xq, &xt, &xa]);
        assert_eq!((y.rows(), y.cols()), (3, 1));
    }

    #[test]
    fn global_head_outputs_probabilities_per_segment() {
        let mut rng = StdRng::seed_from_u64(3);
        let bq = build_query_branch(&mut rng, 32, &QueryEmbed::Mlp { hidden: 16 }, 12);
        let bt = build_threshold_branch(&mut rng, 1, 4);
        let ba = build_aux_branch(&mut rng, 8, 8);
        let head = build_global_head(&mut rng, 24, 16, 8);
        let mut net = BranchNet::new(vec![bq, bt, ba], vec![32, 1, 8], head);
        let y = net.forward(&[
            &Matrix::zeros(2, 32),
            &Matrix::zeros(2, 1),
            &Matrix::zeros(2, 8),
        ]);
        assert_eq!((y.rows(), y.cols()), (2, 8));
        assert!(y.as_slice().iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn threshold_branch_weights_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = build_threshold_branch(&mut rng, TAU_DIM, 6);
        for layer in b.layers() {
            if let Layer::Dense(d) = layer {
                assert!(d.weights().as_slice().iter().all(|w| *w >= 0.0));
            }
        }
    }

    #[test]
    fn first_cnn_layer_has_segment_kernel() {
        let embed = QueryEmbed::default_cnn(128, 8);
        if let QueryEmbed::Cnn { layers } = &embed {
            assert_eq!(layers[0].kernel, 16);
            assert_eq!(layers[0].stride, 16);
        } else {
            unreachable!();
        }
    }
}
