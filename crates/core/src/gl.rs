//! The global-local framework of §3.3 — the paper's headline estimators.
//!
//! The dataset is segmented (PCA + batch k-means); **phase 1** trains one
//! small local regressor per segment on the per-segment cardinalities
//! `card^{j}[i]`, and **phase 2** trains the global model `G` to select
//! which local models a query needs (Algorithm 2). The final estimate is
//! the sum of the selected local estimates:
//! `card̂(q, τ) = Σ_{i : G selects i} exp(F[i](z_q ⊕ z_τ ⊕ z_C))`.
//!
//! Local models take the centroid-distance feature `x_C` instead of sample
//! distances `x_D` — the simplification Fig. 5 introduces ("the distance
//! distribution in each data segment can be easily learned by the other
//! layers faster, under the global-local framework").
//!
//! Four variants share this code (Table 2):
//! * **Local+** — per-segment local models with tuned CNN embeddings, *no*
//!   global model: every local model is evaluated (slower, Exp-9),
//! * **GL-MLP** — global + locals with MLP query embeddings,
//! * **GL-CNN** — global + locals with the default segmentation CNN,
//! * **GL+** — GL-CNN plus the greedy hyperparameter tuning of §5.2.

use crate::arch::{build_regressor, tau_features, ModelDims, QueryEmbed, TAU_DIM};
use crate::global::{GlobalConfig, GlobalModel};
use crate::labels::SegmentLabels;
use crate::tuning::{tune_query_embedding, TuningConfig};
use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
use cardest_data::metric::Metric;
use cardest_data::vector::{VectorData, VectorView};
use cardest_nn::artifact::ArtifactError;
use cardest_nn::metrics::decode_log_card;
use cardest_nn::net::BranchNet;
use cardest_nn::scratch::with_thread_scratch;
use cardest_nn::tensor::dot;
use cardest_nn::trainer::{train_branch_regression, TrainConfig};
use cardest_nn::{Matrix, Scratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Artifact kind tag identifying a serialized [`GlEstimator`] (any
/// variant — the variant travels inside the payload).
pub const GL_ARTIFACT_KIND: &str = "cardest.gl";

/// Which member of the global-local family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GlVariant {
    /// Data segmentation + tuned CNN locals, no global model.
    LocalPlus,
    /// Global-local with MLP query embeddings.
    GlMlp,
    /// Global-local with the default segmentation CNN.
    GlCnn,
    /// GL-CNN + automatic hyperparameter tuning (Algorithm 3).
    GlPlus,
}

impl GlVariant {
    pub fn name(self) -> &'static str {
        match self {
            GlVariant::LocalPlus => "Local+",
            GlVariant::GlMlp => "GL-MLP",
            GlVariant::GlCnn => "GL-CNN",
            GlVariant::GlPlus => "GL+",
        }
    }

    fn uses_global(self) -> bool {
        !matches!(self, GlVariant::LocalPlus)
    }
}

/// Configuration for the global-local estimators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlConfig {
    pub variant: GlVariant,
    /// Number of data segments (the paper's default is 100 at full scale;
    /// 16 matches our scaled datasets — Fig. 11 sweeps this).
    pub n_segments: usize,
    /// Number of query segments for CNN embeddings.
    pub n_query_segments: usize,
    pub dims: ModelDims,
    /// Selection cut-off σ of the global model.
    pub sigma: f32,
    /// Cardinality penalty in the global loss (Exp-6 ablation).
    pub penalty: bool,
    pub local_train: TrainConfig,
    pub global_train: TrainConfig,
    /// Cap on per-local-model training samples (positives are always kept;
    /// zero-cardinality samples are subsampled to at most twice the
    /// positives within this budget).
    pub max_local_samples: usize,
    /// Algorithm 3 settings (used by GL+ / Local+). Tuning runs on
    /// `tuning_segments` representative (largest) segments and the best
    /// configuration is shared by all local models — a scaled-down stand-in
    /// for the paper's per-segment tuning, documented in DESIGN.md.
    pub tuning: TuningConfig,
    pub tuning_segments: usize,
    pub seed: u64,
}

impl Default for GlConfig {
    fn default() -> Self {
        GlConfig {
            variant: GlVariant::GlPlus,
            n_segments: 16,
            n_query_segments: 8,
            dims: ModelDims::default(),
            sigma: 0.5,
            penalty: true,
            local_train: TrainConfig {
                epochs: 25,
                batch_size: 128,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 30,
                batch_size: 128,
                ..Default::default()
            },
            max_local_samples: 4000,
            tuning: TuningConfig::default(),
            tuning_segments: 2,
            seed: 0,
        }
    }
}

impl GlConfig {
    pub fn for_variant(variant: GlVariant) -> Self {
        GlConfig {
            variant,
            ..Default::default()
        }
    }
}

/// A trained global-local estimator.
///
/// Serializable: a trained model can be exported with serde (the paper
/// trains in PyTorch and copies parameters into a C++ engine for serving;
/// here save/load round-trips the whole estimator).
#[derive(Clone, Serialize, Deserialize)]
pub struct GlEstimator {
    variant: GlVariant,
    segmentation: Segmentation,
    locals: Vec<BranchNet>,
    global: Option<GlobalModel>,
    /// Threshold normalizer for the expanded τ features (the largest τ
    /// seen in training).
    tau_scale: f32,
    /// Per-segment radii, cached for the overlap features.
    radii: Vec<f32>,
}

impl GlEstimator {
    /// Trains the selected variant: segmentation, per-segment labels,
    /// phase-1 local models, phase-2 global model.
    pub fn train(
        data: &VectorData,
        metric: Metric,
        training: &TrainingSet<'_>,
        table: &cardest_data::ground_truth::DistanceTable,
        cfg: &GlConfig,
    ) -> Self {
        assert!(!training.is_empty(), "training set is empty");
        let seg_cfg = SegmentationConfig {
            n_segments: cfg.n_segments,
            pca_rank: 8,
            pca_iters: 10,
            method: SegmentationMethod::PcaKMeans,
            seed: cfg.seed,
        };
        let segmentation = Segmentation::fit(data, metric, &seg_cfg);
        let labels = SegmentLabels::compute(table, training.samples, &segmentation);
        Self::train_with_segmentation(data, metric, training, segmentation, &labels, cfg)
    }

    /// Trains on a pre-fitted segmentation and labels (used by Fig. 11's
    /// segment-count sweep and by the update machinery, which re-train
    /// with modified labels).
    pub fn train_with_segmentation(
        data: &VectorData,
        _metric: Metric,
        training: &TrainingSet<'_>,
        segmentation: Segmentation,
        labels: &SegmentLabels,
        cfg: &GlConfig,
    ) -> Self {
        let dim = data.dim();
        let n_segments = segmentation.n_segments();
        let tau_scale = training
            .samples
            .iter()
            .map(|s| s.tau)
            .fold(0.0f32, f32::max)
            .max(1e-6);

        // Per-query feature caches shared by every phase.
        let (xq_cache, xc_cache) = build_feature_caches(training.queries, &segmentation);

        // Query embedding: MLP, default CNN, or tuned CNN (Algorithm 3).
        let query_embed = match cfg.variant {
            GlVariant::GlMlp => QueryEmbed::Mlp {
                hidden: cfg.dims.embed_q * 2,
            },
            GlVariant::GlCnn => QueryEmbed::default_cnn(dim, cfg.n_query_segments),
            GlVariant::GlPlus | GlVariant::LocalPlus => {
                tune_shared_embedding(dim, n_segments, training, labels, &xq_cache, &xc_cache, cfg)
            }
        };

        // Phase 1: one local regressor per segment.
        let radii_vec: Vec<f32> = (0..n_segments).map(|i| segmentation.radius(i)).collect();
        let locals = train_locals(
            dim,
            n_segments,
            tau_scale,
            &radii_vec,
            training,
            labels,
            &xq_cache,
            &xc_cache,
            &query_embed,
            cfg,
        );

        // Phase 2: the global discriminative model.
        let global = if cfg.variant.uses_global() {
            let gcfg = GlobalConfig {
                query_embed: query_embed.clone(),
                dims: cfg.dims,
                sigma: cfg.sigma,
                penalty: cfg.penalty,
                tau_scale,
                radii: radii_vec.clone(),
                train: cfg.global_train,
            };
            let (g, _) =
                GlobalModel::train(training, labels, &xq_cache, &xc_cache, &gcfg, cfg.seed);
            Some(g)
        } else {
            None
        };

        let radii = (0..segmentation.n_segments())
            .map(|i| segmentation.radius(i))
            .collect();
        GlEstimator {
            variant: cfg.variant,
            segmentation,
            locals,
            global,
            tau_scale,
            radii,
        }
    }

    pub fn variant(&self) -> GlVariant {
        self.variant
    }

    pub fn segmentation(&self) -> &Segmentation {
        &self.segmentation
    }

    pub(crate) fn segmentation_mut(&mut self) -> &mut Segmentation {
        &mut self.segmentation
    }

    pub fn n_segments(&self) -> usize {
        self.locals.len()
    }

    pub fn global(&self) -> Option<&GlobalModel> {
        self.global.as_ref()
    }

    pub fn global_mut(&mut self) -> Option<&mut GlobalModel> {
        self.global.as_mut()
    }

    pub(crate) fn locals(&self) -> &[BranchNet] {
        &self.locals
    }

    pub(crate) fn locals_mut(&mut self) -> &mut [BranchNet] {
        &mut self.locals
    }

    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&mut [BranchNet], Option<&mut GlobalModel>, &Segmentation) {
        (&mut self.locals, self.global.as_mut(), &self.segmentation)
    }

    /// Threshold normalizer used by the expanded τ features.
    pub fn tau_scale(&self) -> f32 {
        self.tau_scale
    }

    /// Serializes the trained estimator to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restores an estimator serialized by [`GlEstimator::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Saves the trained estimator as a versioned, checksummed artifact
    /// (see `cardest_nn::artifact` for the container layout). The write is
    /// atomic: a crash mid-save leaves any previous artifact intact.
    pub fn save_artifact(&self, path: &std::path::Path) -> Result<(), ArtifactError> {
        let json = self
            .to_json()
            .map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        cardest_nn::artifact::write_atomic(path, GL_ARTIFACT_KIND, json.as_bytes())
    }

    /// Loads an artifact written by [`GlEstimator::save_artifact`],
    /// verifying magic, format version, kind, and checksum first — a
    /// truncated, bit-flipped, or version-skewed file is a typed `Err`,
    /// never silently-wrong weights.
    pub fn load_artifact(path: &std::path::Path) -> Result<Self, ArtifactError> {
        let json = cardest_nn::artifact::read_json_payload(path, GL_ARTIFACT_KIND)?;
        Self::from_json(&json).map_err(|e| ArtifactError::Malformed(e.to_string()))
    }

    /// Estimate with the number of local models evaluated (Exp-9 explains
    /// GL+'s speed by this count). Single-query wrapper around
    /// [`GlEstimator::estimate_batch_with_stats`].
    pub fn estimate_with_stats(&self, q: VectorView<'_>, tau: f32) -> (f32, usize) {
        self.estimate_batch_with_stats(&[(q, tau)])[0]
    }

    /// Batched estimation: per-query estimates and local-model evaluation
    /// counts, in input order.
    ///
    /// One batched global pass selects segments for the whole batch; the
    /// batch is then *grouped by selected segment* so each local model runs
    /// a single `B_i × d` forward pass over the queries that need it, and
    /// the per-segment batches are fanned across cores with scoped threads
    /// (each worker owns its own [`Scratch`](cardest_nn::Scratch)).
    /// Per-query contributions are accumulated in ascending segment order —
    /// the same order as single-query evaluation — so batched and
    /// sequential results agree within the trait's 1e-5 relative-error
    /// contract. (They are no longer guaranteed bitwise identical: the
    /// blocked GEMM picks its kernel by operand shape, so a `B_i × d`
    /// forward pass may reassociate differently from a `1 × d` one.)
    ///
    /// Two pieces of domain knowledge bound each local estimate:
    /// * a segment cannot contribute more than its member count, so
    ///   `exp(o_i)` is capped at `|D[i]|` (the model regresses in log
    ///   space, where a small extrapolation error exponentiates into a
    ///   huge overestimate),
    /// * an estimate below one half rounds to an empty segment — the
    ///   Q-error floor used during training makes zero-cardinality
    ///   segments regress to ≈0.1, and summing that residue across all
    ///   segments would otherwise inflate low-cardinality queries.
    ///
    /// If the global model selects nothing, the segment with the nearest
    /// centroid is evaluated as a fallback (a selectivity-0 answer is
    /// almost always wrong for a query drawn from the data).
    pub fn estimate_batch_with_stats(
        &self,
        queries: &[(VectorView<'_>, f32)],
    ) -> Vec<(f32, usize)> {
        if queries.is_empty() {
            return Vec::new();
        }
        let b = queries.len();
        let n_seg = self.locals.len();
        let dim = self.locals[0].in_dims()[0];

        // Per-query features, assembled once for the whole batch.
        let taus: Vec<f32> = queries.iter().map(|&(_, tau)| tau).collect();
        let mut xq = Matrix::zeros(b, dim);
        let mut qbuf: Vec<f32> = Vec::with_capacity(dim);
        for (r, &(q, _)) in queries.iter().enumerate() {
            q.write_dense(&mut qbuf);
            xq.row_mut(r).copy_from_slice(&qbuf);
        }
        let mut xcd = Matrix::zeros(b, n_seg); // raw centroid distances
        batched_centroid_distances(&self.segmentation, queries, &xq, &mut xcd);
        let mut xt = Matrix::zeros(b, TAU_DIM);
        let mut xca = Matrix::zeros(b, 2 * n_seg); // aux (overlap) features
        for (r, &tau) in taus.iter().enumerate() {
            xt.row_mut(r)
                .copy_from_slice(&tau_features(tau, self.tau_scale));
            aux_features_into(xcd.row(r), &self.radii, tau, xca.row_mut(r));
        }

        // Segment selection: one batched global forward for all queries.
        let mut selected = vec![false; b * n_seg];
        match &self.global {
            Some(g) => {
                let probs = g.probabilities_batch(&xq, &taus, &xcd);
                let sigma = g.sigma();
                for r in 0..b {
                    let row = probs.row(r);
                    for (sel, &p) in selected[r * n_seg..(r + 1) * n_seg].iter_mut().zip(row) {
                        *sel = p > sigma;
                    }
                    // Recall guards: the router's own argmax and the
                    // query's home segment (nearest centroid) are always
                    // evaluated — a query drawn from the data almost always
                    // has matches in its own cluster, and evaluating two
                    // extra locals costs microseconds while a missed heavy
                    // segment costs the whole answer (the failure mode
                    // Fig. 9 measures).
                    if let Some((am, _)) = row
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| a.total_cmp(b))
                    {
                        selected[r * n_seg + am] = true;
                    }
                }
            }
            None => selected.fill(true),
        }
        for r in 0..b {
            let nearest = xcd
                .row(r)
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map_or(0, |(i, _)| i);
            selected[r * n_seg + nearest] = true;
        }

        // Group queries by selected segment so each local model runs one
        // B_i × d forward over exactly the queries that need it.
        let groups: Vec<Vec<usize>> = (0..n_seg)
            .map(|i| (0..b).filter(|&r| selected[r * n_seg + i]).collect())
            .collect();

        // Per-segment ln-card predictions for the grouped rows.
        let mut seg_preds: Vec<Vec<f32>> = vec![Vec::new(); n_seg];
        let work: usize = groups.iter().map(Vec::len).sum();
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        if work <= 64 || threads <= 1 {
            // Small batches: the scoped-thread fan-out costs more than it
            // saves; run the per-segment batches on this thread.
            with_thread_scratch(|scratch| {
                for (seg, preds) in seg_preds.iter_mut().enumerate() {
                    *preds =
                        eval_local_group(&self.locals[seg], &groups[seg], &xq, &xt, &xca, scratch);
                }
            });
        } else {
            let chunk = n_seg.div_ceil(threads).max(1);
            std::thread::scope(|s| {
                for (t, chunk_preds) in seg_preds.chunks_mut(chunk).enumerate() {
                    let (groups, locals) = (&groups, &self.locals);
                    let (xq, xt, xca) = (&xq, &xt, &xca);
                    let seg0 = t * chunk;
                    s.spawn(move || {
                        let mut scratch = Scratch::new();
                        for (preds, seg) in chunk_preds.iter_mut().zip(seg0..) {
                            *preds = eval_local_group(
                                &locals[seg],
                                &groups[seg],
                                xq,
                                xt,
                                xca,
                                &mut scratch,
                            );
                        }
                    });
                }
            });
        }

        // Accumulate per query in ascending segment order (identical to the
        // sequential evaluation order).
        let mut totals = vec![0.0f32; b];
        let mut max_single = vec![0.0f32; b];
        let mut evaluated = vec![0usize; b];
        for (i, (rows, preds)) in groups.iter().zip(&seg_preds).enumerate() {
            let cap = self.segmentation.members(i).len() as f32;
            for (&r, &o) in rows.iter().zip(preds) {
                evaluated[r] += 1;
                let est = decode_log_card(o, cap);
                max_single[r] = max_single[r].max(est);
                if est >= 0.5 {
                    totals[r] += est;
                }
            }
        }
        // If every contribution fell below the rounding cut, fall back to
        // the largest single one rather than answering a hard zero.
        totals
            .into_iter()
            .zip(max_single)
            .zip(evaluated)
            // cardest-lint: allow(float-total-order): exact zero sentinel for "no segment answered"; totals are sums of exact zeros
            .map(|((t, m), n)| (if t == 0.0 { m } else { t }, n))
            .collect()
    }

    /// Bytes of all local models plus the global model (Table 5).
    fn all_param_bytes(&self) -> usize {
        let locals: usize = self.locals.iter().map(BranchNet::param_bytes).sum();
        locals + self.global.as_ref().map_or(0, GlobalModel::param_bytes)
    }
}

impl CardinalityEstimator for GlEstimator {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        self.estimate_with_stats(q, tau).0
    }

    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        self.estimate_batch_with_stats(queries)
            .into_iter()
            .map(|(e, _)| e)
            .collect()
    }

    fn model_bytes(&self) -> usize {
        self.all_param_bytes()
    }

    fn expected_dim(&self) -> Option<usize> {
        self.locals.first().map(|l| l.in_dims()[0])
    }

    fn tau_bound(&self) -> Option<f32> {
        Some(self.tau_scale)
    }
}

/// Runs one local model over the gathered rows that selected its segment:
/// a single `B_i × d` forward pass. Returns the raw `ln card` outputs in
/// the order of `rows`.
fn eval_local_group(
    local: &BranchNet,
    rows: &[usize],
    xq: &Matrix,
    xt: &Matrix,
    xca: &Matrix,
    scratch: &mut Scratch,
) -> Vec<f32> {
    if rows.is_empty() {
        return Vec::new();
    }
    let gq = xq.gather_rows(rows);
    let gt = xt.gather_rows(rows);
    let gc = xca.gather_rows(rows);
    let pred = local.infer(&[&gq, &gt, &gc], scratch);
    let out = (0..rows.len()).map(|r| pred.get(r, 0)).collect();
    scratch.recycle(pred);
    out
}

/// Per-segment auxiliary features for one (query, τ) pair: the centroid
/// distances `x_C` of Fig. 5 plus, per segment, the triangle-inequality
/// overlap `τ − (d(q, c_i) − r_i)` — how deep the query ball penetrates
/// the segment ball (§5.1 motivates exactly this bound: "we could compute
/// the distance upper bound between a query and a data object in a data
/// segment ... by using triangle inequality on the distance of the query
/// to the centroid, and this segment's radius"). Feeding the bound as a
/// feature is what lets a local model generalize to unseen queries
/// instead of keying on training-query identity.
pub fn aux_features(xc: &[f32], radii: &[f32], tau: f32) -> Vec<f32> {
    let mut out = vec![0.0; 2 * xc.len()];
    aux_features_into(xc, radii, tau, &mut out);
    out
}

/// [`aux_features`] writing into a caller-owned slice of width `2·n` —
/// the allocation-free form used by the batched feature assembly.
pub fn aux_features_into(xc: &[f32], radii: &[f32], tau: f32, out: &mut [f32]) {
    let n = xc.len();
    debug_assert_eq!(out.len(), 2 * n, "aux feature slice width mismatch");
    out[..n].copy_from_slice(xc);
    for i in 0..n {
        out[n + i] = tau - (xc[i] - radii[i]);
    }
}

/// Batched centroid distances: row `r` matches
/// `segmentation.centroid_distances(queries[r].0)` up to floating-point
/// reassociation. Hamming on binary queries and L2 reduce to dot products
/// against precomputed centroid transforms; other metrics fall back to
/// the per-row path.
fn batched_centroid_distances(
    seg: &Segmentation,
    queries: &[(VectorView<'_>, f32)],
    xq: &Matrix,
    xcd: &mut Matrix,
) {
    let n_seg = seg.n_segments();
    let dim = xq.cols() as f32;
    let all_binary = queries
        .iter()
        .all(|&(q, _)| matches!(q, VectorView::Binary { .. }));
    match seg.metric() {
        // |q_j − c_j| = c_j + q_j·(1 − 2·c_j) on 0/1 coordinates, so each
        // distance is one dot against the transformed centroid.
        Metric::Hamming if all_binary => {
            for i in 0..n_seg {
                let c = seg.centroid(i);
                let sum_c: f32 = c.iter().sum();
                let t: Vec<f32> = c.iter().map(|&v| 1.0 - 2.0 * v).collect();
                for r in 0..xq.rows() {
                    xcd.row_mut(r)[i] = (sum_c + dot(xq.row(r), &t)) / dim;
                }
            }
        }
        // ‖q − c‖² = q·q − 2·q·c + c·c (clamped against rounding).
        Metric::L2 => {
            let qq: Vec<f32> = (0..xq.rows()).map(|r| dot(xq.row(r), xq.row(r))).collect();
            for i in 0..n_seg {
                let c = seg.centroid(i);
                let cc = dot(c, c);
                for (r, &qr) in qq.iter().enumerate() {
                    let d2 = qr + cc - 2.0 * dot(xq.row(r), c);
                    xcd.row_mut(r)[i] = d2.max(0.0).sqrt();
                }
            }
        }
        _ => {
            for (r, &(q, _)) in queries.iter().enumerate() {
                xcd.row_mut(r).copy_from_slice(&seg.centroid_distances(q));
            }
        }
    }
}

/// Dense query vectors and centroid-distance features for every query in
/// the workload (train + test).
pub fn build_feature_caches(
    queries: &VectorData,
    segmentation: &Segmentation,
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let mut xq = Vec::with_capacity(queries.len());
    let mut xc = Vec::with_capacity(queries.len());
    for q in 0..queries.len() {
        let view = queries.view(q);
        let mut buf = Vec::with_capacity(queries.dim());
        view.write_dense(&mut buf);
        xq.push(buf);
        xc.push(segmentation.centroid_distances(view));
    }
    (xq, xc)
}

/// Runs Algorithm 3 on the largest segments and returns the best shared
/// query-embedding configuration.
#[allow(clippy::too_many_arguments)]
fn tune_shared_embedding(
    dim: usize,
    n_segments: usize,
    training: &TrainingSet<'_>,
    labels: &SegmentLabels,
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
    cfg: &GlConfig,
) -> QueryEmbed {
    // Largest segments are the most informative tuning targets.
    let mut seg_sizes: Vec<(usize, f32)> = (0..n_segments)
        .map(|i| {
            let mass: f32 = (0..labels.n_samples()).map(|j| labels.card(j, i)).sum();
            (i, mass)
        })
        .collect();
    seg_sizes.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut best: Option<(f32, QueryEmbed)> = None;
    for &(seg, _) in seg_sizes.iter().take(cfg.tuning_segments.max(1)) {
        let targets: Vec<f32> = (0..labels.n_samples())
            .map(|j| labels.card(j, seg))
            .collect();
        let (embed, err) = tune_query_embedding(
            dim,
            training,
            &targets,
            xq_cache,
            xc_cache,
            &cfg.tuning,
            cfg.seed.wrapping_add(seg as u64),
        );
        if best.as_ref().is_none_or(|(b, _)| err < *b) {
            best = Some((err, embed));
        }
    }
    best.map(|(_, e)| e)
        .unwrap_or_else(|| QueryEmbed::default_cnn(dim, cfg.n_query_segments))
}

/// Phase 1: trains the per-segment local regressors. Independent models —
/// fanned across scoped threads by a work queue keyed on per-segment sample
/// count (largest segments dispatch first, so a straggler never serializes
/// the tail). Each worker owns one `Scratch`; results are bit-identical to
/// sequential training because every segment is trained from its own seed.
#[allow(clippy::too_many_arguments)]
fn train_locals(
    dim: usize,
    n_segments: usize,
    tau_scale: f32,
    radii: &[f32],
    training: &TrainingSet<'_>,
    labels: &SegmentLabels,
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
    query_embed: &QueryEmbed,
    cfg: &GlConfig,
) -> Vec<BranchNet> {
    // Positives dominate a segment's training cost (zeros are capped at 2×
    // the positives), so the positive count is the queue weight.
    let weights: Vec<usize> = (0..n_segments)
        .map(|seg| {
            (0..labels.n_samples())
                .filter(|&j| labels.card(j, seg) > 0.0)
                .count()
                .min(cfg.max_local_samples)
        })
        .collect();
    let threads = cardest_nn::parallel::resolve_threads(cfg.local_train.threads);
    cardest_nn::parallel::parallel_largest_first(&weights, threads, |seg, scratch| {
        train_one_local(
            dim,
            seg,
            tau_scale,
            radii,
            training,
            labels,
            xq_cache,
            xc_cache,
            query_embed,
            cfg,
            scratch,
        )
    })
}

/// Trains one local regressor on `card^{j}[segment]` targets, balancing
/// zero-cardinality samples against positives.
#[allow(clippy::too_many_arguments)]
fn train_one_local(
    dim: usize,
    segment: usize,
    tau_scale: f32,
    radii: &[f32],
    training: &TrainingSet<'_>,
    labels: &SegmentLabels,
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
    query_embed: &QueryEmbed,
    cfg: &GlConfig,
    scratch: &mut Scratch,
) -> BranchNet {
    let seed = cfg.seed ^ (segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_segments = labels.n_segments();

    // Sample selection: all positives, then at most 2× as many zeros,
    // within the overall budget.
    let mut positives: Vec<usize> = Vec::new();
    let mut zeros: Vec<usize> = Vec::new();
    for j in 0..labels.n_samples() {
        if labels.card(j, segment) > 0.0 {
            positives.push(j);
        } else {
            zeros.push(j);
        }
    }
    zeros.shuffle(&mut rng);
    positives.shuffle(&mut rng);
    positives.truncate(cfg.max_local_samples);
    // At most twice the positives, at least a handful so empty segments
    // still see "no match" examples, and never beyond the overall budget.
    let remaining = cfg.max_local_samples.saturating_sub(positives.len());
    let zero_budget = (positives.len() * 2).max(8).min(remaining.max(8));
    zeros.truncate(zero_budget);
    let mut chosen = positives;
    chosen.extend(zeros);
    if chosen.is_empty() {
        // Segment never matches any training query; keep the untrained
        // net (it will predict some constant; the global model will not
        // select this segment).
        chosen.push(rng.gen_range(0..labels.n_samples()));
    }

    let samples = training.samples;
    let train_once = |init_seed: u64, scratch: &mut Scratch| {
        let mut rng = StdRng::seed_from_u64(init_seed);
        let mut net = build_regressor(
            &mut rng,
            dim,
            TAU_DIM,
            2 * n_segments,
            query_embed,
            &cfg.dims,
        );
        let mut build = |idx: &[usize]| {
            let b = idx.len();
            let mut xq = Matrix::zeros(b, dim);
            let mut xt = Matrix::zeros(b, TAU_DIM);
            let mut xc = Matrix::zeros(b, 2 * n_segments);
            let mut cards = Vec::with_capacity(b);
            for (r, &local_i) in idx.iter().enumerate() {
                let j = chosen[local_i];
                let s = &samples[j];
                xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
                xt.row_mut(r)
                    .copy_from_slice(&tau_features(s.tau, tau_scale));
                aux_features_into(&xc_cache[s.query], radii, s.tau, xc.row_mut(r));
                cards.push(labels.card(j, segment));
            }
            (vec![xq, xt, xc], cards)
        };
        let mut tcfg = cfg.local_train;
        tcfg.seed = init_seed;
        // The segment fan-out already owns the cores; nested gradient-shard
        // threads would only fight it (the sharded result is T-independent,
        // so this changes nothing but scheduling).
        tcfg.threads = 1;
        train_branch_regression(&mut net, chosen.len(), &mut build, &tcfg);
        // Fit quality on the positive targets: a local that cannot even
        // reproduce its own training positives would silently destroy the
        // summed estimate, so measure it.
        let mut err = 0.0f64;
        let mut count = 0usize;
        for &j in chosen.iter().take(256) {
            let card = labels.card(j, segment);
            if card <= 0.0 {
                continue;
            }
            let s = &samples[j];
            let xq = Matrix::from_row(&xq_cache[s.query]);
            let xt = Matrix::from_row(&tau_features(s.tau, tau_scale));
            let xc = Matrix::from_row(&aux_features(&xc_cache[s.query], radii, s.tau));
            let out = net.infer(&[&xq, &xt, &xc], scratch);
            let pred = decode_log_card(out.get(0, 0), f32::INFINITY);
            scratch.recycle(out);
            err += cardest_nn::metrics::q_error(pred, card) as f64;
            count += 1;
        }
        let fit = if count == 0 {
            1.0
        } else {
            (err / count as f64) as f32
        };
        (net, fit)
    };
    // Occasionally a local converges to a degenerate solution (predicting
    // ~0 everywhere); restart from a fresh initialization and keep the
    // better fit.
    let (net, fit) = train_once(seed, scratch);
    if fit > 6.0 {
        let (net2, fit2) = train_once(seed ^ 0xDEAD_BEEF, scratch);
        if fit2 < fit {
            return net2;
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;
    use cardest_nn::metrics::ErrorSummary;

    fn tiny(seed: u64) -> (VectorData, SearchWorkload, DatasetSpec) {
        let spec = DatasetSpec {
            n_data: 600,
            n_train_queries: 50,
            n_test_queries: 20,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        (data, w, spec)
    }

    fn fast_cfg(variant: GlVariant) -> GlConfig {
        GlConfig {
            variant,
            n_segments: 6,
            local_train: TrainConfig {
                epochs: 8,
                batch_size: 64,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 10,
                batch_size: 64,
                ..Default::default()
            },
            tuning: TuningConfig::fast(),
            tuning_segments: 1,
            ..Default::default()
        }
    }

    fn mean_qerr(est: &GlEstimator, w: &SearchWorkload) -> f32 {
        let pairs: Vec<(f32, f32)> = w
            .test
            .iter()
            .map(|s| (est.estimate(w.queries.view(s.query), s.tau), s.card))
            .collect();
        ErrorSummary::from_q_errors(&pairs).mean
    }

    #[test]
    fn gl_cnn_trains_estimates_finitely_and_prunes_locals() {
        let (data, w, spec) = tiny(102);
        let training = TrainingSet::new(&w.queries, &w.train);
        let est = GlEstimator::train(
            &data,
            spec.metric,
            &training,
            &w.table,
            &fast_cfg(GlVariant::GlCnn),
        );
        let err = mean_qerr(&est, &w);
        assert!(err.is_finite());
        // Sanity: beats the trivial always-zero estimator.
        let zero: Vec<(f32, f32)> = w.test.iter().map(|s| (0.0, s.card)).collect();
        assert!(err < ErrorSummary::from_q_errors(&zero).mean);
        // And the global model actually routes: across the test set, fewer
        // local evaluations than segments × queries.
        let mut evaluated = 0usize;
        let mut total = 0usize;
        for s in &w.test {
            let (_, n) = est.estimate_with_stats(w.queries.view(s.query), s.tau);
            evaluated += n;
            total += est.n_segments();
        }
        assert!(
            evaluated < total,
            "global model never pruned: {evaluated}/{total} local evaluations"
        );
    }

    #[test]
    fn local_plus_evaluates_every_segment() {
        let (data, w, spec) = tiny(103);
        let training = TrainingSet::new(&w.queries, &w.train);
        let est = GlEstimator::train(
            &data,
            spec.metric,
            &training,
            &w.table,
            &fast_cfg(GlVariant::LocalPlus),
        );
        let (_, n) = est.estimate_with_stats(w.queries.view(0), 0.1);
        assert_eq!(n, est.n_segments());
        assert_eq!(est.name(), "Local+");
    }

    #[test]
    fn variants_report_their_paper_names() {
        assert_eq!(GlVariant::GlPlus.name(), "GL+");
        assert_eq!(GlVariant::GlMlp.name(), "GL-MLP");
        assert_eq!(GlVariant::GlCnn.name(), "GL-CNN");
        assert_eq!(GlVariant::LocalPlus.name(), "Local+");
    }
}
