//! The global discriminative model `G` of §3.3 and Fig. 5.
//!
//! Given a query `x_q`, a threshold `x_τ` and the centroid-distance
//! feature `x_C`, the global model outputs one probability per data
//! segment: the likelihood the segment contains objects within `τ` of the
//! query. It is trained with the cardinality-weighted BCE of §3.3
//! (Algorithm 2): positive labels are up-weighted by `1 + ε^{j}[i]`, where
//! `ε` is the min-max-normalized per-segment cardinality — the "penalty"
//! that keeps the model from missing segments holding most of the answer
//! (ablated in Exp-6/Fig. 9).
//!
//! At estimation time a segment is *selected* when its probability
//! exceeds `sigma` (default 0.5; the discretization lives outside the
//! differentiable model, §5.1 "Global Discriminative Module").

use crate::arch::{
    build_aux_branch, build_global_head, build_query_branch, build_threshold_branch, tau_features,
    ModelDims, QueryEmbed, TAU_DIM,
};
use crate::labels::SegmentLabels;
use cardest_baselines::traits::TrainingSet;
use cardest_nn::net::BranchNet;
use cardest_nn::trainer::{train_global_classifier, TrainConfig, TrainReport};
use cardest_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Global model hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalConfig {
    pub query_embed: QueryEmbed,
    pub dims: ModelDims,
    /// Selection cut-off σ on the output probability.
    pub sigma: f32,
    /// Apply the cardinality penalty (`1 + ε`) to positive labels. `false`
    /// is the "No Penalty" ablation of Exp-6.
    pub penalty: bool,
    /// Threshold normalizer for the expanded τ features.
    pub tau_scale: f32,
    /// Per-segment radii for the overlap features (see
    /// [`crate::gl::aux_features`]).
    pub radii: Vec<f32>,
    pub train: TrainConfig,
}

impl GlobalConfig {
    pub fn new(query_embed: QueryEmbed) -> Self {
        GlobalConfig {
            query_embed,
            dims: ModelDims::default(),
            sigma: 0.5,
            penalty: true,
            tau_scale: 1.0,
            radii: Vec::new(),
            train: TrainConfig::default(),
        }
    }
}

/// The trained global model.
#[derive(Clone, Serialize, Deserialize)]
pub struct GlobalModel {
    net: BranchNet,
    sigma: f32,
    n_segments: usize,
    tau_scale: f32,
    radii: Vec<f32>,
}

impl GlobalModel {
    /// Trains the global model on per-segment selection labels
    /// (Algorithm 2). `xq_cache`/`xc_cache` hold each training *query*'s
    /// dense vector and centroid-distance feature.
    pub fn train(
        training: &TrainingSet<'_>,
        labels: &SegmentLabels,
        xq_cache: &[Vec<f32>],
        xc_cache: &[Vec<f32>],
        cfg: &GlobalConfig,
        seed: u64,
    ) -> (Self, TrainReport) {
        let dim = training.queries.dim();
        let n_segments = labels.n_segments();
        let radii = if cfg.radii.len() == n_segments {
            cfg.radii.clone()
        } else {
            vec![0.0; n_segments]
        };
        let aux_dim = 2 * n_segments;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6_10B);
        let bq = build_query_branch(&mut rng, dim, &cfg.query_embed, cfg.dims.embed_q);
        let bt = build_threshold_branch(&mut rng, TAU_DIM, cfg.dims.embed_t);
        let bc = build_aux_branch(&mut rng, aux_dim, cfg.dims.embed_aux);
        let concat = cfg.dims.embed_q + cfg.dims.embed_t + cfg.dims.embed_aux;
        let head = build_global_head(&mut rng, concat, cfg.dims.hidden, n_segments);
        let mut net = BranchNet::new(vec![bq, bt, bc], vec![dim, TAU_DIM, aux_dim], head);

        let samples = training.samples;
        let mut build = |idx: &[usize]| {
            let b = idx.len();
            let mut xq = Matrix::zeros(b, dim);
            let mut xt = Matrix::zeros(b, TAU_DIM);
            let mut xc = Matrix::zeros(b, aux_dim);
            let mut lab = Matrix::zeros(b, n_segments);
            let mut wts = Matrix::zeros(b, n_segments);
            for (r, &j) in idx.iter().enumerate() {
                let s = &samples[j];
                xq.row_mut(r).copy_from_slice(&xq_cache[s.query]);
                xt.row_mut(r)
                    .copy_from_slice(&tau_features(s.tau, cfg.tau_scale));
                crate::gl::aux_features_into(&xc_cache[s.query], &radii, s.tau, xc.row_mut(r));
                let weights = if cfg.penalty {
                    labels.minmax_weights(j)
                } else {
                    vec![0.0; n_segments]
                };
                for (i, &w) in weights.iter().enumerate().take(n_segments) {
                    lab.set(r, i, if labels.selected(j, i) { 1.0 } else { 0.0 });
                    wts.set(r, i, w);
                }
            }
            (vec![xq, xt, xc], lab, wts)
        };
        let report = train_global_classifier(&mut net, samples.len(), &mut build, &cfg.train);
        (
            GlobalModel {
                net,
                sigma: cfg.sigma,
                n_segments,
                tau_scale: cfg.tau_scale,
                radii,
            },
            report,
        )
    }

    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// The selection cut-off σ.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Per-segment selection probabilities for one query. Immutable — the
    /// forward pass runs through the shared-model inference path.
    pub fn probabilities(&self, xq: &[f32], tau: f32, xc: &[f32]) -> Vec<f32> {
        let q = Matrix::from_row(xq);
        let t = Matrix::from_row(&tau_features(tau, self.tau_scale));
        let c = Matrix::from_row(&crate::gl::aux_features(xc, &self.radii, tau));
        cardest_nn::scratch::with_thread_scratch(|scratch| {
            let p = self.net.infer(&[&q, &t, &c], scratch);
            let out = p.as_slice().to_vec();
            scratch.recycle(p);
            out
        })
    }

    /// Per-segment probabilities for a whole query batch in one forward
    /// pass: row `r` of the result holds query `r`'s probabilities.
    /// `xq` is `[B, dim]`, `xc` is `[B, n_segments]` centroid distances.
    pub fn probabilities_batch(&self, xq: &Matrix, taus: &[f32], xc: &Matrix) -> Matrix {
        assert_eq!(xq.rows(), taus.len(), "one τ per query required");
        let mut t = Matrix::zeros(taus.len(), TAU_DIM);
        let mut aux = Matrix::zeros(taus.len(), 2 * self.n_segments);
        for (r, &tau) in taus.iter().enumerate() {
            t.row_mut(r)
                .copy_from_slice(&tau_features(tau, self.tau_scale));
            crate::gl::aux_features_into(xc.row(r), &self.radii, tau, aux.row_mut(r));
        }
        cardest_nn::scratch::with_thread_scratch(|scratch| {
            let p = self.net.infer(&[xq, &t, &aux], scratch);
            // Detach from the pool: callers keep the matrix.
            let out = p.clone();
            scratch.recycle(p);
            out
        })
    }

    /// The discretized selection (the "Global Discriminative Module"):
    /// segments whose probability exceeds σ.
    pub fn select(&self, xq: &[f32], tau: f32, xc: &[f32]) -> Vec<bool> {
        self.probabilities(xq, tau, xc)
            .iter()
            .map(|&p| p > self.sigma)
            .collect()
    }

    /// Batched selection matrix `M` for a join query set (§4): row `r` is
    /// the indicator vector of query `r`.
    pub fn select_batch(&self, xq: &Matrix, taus: &[f32], xc: &Matrix) -> Vec<Vec<bool>> {
        let probs = self.probabilities_batch(xq, taus, xc);
        (0..probs.rows())
            .map(|r| probs.row(r).iter().map(|&p| p > self.sigma).collect())
            .collect()
    }

    pub fn param_bytes(&self) -> usize {
        self.net.param_bytes()
    }

    pub fn net_mut(&mut self) -> &mut BranchNet {
        &mut self.net
    }
}

/// The *missing rate* of Fig. 9/Exp-6: the fraction of true cardinality
/// that falls in segments the global model did **not** select, averaged
/// over samples with non-zero cardinality.
pub fn missing_rate(
    global: &GlobalModel,
    training: &TrainingSet<'_>,
    labels: &SegmentLabels,
    xq_cache: &[Vec<f32>],
    xc_cache: &[Vec<f32>],
) -> f32 {
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for (j, s) in training.samples.iter().enumerate() {
        let row = labels.row(j);
        let card: f32 = row.iter().sum();
        if card <= 0.0 {
            continue;
        }
        let selected = global.select(&xq_cache[s.query], s.tau, &xc_cache[s.query]);
        let missed: f32 = row
            .iter()
            .zip(&selected)
            .filter(|(_, &sel)| !sel)
            .map(|(&c, _)| c)
            .sum();
        total += (missed / card) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        (total / counted as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardest_cluster::segmentation::{Segmentation, SegmentationConfig, SegmentationMethod};
    use cardest_data::paper::{DatasetSpec, PaperDataset};
    use cardest_data::workload::SearchWorkload;

    struct Fixture {
        w: SearchWorkload,
        labels: SegmentLabels,
        xq: Vec<Vec<f32>>,
        xc: Vec<Vec<f32>>,
    }

    fn fixture(seed: u64) -> Fixture {
        let spec = DatasetSpec {
            n_data: 600,
            n_train_queries: 60,
            n_test_queries: 20,
            ..PaperDataset::ImageNet.spec()
        };
        let data = spec.generate(seed);
        let w = SearchWorkload::build(&data, &spec, seed);
        let seg = Segmentation::fit(
            &data,
            spec.metric,
            &SegmentationConfig {
                n_segments: 6,
                pca_rank: 4,
                pca_iters: 6,
                method: SegmentationMethod::PcaKMeans,
                seed,
            },
        );
        let labels = SegmentLabels::compute(&w.table, &w.train, &seg);
        let mut xq = Vec::new();
        let mut xc = Vec::new();
        for q in 0..w.queries.len() {
            let mut buf = Vec::new();
            w.queries.view(q).write_dense(&mut buf);
            xq.push(buf);
            xc.push(seg.centroid_distances(w.queries.view(q)));
        }
        Fixture { w, labels, xq, xc }
    }

    fn train_with(f: &Fixture, penalty: bool, seed: u64) -> GlobalModel {
        let training = TrainingSet::new(&f.w.queries, &f.w.train);
        let cfg = GlobalConfig {
            penalty,
            train: TrainConfig {
                epochs: 18,
                ..Default::default()
            },
            ..GlobalConfig::new(QueryEmbed::Mlp { hidden: 24 })
        };
        GlobalModel::train(&training, &f.labels, &f.xq, &f.xc, &cfg, seed).0
    }

    #[test]
    fn trained_global_model_beats_select_all_precision_with_low_missing() {
        let f = fixture(91);
        let g = train_with(&f, true, 91);
        let training = TrainingSet::new(&f.w.queries, &f.w.train);
        let miss = missing_rate(&g, &training, &f.labels, &f.xq, &f.xc);
        assert!(miss < 0.5, "missing rate {miss} too high");
        // The selection must actually prune something on average.
        let mut selected = 0usize;
        let mut total = 0usize;
        for s in f.w.train.iter().take(100) {
            let sel = g.select(&f.xq[s.query], s.tau, &f.xc[s.query]);
            selected += sel.iter().filter(|&&b| b).count();
            total += sel.len();
        }
        assert!(
            selected < total,
            "global model selects every segment for every query"
        );
    }

    #[test]
    fn probabilities_are_valid_and_batch_matches_single() {
        let f = fixture(92);
        let g = train_with(&f, true, 92);
        let s = &f.w.train[3];
        let probs = g.probabilities(&f.xq[s.query], s.tau, &f.xc[s.query]);
        assert_eq!(probs.len(), g.n_segments());
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        // Batch API agrees with the single-query API.
        let xq = Matrix::from_row(&f.xq[s.query]);
        let xc = Matrix::from_row(&f.xc[s.query]);
        let batch = g.select_batch(&xq, &[s.tau], &xc);
        let single = g.select(&f.xq[s.query], s.tau, &f.xc[s.query]);
        assert_eq!(batch[0], single);
    }

    #[test]
    fn penalty_reduces_missing_rate() {
        // Exp-6: adding the penalty reduces cardinality missing. Averaged
        // over the training queries this should hold at our scale too;
        // allow equality for robustness on a tiny fixture.
        let f = fixture(93);
        let with = train_with(&f, true, 93);
        let without = train_with(&f, false, 93);
        let training = TrainingSet::new(&f.w.queries, &f.w.train);
        let m_with = missing_rate(&with, &training, &f.labels, &f.xq, &f.xc);
        let m_without = missing_rate(&without, &training, &f.labels, &f.xq, &f.xc);
        assert!(
            m_with <= m_without * 1.2 + 0.02,
            "penalty should not hurt missing rate: with={m_with} without={m_without}"
        );
    }
}
