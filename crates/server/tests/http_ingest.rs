//! End-to-end `POST /insert` battery (ISSUE 7 tentpole, serving side):
//! durable inserts over real sockets, validation rejected before the WAL,
//! read-only servers answering 404, and a manufactured drift burst that
//! must end in a background fine-tune hot-swapping the served model.

use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_core::drift::DriftConfig;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorView;
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use cardest_server::client::HttpClient;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::QueryRepr;
use cardest_server::registry::SharedFallback;
use cardest_server::{
    IngestService, ModelRegistry, RegistryConfig, Server, ServerConfig, ServerHandle,
};
use cardest_store::{DurableIngest, StoreConfig};
use serde::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_DATA: usize = 400;
const DIM: usize = 16;

fn tiny_spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: DIM,
        n_data: N_DATA,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

struct IngestFixture {
    dir: PathBuf,
    handle: Option<ServerHandle>,
    /// Query components of the quietest held-out probe — the sharpest
    /// drift burst one can manufacture for the fixed probe set.
    burst: Vec<f32>,
}

impl IngestFixture {
    fn start(tag: &str, check_every: usize) -> Self {
        let dir = std::env::temp_dir().join(format!("cardest-ingest-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let data = spec.generate(77);
        let w = SearchWorkload::build(&data, &spec, 77);
        let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
            &data,
            spec.metric,
            0.05,
            77,
            "Sampling 5%",
        ));
        let cfg = GlConfig {
            variant: GlVariant::GlCnn,
            n_segments: 4,
            local_train: TrainConfig {
                epochs: 3,
                batch_size: 64,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 4,
                batch_size: 64,
                ..Default::default()
            },
            tuning: TuningConfig::fast(),
            tuning_segments: 1,
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
        let upd = UpdatableGl::new(
            data,
            spec.metric,
            gl,
            w.queries,
            w.train,
            w.test,
            &w.table,
            UpdateConfig::default(),
        );
        let quietest = upd
            .test_samples()
            .iter()
            .min_by(|a, b| a.card.total_cmp(&b.card))
            .unwrap();
        let burst = match upd.queries().view(quietest.query) {
            VectorView::Dense(row) => row.to_vec(),
            other => panic!("tiny spec is dense, got {other:?}"),
        };

        let model_path = dir.join("model.cardest");
        upd.gl().save_artifact(&model_path).unwrap();
        let store = DurableIngest::create(
            &dir.join("store"),
            upd,
            StoreConfig {
                snapshot_every: 64,
                sync_writes: false,
                retain_wal: false,
                rotate_bytes: 0,
            },
        )
        .unwrap();
        let svc = IngestService::new(
            store,
            DriftConfig {
                check_every,
                ..Default::default()
            },
            dir.join("model_tuned.cardest"),
        );
        let registry = ModelRegistry::new(
            RegistryConfig {
                n_data: N_DATA,
                dim: DIM,
                repr: QueryRepr::Dense,
                monotone: true,
            },
            fallback,
            &model_path,
        )
        .unwrap();
        let handle = Server::start_with_ingest(
            ServerConfig {
                workers: 3,
                coalesce: CoalesceConfig {
                    window: Duration::from_micros(200),
                    ..CoalesceConfig::default()
                },
                ..ServerConfig::default()
            },
            Arc::new(registry),
            svc,
        )
        .unwrap();
        IngestFixture {
            dir,
            handle: Some(handle),
            burst,
        }
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(self.handle.as_ref().unwrap().addr()).unwrap()
    }

    fn insert_body(&self, point: &[f32]) -> String {
        let comps: Vec<String> = point.iter().map(|v| format!("{v}")).collect();
        format!("{{\"point\":[{}]}}", comps.join(","))
    }

    fn estimate_body(&self, tau: f32) -> String {
        let comps: Vec<String> = self.burst.iter().map(|v| format!("{v}")).collect();
        format!("{{\"query\":[{}],\"tau\":{tau}}}", comps.join(","))
    }
}

impl Drop for IngestFixture {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => {
            &m.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
                .1
        }
        other => panic!("expected map, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

#[test]
fn insert_round_trip_validation_and_stats() {
    // check_every larger than the insert count: this test exercises the
    // durable write path, not the drift trigger.
    let fx = IngestFixture::start("roundtrip", 1024);
    let mut c = fx.client();

    // First insert lands at the end of the dataset with WAL seq 1.
    let r = c.post_json("/insert", &fx.insert_body(&fx.burst)).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(&v, "seq")), 1);
    assert_eq!(as_u64(field(&v, "index")), N_DATA as u64);
    assert!(as_u64(field(&v, "segment")) < 4);
    assert_eq!(field(&v, "finetune_scheduled"), &Value::Bool(false));

    // Sequence numbers and row indices advance together.
    for k in 1..4u64 {
        let r = c.post_json("/insert", &fx.insert_body(&fx.burst)).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let v: Value = serde_json::from_str(&r.text()).unwrap();
        assert_eq!(as_u64(field(&v, "seq")), 1 + k);
        assert_eq!(as_u64(field(&v, "index")), N_DATA as u64 + k);
    }

    // Validation rejects before the WAL: a bad point must not consume a
    // sequence number.
    let wrong_dim: Vec<f32> = vec![0.1; DIM + 1];
    let r = c.post_json("/insert", &fx.insert_body(&wrong_dim)).unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    // `1e999` overflows f32 to infinity in the JSON layer; the store's
    // validator must reject it before anything reaches the WAL.
    let comps: Vec<String> = fx.burst.iter().map(|v| format!("{v}")).collect();
    let mut comps_inf = comps;
    comps_inf[3] = "1e999".to_string();
    let body_inf = format!("{{\"point\":[{}]}}", comps_inf.join(","));
    let r = c.post_json("/insert", &body_inf).unwrap();
    assert_eq!(r.status, 400, "{}", r.text());
    assert!(r.text().contains("finite"), "{}", r.text());
    for bad in ["", "not json", "{\"query\":[0.1]}"] {
        let mut c_bad = fx.client();
        let r = c_bad.post_json("/insert", bad).unwrap();
        assert_eq!(r.status, 400, "body {bad:?} → {}", r.text());
    }
    let r = c.get("/insert").unwrap();
    assert_eq!(r.status, 405);

    // The rejected points really never reached the WAL.
    let r = c.post_json("/insert", &fx.insert_body(&fx.burst)).unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(&v, "seq")), 5, "rejects consumed a seq");

    // Estimates keep working against the grown dataset.
    let r = c.post_json("/estimate", &fx.estimate_body(0.3)).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    // Stats reflect the ingestion state.
    let r = c.get("/stats").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    let ing = field(&v, "ingest");
    assert_eq!(field(ing, "enabled"), &Value::Bool(true));
    assert_eq!(as_u64(field(ing, "inserts")), 5);
    assert_eq!(as_u64(field(ing, "last_seq")), 5);
    assert!(as_u64(field(ing, "wal_bytes")) > 0);
    assert_eq!(as_u64(field(ing, "live_rows")), N_DATA as u64 + 5);
    let insert_route = field(field(&v, "routes"), "insert");
    assert!(as_u64(field(insert_route, "count")) >= 5);

    // The registry's next-generation clamp tracked the growth.
    assert_eq!(fx.handle.as_ref().unwrap().registry().n_data(), N_DATA + 5);
}

#[test]
fn read_only_server_answers_insert_with_404() {
    // A registry-only server (no store behind it) must refuse mutation
    // without disturbing the rest of the API.
    let fx = IngestFixture::start("readonly-donor", 1024);
    let registry = Arc::clone(fx.handle.as_ref().unwrap().registry());
    drop(fx);
    let handle = Server::start(
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let mut c = HttpClient::connect(handle.addr()).unwrap();
    let r = c.post_json("/insert", "{\"point\":[0.0]}").unwrap();
    assert_eq!(r.status, 404, "{}", r.text());
    let r = c.get("/stats").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(
        field(field(&v, "ingest"), "enabled"),
        &Value::Bool(false),
        "{}",
        r.text()
    );
    let r = c.get("/health").unwrap();
    assert_eq!(r.status, 200);
    handle.shutdown();
}

#[test]
fn drift_burst_finetunes_in_background_and_hot_swaps() {
    let fx = IngestFixture::start("drift", 8);
    let mut c = fx.client();

    // A burst of points exactly on the quietest probe query: its true
    // cardinality jumps while the served model answers from stale labels,
    // so the drift monitor must fire and schedule a fine-tune.
    let mut scheduled = false;
    for _ in 0..48 {
        let r = c.post_json("/insert", &fx.insert_body(&fx.burst)).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let v: Value = serde_json::from_str(&r.text()).unwrap();
        if field(&v, "finetune_scheduled") == &Value::Bool(true) {
            scheduled = true;
            break;
        }
    }
    assert!(scheduled, "48-point burst never scheduled a fine-tune");

    // The background worker fine-tunes, snapshots, and hot-swaps; watch
    // the model version move without blocking any request.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut version = 1;
    while Instant::now() < deadline {
        let r = c.get("/health").unwrap();
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(&r.text()).unwrap();
        version = as_u64(field(&v, "model_version"));
        if version >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(version >= 2, "background fine-tune never swapped the model");

    // Serving never stopped: estimates still answer on the new model.
    let r = c.post_json("/estimate", &fx.estimate_body(0.3)).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    let r = c.get("/stats").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    let ing = field(&v, "ingest");
    assert!(as_u64(field(ing, "drift_triggers")) >= 1, "{}", r.text());
    assert!(as_u64(field(ing, "finetunes_ok")) >= 1, "{}", r.text());
    assert_eq!(as_u64(field(ing, "finetunes_failed")), 0, "{}", r.text());
}
