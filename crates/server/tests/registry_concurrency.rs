//! Hot-reload registry under concurrent load (ISSUE 6 satellite 3).
//!
//! The contract under test: N threads serving while another thread
//! repeatedly reloads must never observe a torn estimator, drop a
//! request, or miscount `GuardStats`; a corrupt artifact reload is
//! rejected with the old model left serving.

use cardest_baselines::mlp::{MlpConfig, MlpEstimator};
use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorData;
use cardest_data::workload::SearchWorkload;
use cardest_nn::artifact::ArtifactError;
use cardest_server::model::{repr_of, OwnedQuery, QueryRepr};
use cardest_server::registry::{ReloadError, SharedFallback};
use cardest_server::{ModelRegistry, RegistryConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tiny dense spec: fast to generate, label, and train on.
fn tiny_spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 16,
        n_data: 300,
        n_train_queries: 24,
        n_test_queries: 6,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

struct Fixture {
    dir: PathBuf,
    data: VectorData,
    spec: DatasetSpec,
    /// Two healthy artifacts (different training seeds) to swap between.
    artifact_a: PathBuf,
    artifact_b: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cardest-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let data = spec.generate(7);
        let workload = SearchWorkload::build(&data, &spec, 7);
        let training = TrainingSet::new(&workload.queries, &workload.train);
        let mut cfg = MlpConfig::default();
        cfg.train.epochs = 3;
        let artifact_a = dir.join("model_a.cardest");
        let artifact_b = dir.join("model_b.cardest");
        for (path, seed) in [(&artifact_a, 1u64), (&artifact_b, 2u64)] {
            let (model, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, seed);
            model.save_artifact(path).unwrap();
        }
        Fixture {
            dir,
            data,
            spec,
            artifact_a,
            artifact_b,
        }
    }

    fn registry(&self) -> ModelRegistry {
        let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
            &self.data,
            self.spec.metric,
            0.05,
            7,
            "Sampling 5%",
        ));
        ModelRegistry::new(
            RegistryConfig {
                n_data: self.data.len(),
                dim: self.data.dim(),
                repr: repr_of(&self.data),
                monotone: true,
            },
            fallback,
            &self.artifact_a,
        )
        .unwrap()
    }

    /// A valid query taken from the dataset itself.
    fn query(&self, i: usize) -> OwnedQuery {
        match self.data.view(i % self.data.len()) {
            cardest_data::vector::VectorView::Dense(row) => {
                OwnedQuery::from_components(row, QueryRepr::Dense).unwrap()
            }
            other => panic!("tiny spec is dense, got {other:?}"),
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn hot_reload_under_load_never_drops_or_tears_a_request() {
    let fx = Fixture::new("load");
    let registry = Arc::new(fx.registry());
    let n_data = fx.data.len() as f32;
    const THREADS: usize = 4;
    const PER_THREAD: usize = 300;

    let stop_reloading = Arc::new(AtomicBool::new(false));
    let reloader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop_reloading);
        let (a, b) = (fx.artifact_a.clone(), fx.artifact_b.clone());
        std::thread::spawn(move || {
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let path = if flips % 2 == 0 { &b } else { &a };
                registry.reload(path).unwrap();
                flips += 1;
                std::thread::yield_now();
            }
            flips
        })
    };

    let servers: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let queries: Vec<OwnedQuery> = (0..PER_THREAD).map(|i| fx.query(t * 31 + i)).collect();
            std::thread::spawn(move || {
                let mut last_version = 0u64;
                for q in &queries {
                    // Pin a generation exactly like a request handler does.
                    let model = registry.active();
                    assert!(
                        model.version >= last_version,
                        "active generation went backwards: {} after {}",
                        model.version,
                        last_version
                    );
                    last_version = model.version;
                    let est = model
                        .guarded
                        .serve(q.view(), 0.3)
                        .expect("valid query must never be dropped mid-reload");
                    assert!(
                        est.is_finite() && est >= 0.0 && est <= n_data,
                        "torn/garbage estimate {est} from generation {}",
                        model.version
                    );
                }
            })
        })
        .collect();

    for s in servers {
        s.join().unwrap();
    }
    stop_reloading.store(true, Ordering::Relaxed);
    let flips = reloader.join().unwrap();
    assert!(flips > 0, "reloader thread never got to run");

    // Not one increment lost across however many swaps happened.
    let stats = registry.stats();
    assert_eq!(
        stats.served,
        THREADS * PER_THREAD,
        "guard counters miscounted across {flips} reloads: {stats:?}"
    );
    assert_eq!(stats.rejected, 0, "{stats:?}");
    assert_eq!(registry.reload_stats().ok, flips);
    assert_eq!(registry.reload_stats().rejected, 0);
}

#[test]
fn in_flight_requests_finish_on_the_generation_they_started_with() {
    let fx = Fixture::new("inflight");
    let registry = fx.registry();
    let pinned = registry.active();
    assert_eq!(pinned.version, 1);

    // Two swaps land while the "request" is in flight.
    let v2 = registry.reload(&fx.artifact_b).unwrap();
    let v3 = registry.reload(&fx.artifact_a).unwrap();
    assert_eq!((v2, v3), (2, 3));
    assert_eq!(registry.active().version, 3);

    // The pinned generation still serves, and its counters still land in
    // the cumulative total.
    let before = registry.stats().served;
    pinned.guarded.serve(fx.query(0).view(), 0.3).unwrap();
    assert_eq!(registry.stats().served, before + 1);

    // Once the last reference drops, the next reload sweeps every retired
    // generation (nothing pins them any more) without losing a counter.
    drop(pinned);
    let total_before_sweep = registry.stats().served;
    registry.reload(&fx.artifact_b).unwrap();
    assert_eq!(registry.stats().served, total_before_sweep);
    assert_eq!(
        registry.retired_generations(),
        0,
        "no in-flight references → the sweep frees every retired generation"
    );
}

#[test]
fn corrupt_artifact_reload_is_rejected_and_old_model_keeps_serving() {
    let fx = Fixture::new("corrupt");
    let registry = fx.registry();
    let v1 = registry.active().version;

    // Flip one payload bit — checksum must catch it.
    let mut bytes = std::fs::read(&fx.artifact_b).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let corrupt = fx.dir.join("corrupt.cardest");
    std::fs::write(&corrupt, &bytes).unwrap();

    match registry.reload(&corrupt) {
        Err(ReloadError::Artifact(ArtifactError::ChecksumMismatch { .. })) => {}
        other => panic!("expected a checksum rejection, got {other:?}"),
    }

    // Old model untouched and still serving.
    assert_eq!(registry.active().version, v1);
    registry
        .active()
        .guarded
        .serve(fx.query(3).view(), 0.3)
        .unwrap();
    assert_eq!(registry.reload_stats().rejected, 1);
    assert_eq!(registry.reload_stats().ok, 0);

    // A truncated file is a typed rejection too, not a panic.
    let cut = fx.dir.join("cut.cardest");
    let full = std::fs::read(&fx.artifact_b).unwrap();
    std::fs::write(&cut, &full[..10]).unwrap();
    match registry.reload(&cut) {
        Err(ReloadError::Artifact(ArtifactError::Truncated { .. })) => {}
        other => panic!("expected a truncation rejection, got {other:?}"),
    }
    assert_eq!(registry.active().version, v1);
    assert_eq!(registry.reload_stats().rejected, 2);

    // And a healthy artifact still swaps in afterwards.
    let v2 = registry.reload(&fx.artifact_b).unwrap();
    assert_eq!(v2, v1 + 1);
    assert_eq!(registry.active().version, v2);
}

#[test]
fn dimension_mismatch_is_rejected_before_the_swap() {
    let fx = Fixture::new("dim");
    // Train a model on an 8-d dataset; the 16-d registry must refuse it.
    let mut small = tiny_spec();
    small.dim = 8;
    let small_data = small.generate(9);
    let workload = SearchWorkload::build(&small_data, &small, 9);
    let training = TrainingSet::new(&workload.queries, &workload.train);
    let mut cfg = MlpConfig::default();
    cfg.train.epochs = 2;
    let (model, _) = MlpEstimator::train(&small_data, small.metric, &training, &cfg, 9);
    let wrong = fx.dir.join("wrong_dim.cardest");
    model.save_artifact(&wrong).unwrap();

    let registry = fx.registry();
    match registry.reload(&wrong) {
        Err(ReloadError::DimensionMismatch {
            model: 8,
            serving: 16,
        }) => {}
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    assert_eq!(registry.active().version, 1);
}

#[test]
fn concurrent_reloads_serialize_into_distinct_versions() {
    let fx = Fixture::new("races");
    let registry = Arc::new(fx.registry());
    const THREADS: usize = 6;
    const RELOADS: usize = 4;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            let path = if t % 2 == 0 {
                fx.artifact_a.clone()
            } else {
                fx.artifact_b.clone()
            };
            std::thread::spawn(move || {
                (0..RELOADS)
                    .map(|_| registry.reload(&path).unwrap())
                    .collect::<Vec<u64>>()
            })
        })
        .collect();

    let mut versions: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    versions.sort_unstable();
    let expected: Vec<u64> = (2..2 + (THREADS * RELOADS) as u64).collect();
    assert_eq!(
        versions, expected,
        "racing reloads must never share or skip a version"
    );
    assert_eq!(registry.reload_stats().ok, (THREADS * RELOADS) as u64);
    assert_eq!(registry.active().version, versions[versions.len() - 1]);
}

#[test]
fn registry_is_shareable_across_threads() {
    fn assert_send_sync<T: Send + Sync>(_: &T) {}
    let fx = Fixture::new("sync");
    assert_send_sync(&fx.registry());
}
