//! End-to-end smoke battery over real TCP sockets (ISSUE 6 satellite 5).
//!
//! One in-process server instance serves the whole battery: estimate,
//! batch, malformed-body 400, admin reload (healthy swap and corrupt
//! rejection), and stats. A separate test exercises the `cardest-serve`
//! binary itself: it must announce `LISTENING <addr>` on stdout and
//! answer health checks. Every blocking read carries a deadline (the
//! client's 30 s socket timeout), so a wedged server fails instead of
//! hanging CI.

use cardest_baselines::mlp::{MlpConfig, MlpEstimator};
use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::workload::SearchWorkload;
use cardest_server::client::HttpClient;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::repr_of;
use cardest_server::registry::SharedFallback;
use cardest_server::{ModelRegistry, RegistryConfig, Server, ServerConfig, ServerHandle};
use serde::Value;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

fn tiny_spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: 16,
        n_data: 300,
        n_train_queries: 24,
        n_test_queries: 6,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

struct ServerFixture {
    dir: PathBuf,
    handle: Option<ServerHandle>,
    artifact_a: PathBuf,
    artifact_b: PathBuf,
    query: Vec<f32>,
}

impl ServerFixture {
    fn start(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cardest-smoke-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let data = spec.generate(11);
        let workload = SearchWorkload::build(&data, &spec, 11);
        let training = TrainingSet::new(&workload.queries, &workload.train);
        let mut cfg = MlpConfig::default();
        cfg.train.epochs = 3;
        let artifact_a = dir.join("model_a.cardest");
        let artifact_b = dir.join("model_b.cardest");
        for (path, seed) in [(&artifact_a, 1u64), (&artifact_b, 2u64)] {
            let (model, _) = MlpEstimator::train(&data, spec.metric, &training, &cfg, seed);
            model.save_artifact(path).unwrap();
        }
        let query = match data.view(0) {
            cardest_data::vector::VectorView::Dense(row) => row.to_vec(),
            other => panic!("tiny spec is dense, got {other:?}"),
        };
        let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
            &data,
            spec.metric,
            0.05,
            11,
            "Sampling 5%",
        ));
        let registry = ModelRegistry::new(
            RegistryConfig {
                n_data: data.len(),
                dim: data.dim(),
                repr: repr_of(&data),
                monotone: true,
            },
            fallback,
            &artifact_a,
        )
        .unwrap();
        let handle = Server::start(
            ServerConfig {
                workers: 3,
                coalesce: CoalesceConfig {
                    window: Duration::from_micros(200),
                    ..CoalesceConfig::default()
                },
                ..ServerConfig::default()
            },
            Arc::new(registry),
        )
        .unwrap();
        ServerFixture {
            dir,
            handle: Some(handle),
            artifact_a,
            artifact_b,
            query,
        }
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(self.handle.as_ref().unwrap().addr()).unwrap()
    }

    fn estimate_body(&self, tau: f32) -> String {
        let comps: Vec<String> = self.query.iter().map(|v| format!("{v}")).collect();
        format!("{{\"query\":[{}],\"tau\":{tau}}}", comps.join(","))
    }
}

impl Drop for ServerFixture {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => {
            &m.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
                .1
        }
        other => panic!("expected map, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::UInt(u) => *u as f64,
        Value::Int(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn smoke_battery_estimate_batch_errors_reload_stats() {
    let fx = ServerFixture::start("battery");
    let mut c = fx.client();

    // --- health ---
    let r = c.get("/health").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(field(&v, "status"), &Value::Str("ok".to_string()));
    assert_eq!(as_u64(field(&v, "model_version")), 1);
    assert_eq!(field(&v, "kind"), &Value::Str("cardest.mlp".to_string()));

    // --- single estimate (coalesced path) ---
    let r = c.post_json("/estimate", &fx.estimate_body(0.3)).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    let est = as_f64(field(&v, "estimate"));
    assert!(est.is_finite() && (0.0..=300.0).contains(&est), "{est}");
    assert_eq!(as_u64(field(&v, "model_version")), 1);

    // --- batch estimate ---
    let entry = fx.estimate_body(0.3);
    let body = format!(
        "{{\"queries\":[{entry},{},{}]}}",
        fx.estimate_body(0.1),
        fx.estimate_body(0.5)
    );
    let r = c.post_json("/estimate_batch", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    let results = match field(&v, "results") {
        Value::Seq(s) => s.clone(),
        other => panic!("expected seq, got {other:?}"),
    };
    assert_eq!(results.len(), 3);
    let mut estimates: Vec<f64> = results
        .iter()
        .map(|e| as_f64(field(e, "estimate")))
        .collect();
    // τ 0.1 ≤ τ 0.3 ≤ τ 0.5 after the guard's monotone repair.
    estimates.swap(0, 1);
    assert!(
        estimates.windows(2).all(|w| w[0] <= w[1]),
        "monotone repair violated: {estimates:?}"
    );

    // --- malformed bodies → 400, never a dropped connection ---
    for bad in [
        "not json at all",
        "{\"tau\":0.3}",                    // missing query
        "{\"query\":[0.1]}",                // missing tau
        "{\"query\":\"nope\",\"tau\":0.3}", // wrong type
        "",                                 // empty body
    ] {
        let mut c_bad = fx.client();
        let r = c_bad.post_json("/estimate", bad).unwrap();
        assert_eq!(r.status, 400, "body {bad:?} → {}", r.text());
        assert!(r.text().contains("error"), "{}", r.text());
    }

    // Invalid query semantics (negative τ) → 400 with the typed message.
    let mut c2 = fx.client();
    let r = c2.post_json("/estimate", &fx.estimate_body(-1.0)).unwrap();
    assert_eq!(r.status, 400, "{}", r.text());

    // --- routing errors ---
    let r = c.get("/no/such/route").unwrap();
    assert_eq!(r.status, 404);
    let r = c.get("/estimate").unwrap();
    assert_eq!(r.status, 405, "GET on a POST route");

    // --- reload: healthy swap ---
    let body = format!("{{\"path\":\"{}\"}}", fx.artifact_b.display());
    let r = c.post_json("/admin/reload", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(&v, "model_version")), 2);
    let r = c.get("/health").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(&v, "model_version")), 2);

    // --- reload: corrupt artifact → 409, old model stays live ---
    let mut bytes = std::fs::read(&fx.artifact_a).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let corrupt = fx.dir.join("corrupt.cardest");
    std::fs::write(&corrupt, &bytes).unwrap();
    let body = format!("{{\"path\":\"{}\"}}", corrupt.display());
    let r = c.post_json("/admin/reload", &body).unwrap();
    assert_eq!(r.status, 409, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(field(&v, "reloaded"), &Value::Bool(false));
    assert!(as_f64(field(&v, "model_version")) == 2.0, "{}", r.text());
    let r = c.post_json("/estimate", &fx.estimate_body(0.3)).unwrap();
    assert_eq!(r.status, 200, "old model must keep serving: {}", r.text());

    // --- stats reflect everything above ---
    let r = c.get("/stats").unwrap();
    assert_eq!(r.status, 200);
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(field(&v, "reloads"), "ok")), 1);
    assert_eq!(as_u64(field(field(&v, "reloads"), "rejected")), 1);
    assert!(as_u64(field(field(&v, "guard"), "served")) >= 5);
    assert!(as_u64(field(field(&v, "http"), "400")) >= 6);
    let est_route = field(field(&v, "routes"), "estimate");
    assert!(as_u64(field(est_route, "count")) >= 2);
    assert!(as_u64(field(est_route, "p99_us")) > 0);
}

#[test]
fn hot_reload_under_concurrent_http_load_fails_zero_requests() {
    let fx = ServerFixture::start("reload-load");
    let addr = fx.handle.as_ref().unwrap().addr();
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 60;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let body = fx.estimate_body(0.3);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).unwrap();
                let mut ok = 0usize;
                for _ in 0..PER_CLIENT {
                    let r = c.post_json("/estimate", &body).unwrap();
                    assert_eq!(r.status, 200, "request failed mid-reload: {}", r.text());
                    ok += 1;
                }
                ok
            })
        })
        .collect();

    // Meanwhile: hammer reloads, alternating healthy artifacts with a
    // corrupt one that must be rejected without disturbing traffic.
    let mut bytes = std::fs::read(&fx.artifact_b).unwrap();
    let len = bytes.len();
    bytes[len - 3] ^= 0x02;
    let corrupt = fx.dir.join("corrupt.cardest");
    std::fs::write(&corrupt, &bytes).unwrap();
    let mut admin = fx.client();
    let mut swaps = 0u64;
    for i in 0..30 {
        let (path, want) = match i % 3 {
            0 => (&fx.artifact_b, 200),
            1 => (&fx.artifact_a, 200),
            _ => (&corrupt, 409),
        };
        let body = format!("{{\"path\":\"{}\"}}", path.display());
        let r = admin.post_json("/admin/reload", &body).unwrap();
        assert_eq!(r.status, want, "{}", r.text());
        if want == 200 {
            swaps += 1;
        }
    }

    let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(total, CLIENTS * PER_CLIENT, "a request was dropped");

    // The exactness guarantee, observed end-to-end over HTTP.
    let r = admin.get("/stats").unwrap();
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(
        as_u64(field(field(&v, "guard"), "served")),
        (CLIENTS * PER_CLIENT) as u64,
        "guard counters lost increments across {swaps} swaps"
    );
    assert_eq!(as_u64(field(field(&v, "reloads"), "ok")), swaps);
    assert_eq!(as_u64(field(field(&v, "reloads"), "rejected")), 10);
}

struct KillOnDrop(Child);
impl Drop for KillOnDrop {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

#[test]
fn serve_binary_announces_listening_and_answers() {
    let dir = std::env::temp_dir().join(format!("cardest-serve-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let child = Command::new(env!("CARGO_BIN_EXE_cardest-serve"))
        .args([
            "--dataset",
            "GloVe300",
            "--port",
            "0",
            "--n-data",
            "400",
            "--train-queries",
            "12",
            "--train-epochs",
            "2",
            "--workers",
            "2",
        ])
        .args(["--model-dir".as_ref(), dir.join("models").as_os_str()])
        .args(["--cache-dir".as_ref(), dir.join("cache").as_os_str()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut child = KillOnDrop(child);

    // Startup trains a tiny model; give it a bounded wait via a watchdog
    // thread that reads stdout for the announcement line.
    let stdout = child.0.stdout.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for line in reader.lines().map_while(Result::ok) {
            if let Some(addr) = line.strip_prefix("LISTENING ") {
                let _ = tx.send(addr.to_string());
                return;
            }
        }
    });
    let addr: std::net::SocketAddr = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("server never announced LISTENING")
        .parse()
        .unwrap();

    let mut c = HttpClient::connect(addr).unwrap();
    let r = c.get("/health").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("\"ok\""), "{}", r.text());

    // One real estimate over the wire against the freshly-trained model.
    let comps: Vec<String> = (0..64)
        .map(|i| format!("{}", (i % 7) as f32 * 0.1))
        .collect();
    let body = format!("{{\"query\":[{}],\"tau\":0.3}}", comps.join(","));
    let r = c.post_json("/estimate", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    assert!(r.text().contains("estimate"), "{}", r.text());

    std::fs::remove_dir_all(&dir).ok();
}
