//! End-to-end warm-standby battery over real sockets (ISSUE 8
//! tentpole, serving side): a primary HTTP server streaming its WAL to
//! a standby HTTP server, the standby rejecting writes with `503` +
//! `Retry-After` while serving reads, `/ready` flipping as it catches
//! up, fingerprints matching across nodes, and `POST /admin/promote`
//! turning the standby into a writable primary that continues the
//! sequence chain — no acknowledged-and-replicated insert lost.

use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_core::backoff::BackoffConfig;
use cardest_core::drift::DriftConfig;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorView;
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use cardest_server::client::HttpClient;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::QueryRepr;
use cardest_server::registry::SharedFallback;
use cardest_server::{
    IngestService, ModelRegistry, RegistryConfig, ReplicationState, Server, ServerConfig,
    ServerHandle, StandbyBridge,
};
use cardest_store::replicate::{
    ListenerConfig, ReplicaClient, ReplicaClientConfig, ReplicaSource, ReplicationListener,
    StandbyTarget,
};
use cardest_store::{DurableIngest, StoreConfig};
use serde::Value;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_DATA: usize = 400;
const DIM: usize = 16;
const SEED: u64 = 77;

fn tiny_spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: DIM,
        n_data: N_DATA,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

fn fast_client_cfg() -> ReplicaClientConfig {
    ReplicaClientConfig {
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(30),
        write_timeout: Duration::from_secs(1),
        backoff: BackoffConfig {
            base: Duration::from_millis(10),
            max: Duration::from_millis(150),
            jitter: 0.5,
            max_attempts: 0,
        },
        seed: 0x11F0,
        ack_every: 8,
    }
}

fn fast_listener_cfg() -> ListenerConfig {
    ListenerConfig {
        heartbeat_every: Duration::from_millis(100),
        batch_max: 32,
        ack_poll: Duration::from_millis(10),
        hello_deadline: Duration::from_secs(10),
    }
}

/// One HTTP node (primary or standby): trained estimator + durable
/// store + registry + server, all seed-deterministic so both nodes of a
/// pair start from bit-identical state.
struct Node {
    dir: PathBuf,
    handle: Option<ServerHandle>,
    svc: Arc<IngestService>,
    registry: Arc<ModelRegistry>,
    probe: Vec<f32>,
}

impl Node {
    fn build(tag: &str) -> (Self, Arc<ReplicationState>) {
        let dir =
            std::env::temp_dir().join(format!("cardest-httprepl-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec = tiny_spec();
        let data = spec.generate(SEED);
        let w = SearchWorkload::build(&data, &spec, SEED);
        let fallback: SharedFallback = Arc::new(SamplingEstimator::with_ratio(
            &data,
            spec.metric,
            0.05,
            SEED,
            "Sampling 5%",
        ));
        let cfg = GlConfig {
            variant: GlVariant::GlCnn,
            n_segments: 4,
            local_train: TrainConfig {
                epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
            global_train: TrainConfig {
                epochs: 2,
                batch_size: 64,
                ..Default::default()
            },
            tuning: TuningConfig::fast(),
            tuning_segments: 1,
            ..Default::default()
        };
        let training = TrainingSet::new(&w.queries, &w.train);
        let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
        let upd = UpdatableGl::new(
            data,
            spec.metric,
            gl,
            w.queries,
            w.train,
            w.test,
            &w.table,
            UpdateConfig::default(),
        );
        let probe = match upd.queries().view(0) {
            VectorView::Dense(row) => row.to_vec(),
            other => panic!("tiny spec is dense, got {other:?}"),
        };
        let artifact = dir.join("model.cardest");
        upd.gl().save_artifact(&artifact).unwrap();
        let store = DurableIngest::create(
            &dir.join("store"),
            upd,
            StoreConfig {
                snapshot_every: 0,
                sync_writes: false,
                retain_wal: true,
                rotate_bytes: 4096,
            },
        )
        .unwrap();
        let svc = IngestService::new(
            store,
            DriftConfig {
                check_every: 1 << 20, // this battery never wants a fine-tune
                ..Default::default()
            },
            artifact.clone(),
        );
        let registry = Arc::new(
            ModelRegistry::new(
                RegistryConfig {
                    n_data: N_DATA,
                    dim: DIM,
                    repr: QueryRepr::Dense,
                    monotone: true,
                },
                fallback,
                &artifact,
            )
            .unwrap(),
        );
        (
            Node {
                dir,
                handle: None,
                svc,
                registry,
                probe,
            },
            ReplicationState::primary(),
        )
    }

    fn serve(&mut self, repl: Arc<ReplicationState>) {
        let handle = Server::start_replicated(
            ServerConfig {
                workers: 2,
                coalesce: CoalesceConfig {
                    window: Duration::from_micros(200),
                    ..CoalesceConfig::default()
                },
                ..ServerConfig::default()
            },
            Arc::clone(&self.registry),
            Arc::clone(&self.svc),
            repl,
        )
        .unwrap();
        self.handle = Some(handle);
    }

    fn client(&self) -> HttpClient {
        HttpClient::connect(self.handle.as_ref().unwrap().addr()).unwrap()
    }

    fn insert_body(&self) -> String {
        let comps: Vec<String> = self.probe.iter().map(|v| format!("{v}")).collect();
        format!("{{\"point\":[{}]}}", comps.join(","))
    }

    fn estimate_body(&self) -> String {
        let comps: Vec<String> = self.probe.iter().map(|v| format!("{v}")).collect();
        format!("{{\"query\":[{}],\"tau\":0.3}}", comps.join(","))
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => {
            &m.iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
                .1
        }
        other => panic!("expected map, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) if *i >= 0 => *i as u64,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

/// Builds a connected primary/standby pair: the primary runs a
/// replication listener, the standby's client replays into its
/// `StandbyBridge`. Returns (primary, standby, standby_repl).
fn start_pair(tag: &str) -> (Node, ReplicationListener, Node, Arc<ReplicationState>) {
    let (mut primary, primary_repl) = Node::build(&format!("{tag}-p"));
    let source: Arc<dyn ReplicaSource> = Arc::clone(&primary.svc) as Arc<dyn ReplicaSource>;
    let listener = ReplicationListener::start("127.0.0.1:0", source, fast_listener_cfg()).unwrap();
    primary_repl.attach_listener_stats(listener.stats());
    primary.serve(Arc::clone(&primary_repl));

    let (mut standby, _) = Node::build(&format!("{tag}-s"));
    let standby_repl = ReplicationState::standby(Some(format!(
        "http://{}",
        primary.handle.as_ref().unwrap().addr()
    )));
    let bridge: Arc<dyn StandbyTarget> =
        StandbyBridge::new(Arc::clone(&standby.svc), Arc::clone(&standby.registry));
    let client = ReplicaClient::start(listener.addr().to_string(), bridge, fast_client_cfg());
    standby_repl.attach_client(client);
    standby.serve(Arc::clone(&standby_repl));
    (primary, listener, standby, standby_repl)
}

/// Polls `GET /ready` until it answers 200 or the deadline passes;
/// returns the last body.
fn await_ready(node: &Node, deadline: Duration) -> Value {
    let start = Instant::now();
    loop {
        let mut c = node.client();
        let r = c.get("/ready").unwrap();
        if r.status == 200 {
            return serde_json::from_str(&r.text()).unwrap();
        }
        assert!(
            start.elapsed() < deadline,
            "node not ready after {deadline:?}: {}",
            r.text()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Polls until the node's durable position reaches `target` — `/ready`
/// can legitimately answer 200 before the first streamed batch lands
/// (head unknown ⇒ lag 0), so catch-up is judged on the store itself.
fn await_seq(node: &Node, target: u64, deadline: Duration) {
    let start = Instant::now();
    loop {
        let (_, seq) = fingerprint_of(node);
        if seq >= target {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "node stuck at seq {seq} of {target} after {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Polls the primary's `/ready` until its standby has acknowledged
/// `target` — acks trail application by up to one ack window.
fn await_acked(primary: &Node, target: u64, deadline: Duration) -> Value {
    let start = Instant::now();
    loop {
        let ready = await_ready(primary, deadline);
        if as_u64(field(&ready, "standby_acked")) >= target {
            return ready;
        }
        assert!(
            start.elapsed() < deadline,
            "standby ack stuck below {target} after {deadline:?}: {ready:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn fingerprint_of(node: &Node) -> (u64, u64) {
    let mut c = node.client();
    let r = c.get("/admin/fingerprint").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    (
        as_u64(field(&v, "fingerprint")),
        as_u64(field(&v, "last_seq")),
    )
}

#[test]
fn standby_rejects_writes_serves_reads_and_mirrors_the_primary() {
    let (primary, _listener, standby, _repl) = start_pair("mirror");

    // Liveness never depends on replication state: both nodes are
    // immediately healthy even while the standby is still syncing.
    for node in [&primary, &standby] {
        let mut c = node.client();
        let r = c.get("/health").unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
    }

    // Writes bounce off the standby with a redirect hint, before
    // touching the WAL.
    let mut sc = standby.client();
    let r = sc.post_json("/insert", &standby.insert_body()).unwrap();
    assert_eq!(r.status, 503, "{}", r.text());
    assert_eq!(r.header("retry-after"), Some("1"), "{:?}", r.headers);
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(field(&v, "role"), &Value::Str("standby".to_string()));
    match field(&v, "primary") {
        Value::Str(url) => assert!(url.starts_with("http://"), "{url}"),
        other => panic!("expected primary url, got {other:?}"),
    }

    // Feed the primary; the stream must carry every insert across.
    let mut pc = primary.client();
    const N: u64 = 40;
    for k in 1..=N {
        let r = pc.post_json("/insert", &primary.insert_body()).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
        let v: Value = serde_json::from_str(&r.text()).unwrap();
        assert_eq!(as_u64(field(&v, "seq")), k);
    }

    // The standby's readiness flips once it has drained the stream.
    await_seq(&standby, N, Duration::from_secs(30));
    let ready = await_ready(&standby, Duration::from_secs(10));
    assert_eq!(field(&ready, "role"), &Value::Str("standby".to_string()));
    assert_eq!(field(&ready, "ready"), &Value::Bool(true));
    assert_eq!(as_u64(field(&ready, "lag")), 0);
    assert_eq!(as_u64(field(&ready, "last_applied")), N);

    // Bit-identical state across the pair, via the runbook's endpoint.
    let (fp_p, seq_p) = fingerprint_of(&primary);
    let (fp_s, seq_s) = fingerprint_of(&standby);
    assert_eq!(seq_p, N);
    assert_eq!(seq_s, N);
    assert_eq!(fp_p, fp_s, "standby state diverged from primary");

    // Reads keep working on the standby against the replicated rows.
    let r = sc.post_json("/estimate", &standby.estimate_body()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    // The primary's readiness reports its streaming position too (acks
    // trail application, so give them a moment to drain).
    let ready = await_acked(&primary, N, Duration::from_secs(10));
    assert_eq!(field(&ready, "role"), &Value::Str("primary".to_string()));

    // /stats exposes both sides of the stream.
    let v: Value = serde_json::from_str(&sc.get("/stats").unwrap().text()).unwrap();
    let repl = field(&v, "replication");
    assert_eq!(field(repl, "role"), &Value::Str("standby".to_string()));
    assert_eq!(field(repl, "connected"), &Value::Bool(true));
    assert!(as_u64(field(repl, "records_applied")) >= N);
    let v: Value = serde_json::from_str(&pc.get("/stats").unwrap().text()).unwrap();
    let repl = field(&v, "replication");
    assert_eq!(field(repl, "role"), &Value::Str("primary".to_string()));
    assert!(as_u64(field(repl, "records_sent")) >= N);
    assert_eq!(as_u64(field(repl, "standby_acked")), N);
}

#[test]
fn promote_turns_the_standby_writable_without_losing_acked_inserts() {
    let (primary, listener, standby, _repl) = start_pair("promote");

    // Promoting an actual primary is refused.
    let mut pc = primary.client();
    let r = pc.post_json("/admin/promote", "").unwrap();
    assert_eq!(r.status, 409, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(field(&v, "promoted"), &Value::Bool(false));

    // Acknowledge a batch of writes and let the standby replicate them.
    const N: u64 = 25;
    for _ in 0..N {
        let r = pc.post_json("/insert", &primary.insert_body()).unwrap();
        assert_eq!(r.status, 200, "{}", r.text());
    }
    await_seq(&standby, N, Duration::from_secs(30));
    let (fp_p, _) = fingerprint_of(&primary);
    let (fp_s, seq_s) = fingerprint_of(&standby);
    assert_eq!(fp_p, fp_s);
    assert_eq!(seq_s, N);

    // Kill the primary (server + replication listener): the standby
    // keeps serving reads while disconnected.
    drop(listener);
    let mut primary = primary;
    if let Some(h) = primary.handle.take() {
        h.shutdown();
    }
    let mut sc = standby.client();
    let r = sc.post_json("/estimate", &standby.estimate_body()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());

    // Failover: promote flips the role in-process.
    let r = sc.post_json("/admin/promote", "").unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(field(&v, "promoted"), &Value::Bool(true));
    assert_eq!(field(&v, "role"), &Value::Str("primary".to_string()));
    assert_eq!(
        as_u64(field(&v, "last_seq")),
        N,
        "acked-and-replicated inserts lost across failover"
    );

    // Promote is one-shot.
    let r = sc.post_json("/admin/promote", "").unwrap();
    assert_eq!(r.status, 409, "{}", r.text());

    // The promoted node accepts writes, continuing the sequence chain
    // exactly where the old primary stopped.
    let r = sc.post_json("/insert", &standby.insert_body()).unwrap();
    assert_eq!(r.status, 200, "{}", r.text());
    let v: Value = serde_json::from_str(&r.text()).unwrap();
    assert_eq!(as_u64(field(&v, "seq")), N + 1);
    assert_eq!(as_u64(field(&v, "index")), N_DATA as u64 + N);

    // And reports ready as a primary.
    let ready = await_ready(&standby, Duration::from_secs(5));
    assert_eq!(field(&ready, "role"), &Value::Str("primary".to_string()));
    assert_eq!(as_u64(field(&ready, "last_seq")), N + 1);
}
