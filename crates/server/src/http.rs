//! A minimal HTTP/1.1 reader/writer over `TcpStream`.
//!
//! Just enough of RFC 9112 for a JSON estimation service: request line,
//! headers, `Content-Length` bodies, keep-alive. No chunked encoding, no
//! TLS, no compression — requests that need any of those get a clean 400.
//!
//! Reads are bounded two ways: a size cap on headers and body (a client
//! cannot balloon server memory), and the socket's read timeout (set by
//! the server) so a worker parked on an idle connection wakes up
//! periodically to poll the shutdown flag — [`NextRequest::Idle`] is that
//! wake-up, with any partial request preserved in the connection buffer.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Cap on the header section (request line + headers).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    pub keep_alive: bool,
}

/// What a read attempt produced.
#[derive(Debug)]
pub enum NextRequest {
    /// A complete request was parsed.
    Ready(Request),
    /// The read timed out with no complete request; poll shutdown and try
    /// again — partial bytes stay buffered.
    Idle,
    /// The peer closed the connection cleanly.
    Closed,
}

/// Why a request could not be served at the HTTP layer.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure — drop the connection.
    Io(std::io::Error),
    /// Unparseable or unsupported request — answer 400 and close.
    Malformed(String),
    /// Declared body exceeds the configured cap — answer 400 and close.
    BodyTooLarge { declared: usize, cap: usize },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, cap } => {
                write!(f, "declared body of {declared} bytes exceeds cap of {cap}")
            }
        }
    }
}

/// One client connection: the stream plus the carry-over buffer that
/// makes keep-alive pipelining and timeout-resume work.
pub struct HttpConnection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpConnection {
    pub fn new(stream: TcpStream) -> Self {
        HttpConnection {
            stream,
            buf: Vec::new(),
        }
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads until one complete request is buffered (or timeout / close /
    /// protocol error). `max_body` caps the accepted `Content-Length`.
    pub fn read_request(&mut self, max_body: usize) -> Result<NextRequest, HttpError> {
        loop {
            if let Some(parsed) = self.try_parse(max_body)? {
                return Ok(NextRequest::Ready(parsed));
            }
            if self.buf.len() > MAX_HEADER_BYTES + max_body {
                return Err(HttpError::Malformed(
                    "request exceeds buffer limits".to_string(),
                ));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(NextRequest::Closed)
                    } else {
                        Err(HttpError::Malformed(
                            "connection closed mid-request".to_string(),
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(NextRequest::Idle);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// Attempts to parse one request out of the buffer; `Ok(None)` means
    /// more bytes are needed.
    fn try_parse(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let Some(header_end) = find_subslice(&self.buf, b"\r\n\r\n") else {
            if self.buf.len() > MAX_HEADER_BYTES {
                return Err(HttpError::Malformed("header section too large".to_string()));
            }
            return Ok(None);
        };
        let header_text = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".to_string()))?;
        let mut lines = header_text.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
            .to_string();
        let path = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request path".to_string()))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Malformed(format!(
                "unsupported version {version:?}"
            )));
        }

        let mut content_length = 0usize;
        let mut keep_alive = version == "HTTP/1.1";
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Malformed(format!("bad header line {line:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value.parse::<usize>().map_err(|_| {
                        HttpError::Malformed(format!("bad content-length {value:?}"))
                    })?;
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v == "close" {
                        keep_alive = false;
                    } else if v == "keep-alive" {
                        keep_alive = true;
                    }
                }
                "transfer-encoding" => {
                    return Err(HttpError::Malformed(
                        "transfer-encoding is not supported; send content-length".to_string(),
                    ));
                }
                _ => {}
            }
        }
        if content_length > max_body {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                cap: max_body,
            });
        }

        let body_start = header_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(None);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive,
        }))
    }

    /// Writes one JSON response.
    pub fn write_response(
        &mut self,
        status: u16,
        body: &[u8],
        keep_alive: bool,
    ) -> std::io::Result<()> {
        write_response_to(&mut self.stream, status, body, keep_alive)
    }

    /// Writes one JSON response with extra headers (e.g. `Retry-After`
    /// on a standby's 503).
    pub fn write_response_with_headers(
        &mut self,
        status: u16,
        body: &[u8],
        keep_alive: bool,
        extra: &[(String, String)],
    ) -> std::io::Result<()> {
        write_response_headers_to(&mut self.stream, status, body, keep_alive, extra)
    }
}

/// Writes one JSON response to any stream (shared with the admission-
/// control path, which rejects before an [`HttpConnection`] exists).
pub fn write_response_to<W: Write>(
    w: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_headers_to(w, status, body, keep_alive, &[])
}

/// [`write_response_to`] plus arbitrary extra headers. Header names and
/// values must already be line-safe (no CR/LF) — callers only pass
/// compile-time names and numeric/address values.
pub fn write_response_headers_to<W: Write>(
    w: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
    extra: &[(String, String)],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8], max_body: usize) -> Result<Option<Request>, HttpError> {
        // Drive try_parse directly — no socket needed.
        let mut conn = HttpConnection {
            stream: fake_stream(),
            buf: bytes.to_vec(),
        };
        conn.try_parse(max_body)
    }

    fn fake_stream() -> TcpStream {
        // A loopback pair gives us a real TcpStream without traffic.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /estimate HTTP/1.1\r\ncontent-length: 4\r\n\r\n{\"a\"";
        let req = parse_all(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/estimate");
        assert_eq!(req.body, b"{\"a\"");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn incomplete_body_waits_for_more_bytes() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert!(parse_all(raw, 1024).unwrap().is_none());
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let raw = b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n";
        let req = parse_all(raw, 1024).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 99999\r\n\r\n";
        match parse_all(raw, 1024) {
            Err(HttpError::BodyTooLarge { declared, cap }) => {
                assert_eq!(declared, 99_999);
                assert_eq!(cap, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        let raw = b"NONSENSE\r\n\r\n";
        assert!(matches!(parse_all(raw, 1024), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn chunked_encoding_is_politely_refused() {
        let raw = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        assert!(matches!(parse_all(raw, 1024), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n".to_vec();
        let mut conn = HttpConnection {
            stream: fake_stream(),
            buf: raw,
        };
        let first = conn.try_parse(1024).unwrap().unwrap();
        assert_eq!(first.path, "/health");
        let second = conn.try_parse(1024).unwrap().unwrap();
        assert_eq!(second.path, "/stats");
        assert!(conn.try_parse(1024).unwrap().is_none());
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        write_response_to(&mut out, 200, b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn extra_headers_land_before_the_blank_line() {
        let mut out = Vec::new();
        write_response_headers_to(
            &mut out,
            503,
            b"{}",
            false,
            &[("retry-after".to_string(), "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        let head_end = text.find("\r\n\r\n").unwrap();
        assert!(text[..head_end].contains("retry-after: 1"), "{text}");
        assert!(text.ends_with("{}"), "{text}");
    }
}
