//! Loaded serving models and the owned query codec.
//!
//! An artifact file names its estimator family in the (checksummed)
//! container header; [`LoadedModel::load`] verifies the whole container
//! first (`cardest_nn::artifact::read_kind`), then dispatches to the
//! matching family's `load_artifact`. The enum is monomorphic dispatch in
//! the same spirit as the kernel crates: no trait objects on the
//! per-request path.

use cardest_baselines::cardnet::{CardNet, CARDNET_ARTIFACT_KIND};
use cardest_baselines::mlp::{MlpEstimator, MLP_ARTIFACT_KIND};
use cardest_baselines::traits::CardinalityEstimator;
use cardest_core::gl::{GlEstimator, GL_ARTIFACT_KIND};
use cardest_data::vector::{VectorData, VectorView};
use cardest_nn::artifact;
use std::path::Path;

use crate::registry::ReloadError;

/// A deserialized estimator of any supported family.
pub enum LoadedModel {
    Mlp(MlpEstimator),
    CardNet(CardNet),
    Gl(GlEstimator),
}

impl LoadedModel {
    /// Loads an artifact, dispatching on its verified kind tag. The
    /// container (magic, version, length, checksum) is fully verified
    /// before any family's deserializer sees a byte, so a corrupt file
    /// surfaces as a typed [`ReloadError::Artifact`], never as a
    /// half-parsed model.
    pub fn load(path: &Path) -> Result<(Self, String), ReloadError> {
        let kind = artifact::read_kind(path)?;
        let model = match kind.as_str() {
            MLP_ARTIFACT_KIND => LoadedModel::Mlp(MlpEstimator::load_artifact(path)?),
            CARDNET_ARTIFACT_KIND => LoadedModel::CardNet(CardNet::load_artifact(path)?),
            GL_ARTIFACT_KIND => LoadedModel::Gl(GlEstimator::load_artifact(path)?),
            other => return Err(ReloadError::UnsupportedKind(other.to_string())),
        };
        Ok((model, kind))
    }
}

impl CardinalityEstimator for LoadedModel {
    fn name(&self) -> &'static str {
        match self {
            LoadedModel::Mlp(m) => m.name(),
            LoadedModel::CardNet(m) => m.name(),
            LoadedModel::Gl(m) => m.name(),
        }
    }
    fn estimate(&self, q: VectorView<'_>, tau: f32) -> f32 {
        match self {
            LoadedModel::Mlp(m) => m.estimate(q, tau),
            LoadedModel::CardNet(m) => m.estimate(q, tau),
            LoadedModel::Gl(m) => m.estimate(q, tau),
        }
    }
    fn estimate_batch(&self, queries: &[(VectorView<'_>, f32)]) -> Vec<f32> {
        match self {
            LoadedModel::Mlp(m) => m.estimate_batch(queries),
            LoadedModel::CardNet(m) => m.estimate_batch(queries),
            LoadedModel::Gl(m) => m.estimate_batch(queries),
        }
    }
    fn estimate_join(&self, queries: &VectorData, member_ids: &[usize], tau: f32) -> f32 {
        match self {
            LoadedModel::Mlp(m) => m.estimate_join(queries, member_ids, tau),
            LoadedModel::CardNet(m) => m.estimate_join(queries, member_ids, tau),
            LoadedModel::Gl(m) => m.estimate_join(queries, member_ids, tau),
        }
    }
    fn model_bytes(&self) -> usize {
        match self {
            LoadedModel::Mlp(m) => m.model_bytes(),
            LoadedModel::CardNet(m) => m.model_bytes(),
            LoadedModel::Gl(m) => m.model_bytes(),
        }
    }
    fn expected_dim(&self) -> Option<usize> {
        match self {
            LoadedModel::Mlp(m) => m.expected_dim(),
            LoadedModel::CardNet(m) => m.expected_dim(),
            LoadedModel::Gl(m) => m.expected_dim(),
        }
    }
    fn tau_bound(&self) -> Option<f32> {
        match self {
            LoadedModel::Mlp(m) => m.tau_bound(),
            LoadedModel::CardNet(m) => m.tau_bound(),
            LoadedModel::Gl(m) => m.tau_bound(),
        }
    }
}

/// Representation the serving dataset (and therefore every query) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRepr {
    Dense,
    /// Bit-packed binary vectors of the given logical dimension.
    Binary,
}

/// An owned query vector — requests outlive the HTTP buffer they were
/// parsed from (they sit in the coalescing queue), so the borrowed
/// [`VectorView`] is materialized only at flush time.
#[derive(Debug, Clone)]
pub enum OwnedQuery {
    Dense(Vec<f32>),
    Binary { words: Vec<u64>, dim: usize },
}

impl OwnedQuery {
    /// Converts JSON component values into the serving representation.
    /// Binary datasets bit-pack with a 0.5 threshold; non-finite
    /// components are passed through for dense queries (the guard rejects
    /// them with a typed error) but must be rejected here for binary ones,
    /// where packing would silently launder a NaN into a 0-bit.
    // cardest-lint: allow(error-taxonomy): the String is a client-facing 400 body; callers never branch on it
    pub fn from_components(values: &[f32], repr: QueryRepr) -> Result<Self, String> {
        match repr {
            QueryRepr::Dense => Ok(OwnedQuery::Dense(values.to_vec())),
            QueryRepr::Binary => {
                if let Some((i, v)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
                    return Err(format!(
                        "query component {i} is non-finite ({v}) and cannot be bit-packed"
                    ));
                }
                let dim = values.len();
                let mut words = vec![0u64; dim.div_ceil(64)];
                for (i, &v) in values.iter().enumerate() {
                    if v >= 0.5 {
                        words[i / 64] |= 1u64 << (i % 64);
                    }
                }
                Ok(OwnedQuery::Binary { words, dim })
            }
        }
    }

    /// Borrows the query for an estimator call.
    pub fn view(&self) -> VectorView<'_> {
        match self {
            OwnedQuery::Dense(v) => VectorView::Dense(v),
            OwnedQuery::Binary { words, dim } => VectorView::Binary { words, dim: *dim },
        }
    }
}

/// The representation a dataset serves queries in.
pub fn repr_of(data: &VectorData) -> QueryRepr {
    match data {
        VectorData::Dense(_) => QueryRepr::Dense,
        VectorData::Binary(_) => QueryRepr::Binary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_components_pass_through() {
        let q = OwnedQuery::from_components(&[0.1, f32::NAN], QueryRepr::Dense).unwrap();
        match q.view() {
            VectorView::Dense(v) => {
                assert_eq!(v.len(), 2);
                assert!(v[1].is_nan(), "guard-layer rejection, not codec-layer");
            }
            _ => panic!("expected dense"),
        }
    }

    #[test]
    fn binary_components_bit_pack_with_half_threshold() {
        let vals = [0.0f32, 1.0, 0.49, 0.51, 1.0];
        let q = OwnedQuery::from_components(&vals, QueryRepr::Binary).unwrap();
        match q.view() {
            VectorView::Binary { words, dim } => {
                assert_eq!(dim, 5);
                assert_eq!(words[0], 0b11010);
            }
            _ => panic!("expected binary"),
        }
    }

    #[test]
    fn binary_rejects_non_finite_components() {
        let err =
            OwnedQuery::from_components(&[1.0, f32::INFINITY], QueryRepr::Binary).unwrap_err();
        assert!(err.contains("component 1"), "{err}");
    }

    #[test]
    fn unknown_artifact_kind_is_typed() {
        let dir = std::env::temp_dir().join(format!("cardest-model-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weird.cardest");
        cardest_nn::artifact::write_atomic(&path, "cardest.unknown", b"{}").unwrap();
        match LoadedModel::load(&path) {
            Err(ReloadError::UnsupportedKind(k)) => assert_eq!(k, "cardest.unknown"),
            Err(other) => panic!("expected UnsupportedKind, got {other:?}"),
            Ok(_) => panic!("loading an unknown kind must fail"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
