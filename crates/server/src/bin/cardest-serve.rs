//! `cardest-serve` — stand up the estimation service on a synthetic
//! paper dataset.
//!
//! Startup: generate (or load from cache) the dataset, train a small MLP
//! estimator if no artifact exists yet (subsequent runs reuse it), build
//! the sampling fallback, and serve. `--port 0` binds an ephemeral port;
//! the chosen address is announced on stdout as `LISTENING <addr>` so
//! scripts (ci.sh's serve lane, the load generator) can find it.
//!
//! ```text
//! cardest-serve --dataset GloVe300 --port 8080
//! curl -s localhost:8080/health
//! ```

use cardest_baselines::mlp::{MlpConfig, MlpEstimator};
use cardest_baselines::sampling::SamplingEstimator;
use cardest_baselines::traits::TrainingSet;
use cardest_core::drift::DriftConfig;
use cardest_core::gl::{GlConfig, GlEstimator};
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::cache;
use cardest_data::paper::PaperDataset;
use cardest_data::workload::SearchWorkload;
use cardest_server::coalesce::CoalesceConfig;
use cardest_server::model::repr_of;
use cardest_server::{
    IngestService, ModelRegistry, RegistryConfig, ReplicationState, Server, ServerConfig,
    StandbyBridge,
};
use cardest_store::replicate::{
    ListenerConfig, ReplicaClient, ReplicaClientConfig, ReplicaSource, ReplicationListener,
    StandbyTarget,
};
use cardest_store::{DurableIngest, StoreConfig};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    dataset: PaperDataset,
    port: u16,
    workers: usize,
    seed: u64,
    n_data: Option<usize>,
    train_queries: Option<usize>,
    train_epochs: Option<usize>,
    model_dir: PathBuf,
    cache_dir: PathBuf,
    coalesce_window_us: u64,
    mutable: bool,
    store_dir: PathBuf,
    replication_listen: Option<String>,
    replicate_from: Option<String>,
    primary_url: Option<String>,
}

const USAGE: &str = "usage: cardest-serve [--dataset NAME] [--port P] [--workers N] \
[--seed S] [--n-data N] [--train-queries N] [--train-epochs N] \
[--model-dir DIR] [--cache-dir DIR] [--coalesce-window-us U] \
[--mutable] [--store-dir DIR] \
[--replication-listen ADDR] [--replicate-from ADDR] [--primary-url URL]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: PaperDataset::GloVe300,
        port: 0,
        workers: 4,
        seed: 42,
        n_data: None,
        train_queries: None,
        train_epochs: None,
        model_dir: PathBuf::from(".cardest-serve/models"),
        cache_dir: PathBuf::from(".cardest-serve/cache"),
        coalesce_window_us: 500,
        mutable: false,
        store_dir: PathBuf::from(".cardest-serve/store"),
        replication_listen: None,
        replicate_from: None,
        primary_url: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--dataset" => {
                let v = value("--dataset")?;
                args.dataset =
                    PaperDataset::parse(&v).ok_or_else(|| format!("unknown dataset {v:?}"))?;
            }
            "--port" => args.port = parse_num(&value("--port")?, "--port")?,
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
            "--n-data" => args.n_data = Some(parse_num(&value("--n-data")?, "--n-data")?),
            "--train-queries" => {
                args.train_queries = Some(parse_num(&value("--train-queries")?, "--train-queries")?)
            }
            "--train-epochs" => {
                args.train_epochs = Some(parse_num(&value("--train-epochs")?, "--train-epochs")?)
            }
            "--model-dir" => args.model_dir = PathBuf::from(value("--model-dir")?),
            "--cache-dir" => args.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--coalesce-window-us" => {
                args.coalesce_window_us =
                    parse_num(&value("--coalesce-window-us")?, "--coalesce-window-us")?
            }
            "--mutable" => args.mutable = true,
            "--store-dir" => args.store_dir = PathBuf::from(value("--store-dir")?),
            "--replication-listen" => {
                args.replication_listen = Some(value("--replication-listen")?);
                args.mutable = true; // streaming a WAL requires having one
            }
            "--replicate-from" => {
                args.replicate_from = Some(value("--replicate-from")?);
                args.mutable = true;
            }
            "--primary-url" => args.primary_url = Some(value("--primary-url")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: cannot parse {s:?} as a number"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut spec = args.dataset.spec();
    if let Some(n) = args.n_data {
        spec.n_data = n;
    }
    if let Some(q) = args.train_queries {
        spec.n_train_queries = q;
        spec.n_test_queries = (q / 4).max(1);
    }

    eprintln!(
        "cardest-serve: dataset {} ({}d, {} points, {:?}, tau_max {})",
        spec.dataset.name(),
        spec.dim,
        spec.n_data,
        spec.metric,
        spec.tau_max
    );
    let data = cache::load_or_generate(&args.cache_dir, &spec, args.seed);

    if args.mutable {
        return run_mutable(&args, spec, data);
    }

    // Train-once-then-reuse: the artifact is keyed like the dataset cache,
    // so restarts (and the reload smoke test) skip training.
    std::fs::create_dir_all(&args.model_dir)
        .map_err(|e| format!("create {}: {e}", args.model_dir.display()))?;
    let artifact = args.model_dir.join(format!(
        "mlp_{}_{}d_{}n_{}.cardest",
        spec.dataset.name().to_ascii_lowercase(),
        spec.dim,
        spec.n_data,
        args.seed
    ));
    if !artifact.exists() {
        eprintln!(
            "cardest-serve: no artifact at {}; training",
            artifact.display()
        );
        let workload = SearchWorkload::build(&data, &spec, args.seed);
        let training = TrainingSet::new(&workload.queries, &workload.train);
        let mut cfg = MlpConfig::default();
        if let Some(e) = args.train_epochs {
            cfg.train.epochs = e;
        }
        let (model, report) = MlpEstimator::train(&data, spec.metric, &training, &cfg, args.seed);
        eprintln!(
            "cardest-serve: trained {} epochs, final loss {:.4}",
            report.epochs_run, report.final_loss
        );
        model
            .save_artifact(&artifact)
            .map_err(|e| format!("save artifact: {e}"))?;
    }

    let fallback = Arc::new(SamplingEstimator::with_ratio(
        &data,
        spec.metric,
        0.01,
        args.seed,
        "Sampling 1%",
    ));
    let registry = ModelRegistry::new(
        RegistryConfig {
            n_data: data.len(),
            dim: data.dim(),
            repr: repr_of(&data),
            monotone: true,
        },
        fallback,
        &artifact,
    )
    .map_err(|e| format!("load model: {e}"))?;

    let handle = Server::start(
        ServerConfig {
            addr: format!("127.0.0.1:{}", args.port),
            workers: args.workers,
            coalesce: CoalesceConfig {
                window: Duration::from_micros(args.coalesce_window_us),
                ..CoalesceConfig::default()
            },
            ..ServerConfig::default()
        },
        Arc::new(registry),
    )
    .map_err(|e| format!("bind server: {e}"))?;

    // The exact line ci.sh and the load generator wait for.
    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "cardest-serve: serving on {} with {} workers (ctrl-c to stop)",
        handle.addr(),
        args.workers
    );
    loop {
        std::thread::park();
    }
}

/// `--mutable`: serve a GL estimator behind the durable ingest layer —
/// `POST /insert` accepted, WAL + snapshots under `--store-dir`,
/// drift-triggered fine-tunes hot-swapped in the background. A restart
/// with the same `--store-dir` recovers (snapshot + WAL replay) instead
/// of retraining.
fn run_mutable(
    args: &Args,
    spec: cardest_data::paper::DatasetSpec,
    data: cardest_data::vector::VectorData,
) -> Result<(), String> {
    std::fs::create_dir_all(&args.model_dir)
        .map_err(|e| format!("create {}: {e}", args.model_dir.display()))?;
    let artifact = args.model_dir.join(format!(
        "gl_{}_{}d_{}n_{}.cardest",
        spec.dataset.name().to_ascii_lowercase(),
        spec.dim,
        spec.n_data,
        args.seed
    ));

    let store_cfg = StoreConfig::default();
    let has_snapshot = args
        .store_dir
        .join(cardest_store::ingest::SNAPSHOT_FILE)
        .exists();
    let store = if has_snapshot {
        let (store, report) = DurableIngest::open(&args.store_dir, store_cfg)
            .map_err(|e| format!("recover store {}: {e}", args.store_dir.display()))?;
        eprintln!(
            "cardest-serve: recovered store (snapshot seq {}, {} replayed, {} skipped{})",
            report.snapshot_seq,
            report.replayed,
            report.skipped,
            match &report.wal.defect {
                Some(d) => format!(", torn tail truncated: {d}"),
                None => String::new(),
            }
        );
        store
    } else {
        eprintln!(
            "cardest-serve: no store at {}; training GL",
            args.store_dir.display()
        );
        let workload = SearchWorkload::build(&data, &spec, args.seed);
        let training = TrainingSet::new(&workload.queries, &workload.train);
        let mut cfg = GlConfig::default();
        if let Some(e) = args.train_epochs {
            cfg.local_train.epochs = e;
            cfg.global_train.epochs = e;
        }
        let gl = GlEstimator::train(&data, spec.metric, &training, &workload.table, &cfg);
        let upd = UpdatableGl::new(
            data,
            spec.metric,
            gl,
            workload.queries,
            workload.train,
            workload.test,
            &workload.table,
            UpdateConfig::default(),
        );
        DurableIngest::create(&args.store_dir, upd, store_cfg)
            .map_err(|e| format!("create store {}: {e}", args.store_dir.display()))?
    };

    // The registry must serve exactly the recovered weights, so the
    // artifact is (re)written from store state — fine-tunes overwrite the
    // same path, making tuned weights survive restarts too.
    store
        .estimator()
        .gl()
        .save_artifact(&artifact)
        .map_err(|e| format!("save artifact: {e}"))?;

    let n_data = store.estimator().data().len();
    let fallback = Arc::new(SamplingEstimator::with_ratio(
        store.estimator().data(),
        spec.metric,
        0.01,
        args.seed,
        "Sampling 1%",
    ));
    let registry = ModelRegistry::new(
        RegistryConfig {
            n_data,
            dim: spec.dim,
            repr: repr_of(store.estimator().data()),
            monotone: true,
        },
        fallback,
        &artifact,
    )
    .map_err(|e| format!("load model: {e}"))?;

    let registry = Arc::new(registry);
    let svc = IngestService::new(store, DriftConfig::default(), artifact);

    let repl = if args.replicate_from.is_some() {
        ReplicationState::standby(args.primary_url.clone())
    } else {
        ReplicationState::primary()
    };

    // Primary side: stream the WAL to any standby that connects.
    let _repl_listener = match &args.replication_listen {
        Some(listen) => {
            let source: Arc<dyn ReplicaSource> = Arc::clone(&svc) as Arc<dyn ReplicaSource>;
            let l = ReplicationListener::start(listen, source, ListenerConfig::default())
                .map_err(|e| format!("bind replication listener {listen}: {e}"))?;
            println!("REPLICATION {}", l.addr());
            let _ = std::io::stdout().flush();
            repl.attach_listener_stats(l.stats());
            Some(l)
        }
        None => None,
    };

    // Standby side: replay the primary's stream into this process.
    if let Some(from) = &args.replicate_from {
        let bridge: Arc<dyn StandbyTarget> =
            StandbyBridge::new(Arc::clone(&svc), Arc::clone(&registry));
        let client = ReplicaClient::start(from.clone(), bridge, ReplicaClientConfig::default());
        repl.attach_client(client);
        eprintln!("cardest-serve: standby replicating from {from}");
    }

    let handle = Server::start_replicated(
        ServerConfig {
            addr: format!("127.0.0.1:{}", args.port),
            workers: args.workers,
            coalesce: CoalesceConfig {
                window: Duration::from_micros(args.coalesce_window_us),
                ..CoalesceConfig::default()
            },
            ..ServerConfig::default()
        },
        registry,
        svc,
        repl,
    )
    .map_err(|e| format!("bind server: {e}"))?;

    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "cardest-serve: mutable serving on {} ({} rows, store {})",
        handle.addr(),
        n_data,
        args.store_dir.display()
    );
    loop {
        std::thread::park();
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
