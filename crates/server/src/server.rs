//! The TCP listener, worker pool, and request router.
//!
//! Threading model — plain `std`, no async runtime:
//!
//! * one **acceptor** thread owns the `TcpListener` and pushes accepted
//!   sockets onto a bounded connection queue; a full queue means the
//!   socket is answered `503` and dropped on the spot (admission control
//!   at the door, before a worker is tied up),
//! * a fixed pool of **worker** threads pops connections and serves them
//!   keep-alive until close, error, or shutdown,
//! * one **batcher** thread (in [`crate::coalesce`]) flushes queued
//!   single-query estimates as batches.
//!
//! Shutdown is cooperative: a flag plus a self-connect to unblock the
//! acceptor; workers notice the flag at their next read timeout, the
//! batcher drains its queue, and `ServerHandle::shutdown` joins them all.

use serde::Value;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock;
use crate::coalesce::{CoalesceConfig, Coalescer, SubmitError};
use crate::http::{HttpConnection, HttpError, NextRequest, Request};
use crate::ingest::IngestService;
use crate::model::OwnedQuery;
use crate::registry::ModelRegistry;
use crate::replicate::ReplicationState;
use crate::stats::{Route, ServerStats};
use cardest_store::StoreError;

/// One routed response: status, JSON body, extra headers.
type Reply = (u16, String, Vec<(String, String)>);

fn reply(status: u16, body: String) -> Reply {
    (status, body, Vec::new())
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Cap on request bodies.
    pub max_body_bytes: usize,
    /// Bound on the accepted-but-unclaimed connection queue; beyond it
    /// new connections are answered 503 immediately.
    pub pending_connections: usize,
    /// Socket read timeout — how often an idle worker polls shutdown.
    pub read_timeout: Duration,
    /// Coalescing knobs for `POST /estimate`.
    pub coalesce: CoalesceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_body_bytes: 4 * 1024 * 1024,
            pending_connections: 128,
            read_timeout: Duration::from_millis(100),
            coalesce: CoalesceConfig::default(),
        }
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    coalescer: Arc<Coalescer>,
    /// `Some` when the server was started with a durable store; `None`
    /// servers answer `POST /insert` with 404 (read-only serving).
    ingest: Option<Arc<IngestService>>,
    /// Primary/standby role; plain primary unless started replicated.
    repl: Arc<ReplicationState>,
    shutdown: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_wake: Condvar,
    cfg: ServerConfig,
}

/// Namespace for [`Server::start`].
pub struct Server;

/// A running server: its bound address plus the thread handles needed to
/// stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor / workers / batcher, and returns.
    /// The resulting server is read-only: `POST /insert` answers 404.
    pub fn start(cfg: ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
        Self::start_inner(cfg, registry, None, ReplicationState::primary())
    }

    /// Like [`Server::start`], but with a mutable serving dataset: the
    /// ingest service backs `POST /insert`, and its background fine-tune
    /// worker hot-swaps drift-adapted models through the registry.
    pub fn start_with_ingest(
        cfg: ServerConfig,
        registry: Arc<ModelRegistry>,
        ingest: Arc<IngestService>,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(cfg, registry, Some(ingest), ReplicationState::primary())
    }

    /// Like [`Server::start_with_ingest`], with an explicit replication
    /// role — a standby serves read-only until promoted.
    pub fn start_replicated(
        cfg: ServerConfig,
        registry: Arc<ModelRegistry>,
        ingest: Arc<IngestService>,
        repl: Arc<ReplicationState>,
    ) -> std::io::Result<ServerHandle> {
        Self::start_inner(cfg, registry, Some(ingest), repl)
    }

    fn start_inner(
        cfg: ServerConfig,
        registry: Arc<ModelRegistry>,
        ingest: Option<Arc<IngestService>>,
        repl: Arc<ReplicationState>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let coalescer = Coalescer::new(
            cfg.coalesce.clone(),
            Arc::clone(&registry),
            Arc::clone(&stats),
        );
        let shared = Arc::new(Shared {
            registry,
            stats,
            coalescer: Arc::clone(&coalescer),
            ingest,
            repl,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conn_wake: Condvar::new(),
            cfg: cfg.clone(),
        });

        let mut threads = Vec::with_capacity(cfg.workers + 3);
        threads.push(coalescer.spawn_batcher()?);
        if let Some(svc) = &shared.ingest {
            threads.push(svc.spawn_worker(Arc::clone(&shared.registry))?);
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("cardest-acceptor".to_string())
                    .spawn(move || acceptor_loop(&listener, &shared))?,
            );
        }
        for i in 0..cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cardest-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The registry behind this server.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// The ingest service, when this server was started with one.
    pub fn ingest(&self) -> Option<&Arc<IngestService>> {
        self.shared.ingest.as_ref()
    }

    /// The replication role (primary unless started replicated).
    pub fn repl(&self) -> &Arc<ReplicationState> {
        &self.shared.repl
    }

    /// Stops accepting, drains the coalescing queue, and joins every
    /// thread. Idempotent in effect; consumes the handle.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.coalescer.shutdown();
        if let Some(svc) = &self.shared.ingest {
            svc.shutdown();
        }
        self.shared.conn_wake.notify_all();
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; if it fails the acceptor still exits at the next
        // real connection or process end.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        let _ = stream.set_nodelay(true);
        let mut q = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= shared.cfg.pending_connections {
            drop(q);
            shared
                .stats
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            let mut s = stream;
            let _ = crate::http::write_response_to(
                &mut s,
                503,
                br#"{"error":"server overloaded"}"#,
                false,
            );
            continue;
        }
        q.push_back(stream);
        drop(q);
        shared.conn_wake.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (next, _) = shared
                    .conn_wake
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                q = next;
            }
        };
        match stream {
            Some(s) => handle_connection(shared, s),
            None => return,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut conn = HttpConnection::new(stream);
    loop {
        match conn.read_request(shared.cfg.max_body_bytes) {
            Ok(NextRequest::Ready(req)) => {
                let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                let (status, body, headers) = route_request(shared, &req);
                shared.stats.record_status(status);
                if conn
                    .write_response_with_headers(status, body.as_bytes(), keep_alive, &headers)
                    .is_err()
                {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
            Ok(NextRequest::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(NextRequest::Closed) => return,
            Err(HttpError::Malformed(m)) => {
                shared.stats.record_status(400);
                let _ = conn.write_response(400, error_body(&m).as_bytes(), false);
                return;
            }
            Err(HttpError::BodyTooLarge { declared, cap }) => {
                shared.stats.record_status(400);
                let msg = format!("body of {declared} bytes exceeds cap of {cap}");
                let _ = conn.write_response(400, error_body(&msg).as_bytes(), false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

/// Dispatches one request, returning `(status, json_body, headers)`.
fn route_request(shared: &Shared, req: &Request) -> Reply {
    let start = clock::now();
    let (route, outcome) = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/estimate") => (
            Some(Route::Estimate),
            reply2(handle_estimate(shared, &req.body)),
        ),
        ("POST", "/estimate_batch") => (
            Some(Route::EstimateBatch),
            reply2(handle_estimate_batch(shared, &req.body)),
        ),
        ("GET", "/health") => (Some(Route::Health), reply2(handle_health(shared))),
        ("GET", "/ready") => (Some(Route::Ready), reply2(handle_ready(shared))),
        ("GET", "/stats") => (Some(Route::Stats), reply2(handle_stats(shared))),
        ("POST", "/admin/reload") => (
            Some(Route::Reload),
            reply2(handle_reload(shared, &req.body)),
        ),
        ("POST", "/admin/promote") => (Some(Route::Promote), reply2(handle_promote(shared))),
        ("GET", "/admin/fingerprint") => {
            (Some(Route::Fingerprint), reply2(handle_fingerprint(shared)))
        }
        ("POST", "/insert") => (Some(Route::Insert), handle_insert(shared, &req.body)),
        (
            "GET",
            "/estimate" | "/estimate_batch" | "/admin/reload" | "/admin/promote" | "/insert",
        )
        | ("POST", "/health" | "/ready" | "/stats" | "/admin/fingerprint") => (
            None,
            reply(405, error_body("method not allowed for this path")),
        ),
        _ => (None, reply(404, error_body("no such route"))),
    };
    if let Some(r) = route {
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        shared.stats.record_route(r, us);
    }
    outcome
}

/// Lifts a header-less handler result into a [`Reply`].
fn reply2((status, body): (u16, String)) -> Reply {
    reply(status, body)
}

fn error_body(msg: &str) -> String {
    json(&Value::Map(vec![(
        "error".to_string(),
        Value::Str(msg.to_string()),
    )]))
}

/// Renders a Value tree; infallible for trees we build ourselves.
fn json(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| r#"{"error":"serialization failure"}"#.to_string())
}

// cardest-lint: allow(error-taxonomy): the String is a client-facing 400 body; callers never branch on it
fn parse_body(body: &[u8]) -> Result<Value, String> {
    if body.is_empty() {
        return Err("empty body; expected a JSON object".to_string());
    }
    serde_json::from_slice::<Value>(body).map_err(|e| e.to_string())
}

/// Pulls `{"query": [...], "tau": ...}` out of a JSON map.
// cardest-lint: allow(error-taxonomy): the String is a client-facing 400 body; callers never branch on it
fn parse_query_entry(
    entry: &Value,
    what: &str,
    shared: &Shared,
) -> Result<(OwnedQuery, f32), String> {
    let map = entry.expect_map(what).map_err(|e| e.to_string())?;
    let components: Vec<f32> = serde::get_field(map, "query", what).map_err(|e| e.to_string())?;
    let tau: f32 = serde::get_field(map, "tau", what).map_err(|e| e.to_string())?;
    let query = OwnedQuery::from_components(&components, shared.registry.config().repr)?;
    Ok((query, tau))
}

fn handle_estimate(shared: &Shared, body: &[u8]) -> (u16, String) {
    let parsed = parse_body(body).and_then(|v| parse_query_entry(&v, "estimate body", shared));
    let (query, tau) = match parsed {
        Ok(p) => p,
        Err(m) => return (400, error_body(&m)),
    };
    let rx = match shared.coalescer.submit(query, tau) {
        Ok(rx) => rx,
        Err(SubmitError::Overloaded) => {
            return (503, error_body("estimation queue is full; retry later"))
        }
        Err(SubmitError::ShuttingDown) => return (503, error_body("server is shutting down")),
    };
    match rx.recv() {
        Ok(reply) => match reply.result {
            Ok(est) => (
                200,
                json(&Value::Map(vec![
                    ("estimate".to_string(), Value::Float(f64::from(est))),
                    (
                        "model_version".to_string(),
                        Value::UInt(reply.model_version),
                    ),
                ])),
            ),
            Err(e) => (400, error_body(&e.to_string())),
        },
        Err(_) => (500, error_body("estimation pipeline dropped the request")),
    }
}

fn handle_estimate_batch(shared: &Shared, body: &[u8]) -> (u16, String) {
    let parsed = parse_body(body).and_then(|v| {
        let map = v.expect_map("batch body").map_err(|e| e.to_string())?;
        let entries = map
            .iter()
            .find(|(k, _)| k == "queries")
            .ok_or_else(|| "missing field `queries`".to_string())?
            .1
            .expect_seq("queries")
            .map_err(|e| e.to_string())?
            .to_vec();
        entries
            .iter()
            .map(|e| parse_query_entry(e, "batch entry", shared))
            .collect::<Result<Vec<_>, _>>()
    });
    let queries = match parsed {
        Ok(q) => q,
        Err(m) => return (400, error_body(&m)),
    };
    // Batches skip the coalescer — they already amortize; serve directly
    // against the generation pinned for the whole batch.
    let model = shared.registry.active();
    let views: Vec<_> = queries.iter().map(|(q, tau)| (q.view(), *tau)).collect();
    let results = model.guarded.serve_batch(&views);
    let rendered: Vec<Value> = results
        .into_iter()
        .map(|r| match r {
            Ok(est) => Value::Map(vec![("estimate".to_string(), Value::Float(f64::from(est)))]),
            Err(e) => Value::Map(vec![("error".to_string(), Value::Str(e.to_string()))]),
        })
        .collect();
    (
        200,
        json(&Value::Map(vec![
            ("model_version".to_string(), Value::UInt(model.version)),
            ("results".to_string(), Value::Seq(rendered)),
        ])),
    )
}

/// `POST /insert`: durably adds one point to the served dataset. The
/// validate step (dimension, representation, finiteness) runs *before*
/// the WAL append, so a rejected point never reaches disk; a 200 means
/// the point is durable and already routed to its segment.
fn handle_insert(shared: &Shared, body: &[u8]) -> Reply {
    let Some(svc) = &shared.ingest else {
        return reply(404, error_body("ingestion is not enabled on this server"));
    };
    if shared.repl.is_standby() {
        // Writes belong on the primary. `Retry-After: 1` tells polite
        // clients to back off; the body names the primary when known.
        let mut fields = vec![
            (
                "error".to_string(),
                Value::Str("this node is a read-only standby".to_string()),
            ),
            ("role".to_string(), Value::Str("standby".to_string())),
        ];
        if let Some(url) = shared.repl.primary_url() {
            fields.push(("primary".to_string(), Value::Str(url.to_string())));
        }
        return (
            503,
            json(&Value::Map(fields)),
            vec![("retry-after".to_string(), "1".to_string())],
        );
    }
    let parsed = parse_body(body).and_then(|v| {
        let map = v.expect_map("insert body").map_err(|e| e.to_string())?;
        let components: Vec<f32> =
            serde::get_field(map, "point", "insert body").map_err(|e| e.to_string())?;
        OwnedQuery::from_components(&components, shared.registry.config().repr)
    });
    let point = match parsed {
        Ok(p) => p,
        Err(m) => return reply(400, error_body(&m)),
    };
    match svc.insert(&point) {
        Ok((receipt, finetune_scheduled)) => {
            // The dataset grew; the next model swap clamps to the new size.
            shared.registry.set_n_data(receipt.index + 1);
            reply(
                200,
                json(&Value::Map(vec![
                    ("seq".to_string(), Value::UInt(receipt.seq)),
                    ("index".to_string(), Value::UInt(receipt.index as u64)),
                    ("segment".to_string(), Value::UInt(receipt.segment as u64)),
                    (
                        "finetune_scheduled".to_string(),
                        Value::Bool(finetune_scheduled),
                    ),
                ])),
            )
        }
        Err(
            e @ (StoreError::DimensionMismatch { .. }
            | StoreError::ReprMismatch { .. }
            | StoreError::NonFinite { .. }
            | StoreError::OutOfRange { .. }),
        ) => reply(400, error_body(&e.to_string())),
        Err(e) => reply(500, error_body(&e.to_string())),
    }
}

/// `GET /health` — pure *liveness*: the process is up and a model is
/// loaded. Never consults replication; a lagging standby is still alive.
/// Readiness (can this node serve what you're about to ask of it?) is
/// `GET /ready`'s job.
fn handle_health(shared: &Shared) -> (u16, String) {
    let model = shared.registry.active();
    (
        200,
        json(&Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            ("model_version".to_string(), Value::UInt(model.version)),
            ("kind".to_string(), Value::Str(model.kind.clone())),
        ])),
    )
}

/// `GET /ready` — *readiness*: role, replication position, and lag. A
/// standby answers 503 until it is connected to its primary and fully
/// caught up; a primary (or a static read-only server) is always ready.
fn handle_ready(shared: &Shared) -> (u16, String) {
    let role = if shared.repl.is_standby() {
        "standby"
    } else if shared.ingest.is_some() {
        "primary"
    } else {
        "static"
    };
    let mut fields = vec![("role".to_string(), Value::Str(role.to_string()))];
    if let Some(svc) = &shared.ingest {
        fields.push(("last_seq".to_string(), Value::UInt(svc.last_seq())));
    }
    let (status, ready) = if shared.repl.is_standby() {
        match shared.repl.client_status() {
            Some(s) => {
                let connected = s.connected.load(Ordering::Relaxed);
                let lag = s.lag();
                fields.push(("connected".to_string(), Value::Bool(connected)));
                fields.push((
                    "last_applied".to_string(),
                    Value::UInt(s.last_applied.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "primary_head".to_string(),
                    Value::UInt(s.primary_head.load(Ordering::Relaxed)),
                ));
                fields.push(("lag".to_string(), Value::UInt(lag)));
                if connected && lag == 0 {
                    (200, true)
                } else {
                    (503, false)
                }
            }
            // Declared standby but no client attached yet: not ready.
            None => (503, false),
        }
    } else {
        if let Some(stats) = shared.repl.listener_stats() {
            let head = shared.ingest.as_ref().map_or(0, |s| s.last_seq());
            fields.push((
                "standby_sessions".to_string(),
                Value::UInt(stats.active.load(Ordering::Relaxed)),
            ));
            fields.push((
                "standby_acked".to_string(),
                Value::UInt(stats.last_acked.load(Ordering::Relaxed)),
            ));
            fields.push(("standby_lag".to_string(), Value::UInt(stats.lag(head))));
        }
        (200, true)
    };
    fields.insert(0, ("ready".to_string(), Value::Bool(ready)));
    (status, json(&Value::Map(fields)))
}

/// `POST /admin/promote` — standby → writable primary: stop replicating,
/// rebaseline the drift monitor, accept inserts.
fn handle_promote(shared: &Shared) -> (u16, String) {
    let Some(svc) = &shared.ingest else {
        return (404, error_body("this server has no durable store"));
    };
    if !shared.repl.promote() {
        return (
            409,
            json(&Value::Map(vec![
                ("promoted".to_string(), Value::Bool(false)),
                (
                    "error".to_string(),
                    Value::Str("already primary".to_string()),
                ),
            ])),
        );
    }
    svc.rebaseline_monitor();
    shared.registry.set_n_data(svc.dataset_len());
    (
        200,
        json(&Value::Map(vec![
            ("promoted".to_string(), Value::Bool(true)),
            ("role".to_string(), Value::Str("primary".to_string())),
            ("last_seq".to_string(), Value::UInt(svc.last_seq())),
        ])),
    )
}

/// `GET /admin/fingerprint` — the state fingerprint the failover runbook
/// compares across nodes (bit-identical state ⇔ equal fingerprints).
fn handle_fingerprint(shared: &Shared) -> (u16, String) {
    let Some(svc) = &shared.ingest else {
        return (404, error_body("this server has no durable store"));
    };
    match svc.fingerprint() {
        Ok(fp) => (
            200,
            json(&Value::Map(vec![
                ("fingerprint".to_string(), Value::UInt(fp)),
                ("last_seq".to_string(), Value::UInt(svc.last_seq())),
            ])),
        ),
        Err(e) => (500, error_body(&e.to_string())),
    }
}

fn handle_stats(shared: &Shared) -> (u16, String) {
    use serde::Serialize;
    let model = shared.registry.active();
    let guard = shared.registry.stats();
    let reloads = shared.registry.reload_stats();
    let s = &shared.stats;
    let routes: Vec<(String, Value)> = Route::ALL
        .iter()
        .map(|r| (r.name().to_string(), s.route(*r).snapshot().serialize()))
        .collect();
    let ingest = match &shared.ingest {
        None => Value::Map(vec![("enabled".to_string(), Value::Bool(false))]),
        Some(svc) => {
            let i = svc.snapshot();
            Value::Map(vec![
                ("enabled".to_string(), Value::Bool(true)),
                ("inserts".to_string(), Value::UInt(i.inserts)),
                ("last_seq".to_string(), Value::UInt(i.last_seq)),
                ("wal_bytes".to_string(), Value::UInt(i.wal_bytes)),
                ("live_rows".to_string(), Value::UInt(i.live_rows)),
                ("drift_checks".to_string(), Value::UInt(i.drift_checks)),
                ("drift_triggers".to_string(), Value::UInt(i.drift_triggers)),
                ("finetunes_ok".to_string(), Value::UInt(i.finetunes_ok)),
                (
                    "finetunes_failed".to_string(),
                    Value::UInt(i.finetunes_failed),
                ),
                (
                    "finetune_retries".to_string(),
                    Value::UInt(i.finetune_retries),
                ),
            ])
        }
    };
    let replication = {
        let mut fields = vec![(
            "role".to_string(),
            Value::Str(
                if shared.repl.is_standby() {
                    "standby"
                } else {
                    "primary"
                }
                .to_string(),
            ),
        )];
        if let Some(s) = shared.repl.client_status() {
            fields.push((
                "connected".to_string(),
                Value::Bool(s.connected.load(Ordering::Relaxed)),
            ));
            fields.push((
                "last_applied".to_string(),
                Value::UInt(s.last_applied.load(Ordering::Relaxed)),
            ));
            fields.push(("lag".to_string(), Value::UInt(s.lag())));
            fields.push((
                "records_applied".to_string(),
                Value::UInt(s.records_applied.load(Ordering::Relaxed)),
            ));
            fields.push((
                "snapshots_installed".to_string(),
                Value::UInt(s.snapshots_installed.load(Ordering::Relaxed)),
            ));
            fields.push((
                "reconnects".to_string(),
                Value::UInt(s.reconnects.load(Ordering::Relaxed)),
            ));
            fields.push((
                "corrupt_frames".to_string(),
                Value::UInt(s.corrupt_frames.load(Ordering::Relaxed)),
            ));
        }
        if let Some(p) = shared.repl.listener_stats() {
            let head = shared.ingest.as_ref().map_or(0, |s| s.last_seq());
            fields.push((
                "standby_sessions".to_string(),
                Value::UInt(p.sessions.load(Ordering::Relaxed)),
            ));
            fields.push((
                "standby_active".to_string(),
                Value::UInt(p.active.load(Ordering::Relaxed)),
            ));
            fields.push((
                "standby_acked".to_string(),
                Value::UInt(p.last_acked.load(Ordering::Relaxed)),
            ));
            fields.push(("standby_lag".to_string(), Value::UInt(p.lag(head))));
            fields.push((
                "records_sent".to_string(),
                Value::UInt(p.records_sent.load(Ordering::Relaxed)),
            ));
            fields.push((
                "snapshots_sent".to_string(),
                Value::UInt(p.snapshots_sent.load(Ordering::Relaxed)),
            ));
        }
        Value::Map(fields)
    };
    let body = Value::Map(vec![
        (
            "model".to_string(),
            Value::Map(vec![
                ("version".to_string(), Value::UInt(model.version)),
                ("kind".to_string(), Value::Str(model.kind.clone())),
                (
                    "source".to_string(),
                    Value::Str(model.source.display().to_string()),
                ),
            ]),
        ),
        ("routes".to_string(), Value::Map(routes)),
        ("ingest".to_string(), ingest),
        ("replication".to_string(), replication),
        (
            "guard".to_string(),
            Value::Map(vec![
                ("served".to_string(), Value::UInt(guard.served as u64)),
                ("rejected".to_string(), Value::UInt(guard.rejected as u64)),
                ("fallbacks".to_string(), Value::UInt(guard.fallbacks as u64)),
                ("clamped".to_string(), Value::UInt(guard.clamped as u64)),
                (
                    "monotone_fixes".to_string(),
                    Value::UInt(guard.monotone_fixes as u64),
                ),
            ]),
        ),
        (
            "reloads".to_string(),
            Value::Map(vec![
                ("ok".to_string(), Value::UInt(reloads.ok)),
                ("rejected".to_string(), Value::UInt(reloads.rejected)),
                (
                    "retired_generations".to_string(),
                    Value::UInt(shared.registry.retired_generations() as u64),
                ),
            ]),
        ),
        (
            "coalesce".to_string(),
            Value::Map(vec![
                (
                    "batches".to_string(),
                    Value::UInt(s.coalesced_batches.load(Ordering::Relaxed)),
                ),
                (
                    "queries".to_string(),
                    Value::UInt(s.coalesced_queries.load(Ordering::Relaxed)),
                ),
                (
                    "max_batch".to_string(),
                    Value::UInt(s.coalesced_max_batch.load(Ordering::Relaxed)),
                ),
                (
                    "queued".to_string(),
                    Value::UInt(shared.coalescer.queued() as u64),
                ),
            ]),
        ),
        (
            "http".to_string(),
            Value::Map(vec![
                (
                    "400".to_string(),
                    Value::UInt(s.http_400.load(Ordering::Relaxed)),
                ),
                (
                    "404".to_string(),
                    Value::UInt(s.http_404.load(Ordering::Relaxed)),
                ),
                (
                    "409".to_string(),
                    Value::UInt(s.http_409.load(Ordering::Relaxed)),
                ),
                (
                    "500".to_string(),
                    Value::UInt(s.http_500.load(Ordering::Relaxed)),
                ),
                (
                    "503".to_string(),
                    Value::UInt(s.http_503.load(Ordering::Relaxed)),
                ),
                (
                    "connections_rejected".to_string(),
                    Value::UInt(s.connections_rejected.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ]);
    (200, json(&body))
}

fn handle_reload(shared: &Shared, body: &[u8]) -> (u16, String) {
    // Path is optional: an empty body (or missing field) re-reads the
    // active generation's source file — the "the artifact on disk was
    // retrained in place" workflow.
    let path = if body.is_empty() {
        None
    } else {
        match parse_body(body).and_then(|v| {
            let map = v.expect_map("reload body").map_err(|e| e.to_string())?;
            match map.iter().find(|(k, _)| k == "path") {
                Some((_, Value::Str(p))) => Ok(Some(std::path::PathBuf::from(p))),
                Some((_, other)) => Err(format!("`path` must be a string, found {other:?}")),
                None => Ok(None),
            }
        }) {
            Ok(p) => p,
            Err(m) => return (400, error_body(&m)),
        }
    };
    let path = path.unwrap_or_else(|| shared.registry.active().source.clone());
    match shared.registry.reload(&path) {
        Ok(version) => (
            200,
            json(&Value::Map(vec![
                ("reloaded".to_string(), Value::Bool(true)),
                ("model_version".to_string(), Value::UInt(version)),
                ("path".to_string(), Value::Str(path.display().to_string())),
            ])),
        ),
        Err(e) => {
            // The old model is still serving — tell the caller which one.
            let current = shared.registry.active().version;
            (
                409,
                json(&Value::Map(vec![
                    ("reloaded".to_string(), Value::Bool(false)),
                    ("error".to_string(), Value::Str(e.to_string())),
                    ("model_version".to_string(), Value::UInt(current)),
                ])),
            )
        }
    }
}
