//! Lock-free serving metrics: per-route latency histograms and HTTP
//! outcome counters.
//!
//! Latencies land in power-of-two microsecond buckets (`[2^k, 2^(k+1))`),
//! so recording is one atomic increment and quantiles come from a bucket
//! scan — coarse (upper-edge, 2× resolution) but allocation-free and safe
//! to read while every worker is writing. The load generator computes its
//! exact percentiles client-side; these histograms are the *server's*
//! always-on view at `GET /stats`.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: covers up to ~2^39 µs (~6 days).
const BUCKETS: usize = 40;

/// A histogram of microsecond latencies in power-of-two buckets.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Upper edge (µs) of the bucket containing quantile `q` ∈ [0, 1].
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket idx holds values in [2^(idx-1), 2^idx).
                return 1u64 << idx;
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Point-in-time summary for `/stats`.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
            },
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Serializable summary of one histogram.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySnapshot {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// The instrumented routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Estimate,
    EstimateBatch,
    Health,
    Ready,
    Stats,
    Reload,
    Insert,
    Promote,
    Fingerprint,
}

impl Route {
    pub const ALL: [Route; 9] = [
        Route::Estimate,
        Route::EstimateBatch,
        Route::Health,
        Route::Ready,
        Route::Stats,
        Route::Reload,
        Route::Insert,
        Route::Promote,
        Route::Fingerprint,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Route::Estimate => "estimate",
            Route::EstimateBatch => "estimate_batch",
            Route::Health => "health",
            Route::Ready => "ready",
            Route::Stats => "stats",
            Route::Reload => "reload",
            Route::Insert => "insert",
            Route::Promote => "promote",
            Route::Fingerprint => "fingerprint",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Estimate => 0,
            Route::EstimateBatch => 1,
            Route::Health => 2,
            Route::Ready => 3,
            Route::Stats => 4,
            Route::Reload => 5,
            Route::Insert => 6,
            Route::Promote => 7,
            Route::Fingerprint => 8,
        }
    }
}

/// All serving counters, shared across worker threads.
#[derive(Default)]
pub struct ServerStats {
    routes: [LatencyHistogram; 9],
    pub http_400: AtomicU64,
    pub http_404: AtomicU64,
    pub http_409: AtomicU64,
    pub http_503: AtomicU64,
    pub http_500: AtomicU64,
    /// Batches flushed by the coalescer.
    pub coalesced_batches: AtomicU64,
    /// Single-query requests that went through the coalescer.
    pub coalesced_queries: AtomicU64,
    /// Largest batch a single flush carried.
    pub coalesced_max_batch: AtomicU64,
    /// Connections turned away at the door (admission control).
    pub connections_rejected: AtomicU64,
}

impl ServerStats {
    /// Records one request's latency under its route.
    pub fn record_route(&self, route: Route, us: u64) {
        self.routes[route.index()].record(us);
    }

    /// The histogram for one route.
    pub fn route(&self, route: Route) -> &LatencyHistogram {
        &self.routes[route.index()]
    }

    /// Bumps the counter for a non-2xx status (no-op for 2xx).
    pub fn record_status(&self, status: u16) {
        match status {
            400 => &self.http_400,
            404 | 405 => &self.http_404,
            409 => &self.http_409,
            503 => &self.http_503,
            500 => &self.http_500,
            _ => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced flush of `n` queries.
    pub fn record_coalesce(&self, n: usize) {
        self.coalesced_batches.fetch_add(1, Ordering::Relaxed);
        self.coalesced_queries
            .fetch_add(n as u64, Ordering::Relaxed);
        self.coalesced_max_batch
            .fetch_max(n as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_bucket_edges() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram answers 0");
        for _ in 0..99 {
            h.record(100); // bucket [64, 128) → edge 128
        }
        h.record(100_000); // bucket edge 131072
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 128);
        assert_eq!(s.p99_us, 128);
        assert_eq!(h.quantile_us(1.0), 131_072);
        assert_eq!(s.max_us, 100_000);
        assert!((s.mean_us - (99.0 * 100.0 + 100_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.quantile_us(0.5), 1);
    }

    #[test]
    fn status_counters_route_correctly() {
        let s = ServerStats::default();
        s.record_status(400);
        s.record_status(405);
        s.record_status(503);
        s.record_status(200); // no-op
        assert_eq!(s.http_400.load(Ordering::Relaxed), 1);
        assert_eq!(s.http_404.load(Ordering::Relaxed), 1);
        assert_eq!(s.http_503.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn coalesce_counters_accumulate() {
        let s = ServerStats::default();
        s.record_coalesce(3);
        s.record_coalesce(7);
        assert_eq!(s.coalesced_batches.load(Ordering::Relaxed), 2);
        assert_eq!(s.coalesced_queries.load(Ordering::Relaxed), 10);
        assert_eq!(s.coalesced_max_batch.load(Ordering::Relaxed), 7);
    }
}
