//! Serving-side online ingestion: the durable store plus the drift
//! monitor, with fine-tunes pushed off the request path.
//!
//! The request thread does only the durable part of an insert — validate,
//! WAL append, pure apply (see `cardest_store::DurableIngest`) — and a
//! drift *check* every `check_every` inserts (one probe-set evaluation).
//! When a check fires, the affected segment ids are queued and a single
//! background worker does the expensive half: fine-tune the fired locals
//! plus the global model, save the result as a GL artifact, snapshot the
//! store (making the new weights durable), rebaseline the monitor, and
//! hot-swap the serving model through [`ModelRegistry::reload`] — so
//! in-flight estimates never observe a half-tuned model; they keep the
//! generation they started with until the swap.
//!
//! Lock order: `inner` (store + monitor) is never held while calling into
//! the registry, and the `pending` queue lock never nests inside `inner`
//! on the worker side.

use crate::model::OwnedQuery;
use crate::registry::ModelRegistry;
use cardest_core::drift::{DriftConfig, DriftMonitor};
use cardest_store::{DurableIngest, InsertReceipt, StoreError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Store + monitor, mutated together under one lock: a drift check must
/// see exactly the state the inserts left behind.
struct Inner {
    store: DurableIngest,
    monitor: DriftMonitor,
}

/// Point-in-time ingestion counters for `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Inserts acknowledged since startup.
    pub inserts: u64,
    /// Sequence number of the last durable WAL record.
    pub last_seq: u64,
    /// Current WAL size in bytes.
    pub wal_bytes: u64,
    /// Live (non-tombstoned) dataset rows.
    pub live_rows: u64,
    /// Drift checks run.
    pub drift_checks: u64,
    /// Drift checks that fired at least one segment.
    pub drift_triggers: u64,
    /// Background fine-tunes that completed and hot-swapped.
    pub finetunes_ok: u64,
    /// Background fine-tunes that failed (artifact, snapshot, or reload).
    pub finetunes_failed: u64,
}

/// The mutable half of the server: durable inserts with drift-triggered
/// background fine-tuning.
pub struct IngestService {
    inner: Mutex<Inner>,
    /// Segment ids awaiting a background fine-tune (deduplicated).
    pending: Mutex<Vec<usize>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Where the worker saves fine-tuned GL artifacts for hot reload.
    artifact_path: PathBuf,
    inserts: AtomicU64,
    finetunes_ok: AtomicU64,
    finetunes_failed: AtomicU64,
}

impl IngestService {
    /// Wraps an opened (or freshly created) durable store. The drift
    /// monitor baselines against the store's current state; `artifact_path`
    /// is where fine-tuned models land before each hot swap.
    pub fn new(store: DurableIngest, drift: DriftConfig, artifact_path: PathBuf) -> Arc<Self> {
        let monitor = DriftMonitor::new(store.estimator(), drift);
        Arc::new(IngestService {
            inner: Mutex::new(Inner { store, monitor }),
            pending: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            artifact_path,
            inserts: AtomicU64::new(0),
            finetunes_ok: AtomicU64::new(0),
            finetunes_failed: AtomicU64::new(0),
        })
    }

    /// Durably inserts one point and runs a drift check when one is due.
    /// Returns the store's receipt plus whether this insert scheduled a
    /// background fine-tune.
    pub fn insert(&self, point: &OwnedQuery) -> Result<(InsertReceipt, bool), StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *guard;
        let receipt = inner.store.insert(point.view())?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut scheduled = false;
        if inner.monitor.note_inserts(1) {
            let verdict = inner.monitor.check(inner.store.estimator());
            if verdict.triggered() {
                drop(guard);
                let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
                for s in verdict.fired {
                    if !pending.contains(&s) {
                        pending.push(s);
                    }
                }
                drop(pending);
                self.wake.notify_one();
                scheduled = true;
            }
        }
        Ok((receipt, scheduled))
    }

    /// Current counters.
    pub fn snapshot(&self) -> IngestSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        IngestSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            last_seq: inner.store.last_seq(),
            wal_bytes: inner.store.wal_len_bytes(),
            live_rows: inner.store.estimator().live_len() as u64,
            drift_checks: inner.monitor.checks(),
            drift_triggers: inner.monitor.triggers(),
            finetunes_ok: self.finetunes_ok.load(Ordering::Relaxed),
            finetunes_failed: self.finetunes_failed.load(Ordering::Relaxed),
        }
    }

    /// Dataset rows including tombstones — the guard clamp the registry
    /// should carry into its next generation.
    pub fn dataset_len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .estimator()
            .dataset_len()
    }

    /// Writes a snapshot covering everything applied so far (exposed for
    /// orderly shutdown; inserts also auto-snapshot per `StoreConfig`).
    pub fn snapshot_store(&self) -> Result<(), StoreError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .snapshot_now()
    }

    /// Asks the background worker to exit at its next wakeup.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Spawns the background fine-tune worker. One worker per service:
    /// fine-tunes are serialized, each ending in a snapshot + hot swap.
    pub(crate) fn spawn_worker(
        self: &Arc<Self>,
        registry: Arc<ModelRegistry>,
    ) -> std::io::Result<JoinHandle<()>> {
        let svc = Arc::clone(self);
        std::thread::Builder::new()
            .name("cardest-finetune".to_string())
            .spawn(move || svc.worker_loop(&registry))
    }

    fn worker_loop(&self, registry: &Arc<ModelRegistry>) {
        loop {
            let segments = {
                let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if !pending.is_empty() {
                        break std::mem::take(&mut *pending);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let (next, _) = self
                        .wake
                        .wait_timeout(pending, Duration::from_millis(100))
                        .unwrap_or_else(PoisonError::into_inner);
                    pending = next;
                }
            };
            match self.finetune_and_persist(&segments) {
                Ok(n_data) => {
                    // Publish the grown dataset size, then swap. A reload
                    // failure leaves the old model serving — correct, just
                    // staler — so it only bumps the failure counter.
                    registry.set_n_data(n_data);
                    match registry.reload(&self.artifact_path) {
                        Ok(_) => self.finetunes_ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => self.finetunes_failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
                Err(_) => {
                    self.finetunes_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The expensive half, under the store lock: fine-tune the fired
    /// locals + global, save the artifact, snapshot (weights become
    /// durable), rebaseline the monitor. Returns the dataset size for the
    /// registry's next guard clamp.
    fn finetune_and_persist(&self, segments: &[usize]) -> Result<usize, StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *guard;
        inner.store.estimator_mut().finetune(segments);
        inner
            .store
            .estimator()
            .gl()
            .save_artifact(&self.artifact_path)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        inner.store.snapshot_now()?;
        inner.monitor.rebaseline(inner.store.estimator());
        Ok(inner.store.estimator().dataset_len())
    }
}
