//! Serving-side online ingestion: the durable store plus the drift
//! monitor, with fine-tunes pushed off the request path.
//!
//! The request thread does only the durable part of an insert — validate,
//! WAL append, pure apply (see `cardest_store::DurableIngest`) — and a
//! drift *check* every `check_every` inserts (one probe-set evaluation).
//! When a check fires, the affected segment ids are queued and a single
//! background worker does the expensive half: fine-tune the fired locals
//! plus the global model, save the result as a GL artifact, snapshot the
//! store (making the new weights durable), rebaseline the monitor, and
//! hot-swap the serving model through [`ModelRegistry::reload`] — so
//! in-flight estimates never observe a half-tuned model; they keep the
//! generation they started with until the swap.
//!
//! Lock order: `inner` (store + monitor) is never held while calling into
//! the registry, and the `pending` queue lock never nests inside `inner`
//! on the worker side.

use crate::model::OwnedQuery;
use crate::registry::ModelRegistry;
use cardest_core::backoff::{Backoff, BackoffConfig};
use cardest_core::drift::{DriftConfig, DriftMonitor};
use cardest_store::replicate::{ReplicaSource, StandbyTarget};
use cardest_store::wal::WalRecord;
use cardest_store::{DurableIngest, InsertReceipt, ReplicatedApply, ReplicationFetch, StoreError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Store + monitor, mutated together under one lock: a drift check must
/// see exactly the state the inserts left behind.
struct Inner {
    store: DurableIngest,
    monitor: DriftMonitor,
}

/// Point-in-time ingestion counters for `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Inserts acknowledged since startup.
    pub inserts: u64,
    /// Sequence number of the last durable WAL record.
    pub last_seq: u64,
    /// Current WAL size in bytes.
    pub wal_bytes: u64,
    /// Live (non-tombstoned) dataset rows.
    pub live_rows: u64,
    /// Drift checks run.
    pub drift_checks: u64,
    /// Drift checks that fired at least one segment.
    pub drift_triggers: u64,
    /// Background fine-tunes that completed and hot-swapped.
    pub finetunes_ok: u64,
    /// Background fine-tunes that failed (artifact, snapshot, or reload).
    pub finetunes_failed: u64,
    /// Fine-tune attempts retried with backoff before succeeding/failing.
    pub finetune_retries: u64,
}

/// The mutable half of the server: durable inserts with drift-triggered
/// background fine-tuning.
pub struct IngestService {
    inner: Mutex<Inner>,
    /// Notified (with `inner`) whenever the WAL head advances — the
    /// replication listener's `wait_growth` parks here.
    grew: Condvar,
    /// Segment ids awaiting a background fine-tune (deduplicated).
    pending: Mutex<Vec<usize>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Where the worker saves fine-tuned GL artifacts for hot reload.
    artifact_path: PathBuf,
    inserts: AtomicU64,
    finetunes_ok: AtomicU64,
    finetunes_failed: AtomicU64,
    /// Fine-tune attempts that failed and were retried with backoff.
    finetune_retries: AtomicU64,
}

impl IngestService {
    /// Wraps an opened (or freshly created) durable store. The drift
    /// monitor baselines against the store's current state; `artifact_path`
    /// is where fine-tuned models land before each hot swap.
    pub fn new(store: DurableIngest, drift: DriftConfig, artifact_path: PathBuf) -> Arc<Self> {
        let monitor = DriftMonitor::new(store.estimator(), drift);
        Arc::new(IngestService {
            inner: Mutex::new(Inner { store, monitor }),
            grew: Condvar::new(),
            pending: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            artifact_path,
            inserts: AtomicU64::new(0),
            finetunes_ok: AtomicU64::new(0),
            finetunes_failed: AtomicU64::new(0),
            finetune_retries: AtomicU64::new(0),
        })
    }

    /// Durably inserts one point and runs a drift check when one is due.
    /// Returns the store's receipt plus whether this insert scheduled a
    /// background fine-tune.
    pub fn insert(&self, point: &OwnedQuery) -> Result<(InsertReceipt, bool), StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *guard;
        let receipt = inner.store.insert(point.view())?;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.grew.notify_all();
        let mut scheduled = false;
        if inner.monitor.note_inserts(1) {
            let verdict = inner.monitor.check(inner.store.estimator());
            if verdict.triggered() {
                drop(guard);
                let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
                for s in verdict.fired {
                    if !pending.contains(&s) {
                        pending.push(s);
                    }
                }
                drop(pending);
                self.wake.notify_one();
                scheduled = true;
            }
        }
        Ok((receipt, scheduled))
    }

    /// Current counters.
    pub fn snapshot(&self) -> IngestSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        IngestSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            last_seq: inner.store.last_seq(),
            wal_bytes: inner.store.wal_len_bytes(),
            live_rows: inner.store.estimator().live_len() as u64,
            drift_checks: inner.monitor.checks(),
            drift_triggers: inner.monitor.triggers(),
            finetunes_ok: self.finetunes_ok.load(Ordering::Relaxed),
            finetunes_failed: self.finetunes_failed.load(Ordering::Relaxed),
            finetune_retries: self.finetune_retries.load(Ordering::Relaxed),
        }
    }

    /// Dataset rows including tombstones — the guard clamp the registry
    /// should carry into its next generation.
    pub fn dataset_len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .estimator()
            .dataset_len()
    }

    /// Writes a snapshot covering everything applied so far (exposed for
    /// orderly shutdown; inserts also auto-snapshot per `StoreConfig`).
    pub fn snapshot_store(&self) -> Result<(), StoreError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .snapshot_now()
    }

    /// Sequence number of the last durable WAL record.
    pub fn last_seq(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .last_seq()
    }

    /// FNV-1a fingerprint of the full serialized state — the value the
    /// failover runbook compares across primary and standby.
    pub fn fingerprint(&self) -> Result<u64, StoreError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .fingerprint()
    }

    /// Where fine-tuned artifacts land (shared with the standby bridge,
    /// which reuses the path when installing a bootstrap snapshot).
    pub fn artifact_path(&self) -> &Path {
        &self.artifact_path
    }

    /// Applies one record streamed from a primary (standby path). No
    /// drift checks run — a standby never fine-tunes; its monitor
    /// rebaselines at promote time instead.
    pub fn apply_replicated(&self, rec: &WalRecord) -> Result<ReplicatedApply, StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let applied = guard.store.apply_replicated(rec)?;
        if matches!(applied, ReplicatedApply::Applied) {
            self.grew.notify_all();
        }
        Ok(applied)
    }

    /// Installs a bootstrap snapshot from a primary (standby path).
    pub fn install_replicated_snapshot(&self, seq: u64, state: &[u8]) -> Result<(), StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        guard.store.install_snapshot(seq, state)?;
        self.grew.notify_all();
        Ok(())
    }

    /// Promotion: rebaseline the drift monitor against the replicated
    /// state so the new primary's first drift check measures drift since
    /// *now*, not since the standby was started.
    pub fn rebaseline_monitor(&self) {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *guard;
        inner.monitor.rebaseline(inner.store.estimator());
    }

    /// Asks the background worker to exit at its next wakeup.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    /// Spawns the background fine-tune worker. One worker per service:
    /// fine-tunes are serialized, each ending in a snapshot + hot swap.
    pub(crate) fn spawn_worker(
        self: &Arc<Self>,
        registry: Arc<ModelRegistry>,
    ) -> std::io::Result<JoinHandle<()>> {
        let svc = Arc::clone(self);
        std::thread::Builder::new()
            .name("cardest-finetune".to_string())
            .spawn(move || svc.worker_loop(&registry))
    }

    fn worker_loop(&self, registry: &Arc<ModelRegistry>) {
        // Persist failures (artifact or snapshot I/O) are usually
        // transient — a full disk being cleared, a slow NFS mount — so
        // the worker retries the same segment set through the shared
        // backoff policy before declaring the fine-tune failed.
        let mut backoff = Backoff::new(
            BackoffConfig {
                base: Duration::from_millis(200),
                max: Duration::from_secs(5),
                jitter: 0.5,
                max_attempts: 4,
            },
            0xF1E7_0B0F,
        );
        loop {
            let segments = {
                let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if !pending.is_empty() {
                        break std::mem::take(&mut *pending);
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let (next, _) = self
                        .wake
                        .wait_timeout(pending, Duration::from_millis(100))
                        .unwrap_or_else(PoisonError::into_inner);
                    pending = next;
                }
            };
            match self.finetune_and_persist(&segments) {
                Ok(n_data) => {
                    backoff.reset();
                    // Publish the grown dataset size, then swap. A reload
                    // failure leaves the old model serving — correct, just
                    // staler — so it only bumps the failure counter.
                    registry.set_n_data(n_data);
                    match registry.reload(&self.artifact_path) {
                        Ok(_) => self.finetunes_ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => self.finetunes_failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
                Err(_) => match backoff.next_delay() {
                    Some(delay) => {
                        self.finetune_retries.fetch_add(1, Ordering::Relaxed);
                        self.requeue(&segments);
                        self.sleep_stop_aware(delay);
                    }
                    None => {
                        // Budget exhausted: count the failure, drop the
                        // batch, and start fresh for the next trigger.
                        backoff.reset();
                        self.finetunes_failed.fetch_add(1, Ordering::Relaxed);
                    }
                },
            }
        }
    }

    /// Puts a failed batch back at the head of the queue (deduplicated),
    /// so the retry runs before any newly-fired segments.
    fn requeue(&self, segments: &[usize]) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        let mut merged: Vec<usize> = segments.to_vec();
        for s in pending.drain(..) {
            if !merged.contains(&s) {
                merged.push(s);
            }
        }
        *pending = merged;
    }

    /// Sleeps `delay` in slices, returning early if shutdown was asked.
    fn sleep_stop_aware(&self, delay: Duration) {
        let mut remaining = delay;
        while !remaining.is_zero() && !self.stop.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }

    /// The expensive half, under the store lock: fine-tune the fired
    /// locals + global, save the artifact, snapshot (weights become
    /// durable), rebaseline the monitor. Returns the dataset size for the
    /// registry's next guard clamp.
    fn finetune_and_persist(&self, segments: &[usize]) -> Result<usize, StoreError> {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let inner = &mut *guard;
        inner.store.estimator_mut().finetune(segments);
        inner
            .store
            .estimator()
            .gl()
            .save_artifact(&self.artifact_path)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        inner.store.snapshot_now()?;
        inner.monitor.rebaseline(inner.store.estimator());
        Ok(inner.store.estimator().dataset_len())
    }
}

/// The primary side of replication: the listener streams this service's
/// WAL to connected standbys.
impl ReplicaSource for IngestService {
    fn head_seq(&self) -> u64 {
        self.last_seq()
    }

    fn fetch_since(&self, after_seq: u64, max: usize) -> Result<ReplicationFetch, StoreError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .store
            .replication_fetch(after_seq, max)
    }

    fn wait_growth(&self, after_seq: u64, timeout: Duration) -> u64 {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.store.last_seq() > after_seq {
            return guard.store.last_seq();
        }
        let (guard, _) = self
            .grew
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.store.last_seq()
    }
}

/// The standby side of replication: applies the primary's stream into the
/// local [`IngestService`] and keeps the serving registry in step — the
/// dataset-size clamp follows every applied insert, and a bootstrap
/// snapshot re-publishes the primary's weights through a hot reload.
pub struct StandbyBridge {
    svc: Arc<IngestService>,
    registry: Arc<ModelRegistry>,
}

impl StandbyBridge {
    pub fn new(svc: Arc<IngestService>, registry: Arc<ModelRegistry>) -> Arc<Self> {
        Arc::new(StandbyBridge { svc, registry })
    }
}

impl StandbyTarget for StandbyBridge {
    fn last_applied(&self) -> u64 {
        self.svc.last_seq()
    }

    fn apply(&self, rec: &WalRecord) -> Result<ReplicatedApply, StoreError> {
        let applied = self.svc.apply_replicated(rec)?;
        if matches!(applied, ReplicatedApply::Applied) {
            self.registry.set_n_data(self.svc.dataset_len());
        }
        Ok(applied)
    }

    fn install_snapshot(&self, seq: u64, state: &[u8]) -> Result<(), StoreError> {
        self.svc.install_replicated_snapshot(seq, state)?;
        self.registry.set_n_data(self.svc.dataset_len());
        // The snapshot carries the primary's (possibly fine-tuned)
        // weights: publish them. A reload failure keeps the old model
        // serving — the data is installed either way.
        let save = {
            let guard = self
                .svc
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard
                .store
                .estimator()
                .gl()
                .save_artifact(self.svc.artifact_path())
        };
        if save.is_ok() {
            let _ = self.registry.reload(self.svc.artifact_path());
        }
        Ok(())
    }
}
