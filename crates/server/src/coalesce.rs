//! Request coalescing: single-query requests queue briefly and flush as
//! one `estimate_batch` call.
//!
//! The batched serving path amortizes per-call overhead (one guard pass,
//! one monomorphized batch kernel), so under concurrent single-query load
//! it is cheaper to hold each request for a sub-millisecond window and
//! serve the accumulated queue in one `serve_batch` than to serve each
//! alone. The trade is bounded, explicit latency: the *first* query in a
//! window waits at most `window`; later arrivals wait less; a full batch
//! flushes immediately.
//!
//! Admission control lives here too: the queue is bounded at `cap`, and a
//! submit against a full queue fails fast with [`SubmitError::Overloaded`]
//! (the HTTP layer turns that into a 503) instead of letting latency grow
//! without bound.
//!
//! Shutdown never drops a request: the batcher drains whatever is queued
//! before exiting, so every submitted query gets a reply.

use cardest_data::validate::CardestError;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::clock;
use crate::model::OwnedQuery;
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;

/// Tuning knobs for the coalescing queue.
#[derive(Debug, Clone)]
pub struct CoalesceConfig {
    /// Longest a query waits for batch-mates before the flush.
    pub window: Duration,
    /// Flush immediately once this many queries are queued.
    pub max_batch: usize,
    /// Queue bound — submits beyond this are rejected (admission control).
    pub cap: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            window: Duration::from_micros(500),
            max_batch: 64,
            cap: 1024,
        }
    }
}

/// What a coalesced query gets back.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceReply {
    pub result: Result<f32, CardestError>,
    /// Generation that actually served the query (it may differ from the
    /// generation active at submit time if a reload raced the window).
    pub model_version: u64,
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed load now rather than queue latency.
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
}

struct Pending {
    query: OwnedQuery,
    tau: f32,
    tx: SyncSender<CoalesceReply>,
}

struct State {
    queue: Vec<Pending>,
    shutdown: bool,
}

/// The shared coalescing queue plus the batcher that drains it.
pub struct Coalescer {
    cfg: CoalesceConfig,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    state: Mutex<State>,
    wake: Condvar,
}

impl Coalescer {
    pub fn new(
        cfg: CoalesceConfig,
        registry: Arc<ModelRegistry>,
        stats: Arc<ServerStats>,
    ) -> Arc<Self> {
        Arc::new(Coalescer {
            cfg,
            registry,
            stats,
            state: Mutex::new(State {
                queue: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        })
    }

    /// Enqueues one query and returns the channel its reply will arrive
    /// on. The caller blocks on `recv()`; the batcher always sends exactly
    /// one reply per accepted submit, including during shutdown drain.
    pub fn submit(
        &self,
        query: OwnedQuery,
        tau: f32,
    ) -> Result<Receiver<CoalesceReply>, SubmitError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() >= self.cfg.cap {
                return Err(SubmitError::Overloaded);
            }
            st.queue.push(Pending { query, tau, tx });
        }
        self.wake.notify_one();
        Ok(rx)
    }

    /// Spawns the batcher thread (fails only on OS thread exhaustion).
    /// Call [`Coalescer::shutdown`] to stop it; it drains the queue before
    /// exiting.
    pub fn spawn_batcher(self: &Arc<Self>) -> std::io::Result<JoinHandle<()>> {
        let this = Arc::clone(self);
        std::thread::Builder::new()
            .name("cardest-batcher".to_string())
            .spawn(move || this.run())
    }

    /// Signals the batcher to drain and exit.
    pub fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = true;
        self.wake.notify_all();
    }

    fn run(&self) {
        loop {
            let batch = {
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                // Sleep until the first query (or shutdown) arrives.
                while st.queue.is_empty() && !st.shutdown {
                    st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                if st.queue.is_empty() && st.shutdown {
                    return;
                }
                // First query seen: hold the window open for batch-mates,
                // flushing early if the batch fills or shutdown begins.
                let deadline = clock::now() + self.cfg.window;
                while st.queue.len() < self.cfg.max_batch && !st.shutdown {
                    let now = clock::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, timed_out) = self
                        .wake
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = next;
                    if timed_out.timed_out() {
                        break;
                    }
                }
                let take = st.queue.len().min(self.cfg.max_batch);
                st.queue.drain(..take).collect::<Vec<Pending>>()
            };
            self.flush(batch);
        }
    }

    fn flush(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let model = self.registry.active();
        let queries: Vec<_> = batch.iter().map(|p| (p.query.view(), p.tau)).collect();
        let results = model.guarded.serve_batch(&queries);
        self.stats.record_coalesce(batch.len());
        for (p, result) in batch.into_iter().zip(results) {
            // A closed receiver means the client hung up; nothing to do.
            let _ = p.tx.send(CoalesceReply {
                result,
                model_version: model.version,
            });
        }
    }

    /// Number of queries waiting right now (diagnostic).
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Copy of the active tuning knobs.
    pub fn config(&self) -> &CoalesceConfig {
        &self.cfg
    }
}

impl Drop for Coalescer {
    fn drop(&mut self) {
        // Belt-and-braces: if the owner forgot to call shutdown, wake the
        // batcher so it can observe the flag and exit. (The batcher holds
        // its own Arc, so by the time Drop runs it has already exited.)
        self.shutdown();
    }
}
