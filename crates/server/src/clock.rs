//! The serving layer's single wall-clock access point.
//!
//! Latency histograms, coalescing windows, and socket deadlines are
//! wall-clock by definition — nothing on the training path reads them, so
//! the bit-reproducibility contract (`cardest-lint`'s `nondeterminism`
//! rule) is unaffected. Keeping the one sanctioned `Instant::now()` here
//! makes every other timing site grep-clean.

use std::time::Instant;

/// Current monotonic instant.
pub fn now() -> Instant {
    // cardest-lint: allow(nondeterminism): serving latency and socket deadlines are wall-clock by definition; no training-path result depends on this
    Instant::now()
}
