//! The hot-reload model registry.
//!
//! One [`ModelRegistry`] owns the currently-serving model generation
//! behind an `Arc` swap: request threads grab `active()` (a cheap
//! read-lock + `Arc` clone), serve against that generation, and drop the
//! `Arc` when done. `reload` builds the *entire* new generation off to the
//! side — read file, verify checksum, deserialize, wrap in a fresh
//! [`GuardedEstimator`] — and only then swaps the pointer, so:
//!
//! * in-flight requests finish on the generation they started with (the
//!   old `Arc` stays alive until the last request drops it),
//! * a corrupt / truncated / version-skewed / wrong-kind artifact is
//!   rejected with a typed [`ReloadError`] and the old model keeps
//!   serving — a failed reload is invisible to traffic,
//! * a model trained for a different dimensionality than the serving
//!   dataset is rejected before the swap, not at the first query.
//!
//! Guard counters stay exact across swaps: retired generations are kept
//! until their last in-flight reference drops, then their counters are
//! folded into a running total, so `stats()` never loses an increment
//! that raced a reload.

use cardest_baselines::guarded::{GuardStats, GuardedEstimator};
use cardest_baselines::traits::CardinalityEstimator;
use cardest_nn::artifact::ArtifactError;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::model::{LoadedModel, QueryRepr};

/// The fallback estimator every model generation shares — model-free
/// (sampling / histogram), so it cannot share a learned model's failure
/// modes, and `Arc`ed so reloads don't rebuild it.
pub type SharedFallback = Arc<dyn CardinalityEstimator + Send + Sync>;

/// One live model generation: the guarded estimator plus its provenance.
pub struct ServingModel {
    /// Monotonically increasing generation number (1 = initial load).
    pub version: u64,
    /// Artifact kind tag ("cardest.mlp", …).
    pub kind: String,
    /// Path the artifact was loaded from.
    pub source: PathBuf,
    /// The serving wrapper: validation, clamping, fallback, counters.
    pub guarded: GuardedEstimator<LoadedModel, SharedFallback>,
}

/// Everything that can go wrong swapping in a new model.
#[derive(Debug, Clone, PartialEq)]
pub enum ReloadError {
    /// The artifact container or payload failed verification.
    Artifact(ArtifactError),
    /// The artifact verified but holds an estimator family the registry
    /// does not know how to serve.
    UnsupportedKind(String),
    /// The model was trained for a different query dimensionality than
    /// the serving dataset.
    DimensionMismatch { model: usize, serving: usize },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Artifact(e) => write!(f, "reload rejected: {e}"),
            ReloadError::UnsupportedKind(k) => {
                write!(f, "reload rejected: unsupported estimator kind {k:?}")
            }
            ReloadError::DimensionMismatch { model, serving } => write!(
                f,
                "reload rejected: model expects {model}-d queries, serving dataset is {serving}-d"
            ),
        }
    }
}

impl std::error::Error for ReloadError {}

impl From<ArtifactError> for ReloadError {
    fn from(e: ArtifactError) -> Self {
        ReloadError::Artifact(e)
    }
}

/// Serving-side configuration the registry validates reloads against.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Dataset size — the guard's output clamp.
    pub n_data: usize,
    /// Serving dataset dimensionality; reloads of mismatched models are
    /// rejected.
    pub dim: usize,
    /// Query representation of the serving dataset.
    pub repr: QueryRepr,
    /// Enable the guard's in-batch monotone-in-τ repair.
    pub monotone: bool,
}

/// Counts of reload outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReloadStats {
    pub ok: u64,
    pub rejected: u64,
}

struct Inner {
    next_version: u64,
    /// Generations swapped out but possibly still referenced by in-flight
    /// requests. Swept on every reload: once the last external `Arc`
    /// drops, the generation's counters are folded into `folded` and the
    /// entry is freed.
    retired: Vec<Arc<ServingModel>>,
    /// Counter totals of fully-drained retired generations.
    folded: GuardStats,
}

/// Hot-swappable holder of the active [`ServingModel`].
pub struct ModelRegistry {
    cfg: RegistryConfig,
    /// Live dataset size — online inserts grow it past `cfg.n_data`, and
    /// each reload bakes the current value in as the new generation's
    /// guard clamp (the clamp tracks growth at swap granularity).
    n_data_live: AtomicUsize,
    fallback: SharedFallback,
    active: RwLock<Arc<ServingModel>>,
    inner: Mutex<Inner>,
    reloads_ok: AtomicU64,
    reloads_rejected: AtomicU64,
}

fn add_stats(into: &mut GuardStats, s: GuardStats) {
    into.served += s.served;
    into.rejected += s.rejected;
    into.fallbacks += s.fallbacks;
    into.clamped += s.clamped;
    into.monotone_fixes += s.monotone_fixes;
}

impl ModelRegistry {
    /// Loads the initial model (generation 1) from `path`.
    pub fn new(
        cfg: RegistryConfig,
        fallback: SharedFallback,
        path: &Path,
    ) -> Result<Self, ReloadError> {
        let first = Self::build_generation(&cfg, &fallback, path, 1, cfg.n_data)?;
        Ok(ModelRegistry {
            n_data_live: AtomicUsize::new(cfg.n_data),
            cfg,
            fallback,
            active: RwLock::new(Arc::new(first)),
            inner: Mutex::new(Inner {
                next_version: 2,
                retired: Vec::new(),
                folded: GuardStats::default(),
            }),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
        })
    }

    fn build_generation(
        cfg: &RegistryConfig,
        fallback: &SharedFallback,
        path: &Path,
        version: u64,
        n_data: usize,
    ) -> Result<ServingModel, ReloadError> {
        let (model, kind) = LoadedModel::load(path)?;
        if let Some(model_dim) = model.expected_dim() {
            if model_dim != cfg.dim {
                return Err(ReloadError::DimensionMismatch {
                    model: model_dim,
                    serving: cfg.dim,
                });
            }
        }
        let guarded =
            GuardedEstimator::new(model, fallback.clone(), n_data).with_monotone(cfg.monotone);
        Ok(ServingModel {
            version,
            kind,
            source: path.to_path_buf(),
            guarded,
        })
    }

    /// The current generation. Requests hold the returned `Arc` for their
    /// whole lifetime, so a concurrent swap can never tear the estimator
    /// out from under them.
    pub fn active(&self) -> Arc<ServingModel> {
        self.active
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Loads `path` and, if every verification layer passes, swaps it in
    /// as the new active generation, returning its version. On any error
    /// the previous model keeps serving untouched.
    ///
    /// Reloads are serialized: concurrent calls apply one at a time, each
    /// producing a distinct version.
    pub fn reload(&self, path: &Path) -> Result<u64, ReloadError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let version = inner.next_version;
        let n_data = self.n_data_live.load(Ordering::Relaxed);
        let next = match Self::build_generation(&self.cfg, &self.fallback, path, version, n_data) {
            Ok(m) => m,
            Err(e) => {
                self.reloads_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        inner.next_version += 1;
        let old = {
            let mut active = self.active.write().unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *active, Arc::new(next))
        };
        inner.retired.push(old);
        // Sweep drained generations: strong_count == 1 means the retired
        // list holds the only reference, so no thread can still increment
        // its counters — folding now loses nothing.
        let drained: Vec<Arc<ServingModel>> = {
            let (gone, kept): (Vec<_>, Vec<_>) = inner
                .retired
                .drain(..)
                .partition(|m| Arc::strong_count(m) == 1);
            inner.retired = kept;
            gone
        };
        for m in drained {
            add_stats(&mut inner.folded, m.guarded.stats());
        }
        self.reloads_ok.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Cumulative guard counters over every generation ever served —
    /// active, retired-but-referenced, and drained. A request that lands
    /// on an old generation mid-swap is still counted exactly once.
    pub fn stats(&self) -> GuardStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut total = inner.folded;
        for m in &inner.retired {
            add_stats(&mut total, m.guarded.stats());
        }
        drop(inner);
        add_stats(&mut total, self.active().guarded.stats());
        total
    }

    /// Reload outcome counts.
    pub fn reload_stats(&self) -> ReloadStats {
        ReloadStats {
            ok: self.reloads_ok.load(Ordering::Relaxed),
            rejected: self.reloads_rejected.load(Ordering::Relaxed),
        }
    }

    /// Number of retired generations still pinned by in-flight requests
    /// (diagnostic; drained generations are swept on reload).
    pub fn retired_generations(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retired
            .len()
    }

    /// The serving configuration (dataset size, dim, representation).
    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    /// Publishes a new dataset size after online inserts. Takes effect as
    /// the guard clamp at the *next* reload — generations are immutable,
    /// so an already-serving model keeps the clamp it was built with.
    pub fn set_n_data(&self, n: usize) {
        self.n_data_live.store(n, Ordering::Relaxed);
    }

    /// The dataset size the next generation will be clamped to.
    pub fn n_data(&self) -> usize {
        self.n_data_live.load(Ordering::Relaxed)
    }
}
