// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-server
//!
//! A zero-dependency estimation service over the trained estimators: the
//! piece ROADMAP item 1 calls out as the gap between "a stack that could
//! serve" and "a service". Everything is hand-rolled on `std` in keeping
//! with the vendored-deps ethos — no async runtime, no HTTP framework:
//!
//! * [`http`] — a minimal HTTP/1.1 reader/writer over `TcpStream`
//!   (request line + headers + `Content-Length` body, keep-alive),
//! * [`model`] — artifact loading dispatched on the verified kind tag
//!   (`cardest.mlp` / `cardest.cardnet` / `cardest.gl`) and the owned
//!   query codec (JSON floats → dense or bit-packed binary),
//! * [`registry`] — the hot-reload [`registry::ModelRegistry`]: an
//!   `Arc`-swapped [`cardest_baselines::guarded::GuardedEstimator`];
//!   in-flight requests finish on the model generation they started
//!   with, a corrupt artifact is rejected with a typed error while the
//!   old model stays live, and guard counters stay exact across swaps,
//! * [`ingest`] — online mutation behind `POST /insert`: durable inserts
//!   through `cardest_store::DurableIngest` (WAL-ahead, crash-safe), a
//!   drift monitor on the request path, and a background worker that
//!   fine-tunes drifted segments and hot-swaps the result through the
//!   registry,
//! * [`replicate`] — the primary / warm-standby role switch behind
//!   `GET /ready` and `POST /admin/promote`: a standby replays the
//!   primary's WAL stream (`cardest_store::replicate`), serves read-only
//!   estimates, and flips to writable without a restart,
//! * [`coalesce`] — single-query requests queue briefly and flush as one
//!   `estimate_batch` call (feeding the PR 1 batched path), with a
//!   bounded queue for admission control,
//! * [`stats`] — lock-free per-route latency histograms and serving
//!   counters behind `GET /stats`,
//! * [`server`] — the `TcpListener` + fixed worker-thread pool tying it
//!   together, exposing `POST /estimate`, `POST /estimate_batch`,
//!   `GET /health`, `GET /stats`, and `POST /admin/reload`,
//! * [`client`] — a tiny blocking HTTP client used by the smoke battery
//!   and the load generator.
//!
//! Wire protocol, swap semantics, and overload behaviour are documented
//! in `DESIGN.md` §11.

pub mod client;
mod clock;
pub mod coalesce;
pub mod http;
pub mod ingest;
pub mod model;
pub mod registry;
pub mod replicate;
pub mod server;
pub mod stats;

pub use ingest::{IngestService, IngestSnapshot, StandbyBridge};
pub use registry::{ModelRegistry, RegistryConfig, ReloadError};
pub use replicate::ReplicationState;
pub use server::{Server, ServerConfig, ServerHandle};
