//! Server-side replication role: who this process is in a primary /
//! warm-standby pair, and the handles the HTTP routes report on.
//!
//! A **primary** owns writes and (optionally) runs a
//! [`cardest_store::ReplicationListener`] streaming its WAL; a
//! **standby** runs a [`cardest_store::ReplicaClient`], serves read-only
//! estimates, answers `POST /insert` with `503` + `Retry-After`, and
//! flips to primary on `POST /admin/promote` — the client is stopped,
//! the drift monitor rebaselines, and inserts start being accepted, all
//! without restarting the process.

use cardest_store::replicate::{PrimaryReplStats, ReplicaClient, ReplicaStatus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Replication role + live handles, shared with every worker thread.
pub struct ReplicationState {
    standby: AtomicBool,
    /// Where a standby's 503 should point writers (`Retry-After` body).
    primary_url: Option<String>,
    /// The standby's replication client; taken (stopped) on promote.
    client: Mutex<Option<ReplicaClient>>,
    /// The standby client's live counters, kept after promote for /stats.
    client_status: Mutex<Option<Arc<ReplicaStatus>>>,
    /// The primary listener's counters, when streaming is enabled.
    listener_stats: Mutex<Option<Arc<PrimaryReplStats>>>,
}

impl ReplicationState {
    /// A writable primary (the default role).
    pub fn primary() -> Arc<Self> {
        Arc::new(ReplicationState {
            standby: AtomicBool::new(false),
            primary_url: None,
            client: Mutex::new(None),
            client_status: Mutex::new(None),
            listener_stats: Mutex::new(None),
        })
    }

    /// A read-only standby; `primary_url` is advertised on rejected
    /// writes so clients know where to go.
    pub fn standby(primary_url: Option<String>) -> Arc<Self> {
        Arc::new(ReplicationState {
            standby: AtomicBool::new(true),
            primary_url,
            client: Mutex::new(None),
            client_status: Mutex::new(None),
            listener_stats: Mutex::new(None),
        })
    }

    /// Registers the standby's running replication client.
    pub fn attach_client(&self, client: ReplicaClient) {
        let status = client.status();
        *self
            .client_status
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(status);
        *self.client.lock().unwrap_or_else(PoisonError::into_inner) = Some(client);
    }

    /// Registers the primary listener's stats handle.
    pub fn attach_listener_stats(&self, stats: Arc<PrimaryReplStats>) {
        *self
            .listener_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(stats);
    }

    pub fn is_standby(&self) -> bool {
        self.standby.load(Ordering::SeqCst)
    }

    pub fn primary_url(&self) -> Option<&str> {
        self.primary_url.as_deref()
    }

    /// The standby client's counters (survive promotion, for /stats).
    pub fn client_status(&self) -> Option<Arc<ReplicaStatus>> {
        self.client_status
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The primary listener's counters, when streaming is enabled.
    pub fn listener_stats(&self) -> Option<Arc<PrimaryReplStats>> {
        self.listener_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Standby → primary: stops (and joins) the replication client, then
    /// flips the role so the next `POST /insert` is accepted. Returns
    /// `false` if this node was already primary.
    pub fn promote(&self) -> bool {
        if !self.standby.swap(false, Ordering::SeqCst) {
            return false;
        }
        let client = self
            .client
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(mut c) = client {
            c.stop();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promote_is_one_shot() {
        let state = ReplicationState::standby(Some("http://primary:8080".into()));
        assert!(state.is_standby());
        assert_eq!(state.primary_url(), Some("http://primary:8080"));
        assert!(state.promote(), "first promote flips the role");
        assert!(!state.is_standby());
        assert!(!state.promote(), "second promote reports already-primary");
    }

    #[test]
    fn a_primary_never_promotes() {
        let state = ReplicationState::primary();
        assert!(!state.is_standby());
        assert!(!state.promote());
    }
}
