//! A tiny blocking HTTP/1.1 client for the smoke battery and the load
//! generator. Speaks exactly the subset the server does: one request at a
//! time over a keep-alive connection, `Content-Length` bodies only.

use std::io::{Error, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    /// Response headers, lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// The body as UTF-8 (estimation responses are always JSON text).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects with a generous read timeout so a wedged server fails a
    /// test instead of hanging it.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> std::io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: cardest\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience: POST a JSON string.
    pub fn post_json(&mut self, path: &str, json: &str) -> std::io::Result<Response> {
        self.request("POST", path, json.as_bytes())
    }

    /// Convenience: GET.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, b"")
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        loop {
            if let Some(resp) = self.try_parse()? {
                return Ok(resp);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn try_parse(&mut self) -> std::io::Result<Option<Response>> {
        let Some(header_end) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") else {
            return Ok(None);
        };
        let header_text = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| Error::new(ErrorKind::InvalidData, "non-UTF-8 response headers"))?;
        let mut lines = header_text.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| Error::new(ErrorKind::InvalidData, "empty response"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                Error::new(
                    ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| Error::new(ErrorKind::InvalidData, "bad content-length"))?;
                }
                headers.push((name, value));
            }
        }
        let body_start = header_end + 4;
        if self.buf.len() < body_start + content_length {
            return Ok(None);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Some(Response {
            status,
            body,
            headers,
        }))
    }
}
