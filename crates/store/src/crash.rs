//! Deterministic crash injection for the WAL, in the style of
//! `cardest_nn::faults`: every schedule is a pure function of a seed, so
//! a failing crash-matrix run replays exactly.
//!
//! The crash model is byte-level: a process killed mid-append leaves an
//! arbitrary prefix of the record on disk. The harness therefore builds
//! the full WAL byte stream up front, picks kill offsets (every record
//! boundary, boundary ± 1, each header field's interior, payload
//! midpoints, plus seeded random offsets), installs the prefix as the
//! on-disk WAL, and recovers — asserting the recovered state equals the
//! incremental in-memory state after the last fully-durable record.

use crate::wal::{encode_record, HEADER_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Encodes a run of `(kind, payload)` operations as one contiguous WAL
/// byte stream with sequence numbers from `first_seq`. Returns the bytes
/// and the end offset of each record (record `i` occupies
/// `ends[i-1]..ends[i]`, with `ends[-1]` read as 0).
pub fn encode_stream(ops: &[(u8, Vec<u8>)], first_seq: u64) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::with_capacity(ops.len());
    for (i, (kind, payload)) in ops.iter().enumerate() {
        bytes.extend_from_slice(&encode_record(first_seq + i as u64, *kind, payload));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// Builds the kill-offset schedule for a WAL of `record_ends` layout:
/// every record boundary (a crash exactly between appends), each boundary
/// ± 1 byte, offsets inside every header field (length, checksum, seq,
/// kind), each payload's midpoint, and `extra_random` seeded offsets.
/// Sorted and de-duplicated; every offset is `<= total_len`.
pub fn kill_offsets(record_ends: &[usize], seed: u64, extra_random: usize) -> Vec<usize> {
    let total_len = record_ends.last().copied().unwrap_or(0);
    let mut offsets = vec![0usize];
    let mut start = 0usize;
    for &end in record_ends {
        // Clean boundary and off-by-one on both sides.
        offsets.push(end);
        offsets.push(end.saturating_sub(1));
        offsets.push((end + 1).min(total_len));
        // Mid-header cuts: inside the length field (2), the checksum (8),
        // the sequence number (14), and right before the kind byte (20).
        for field_off in [2usize, 8, 14, HEADER_LEN - 1] {
            offsets.push((start + field_off).min(end));
        }
        // Mid-payload cut.
        let payload_start = start + HEADER_LEN;
        if payload_start < end {
            offsets.push(payload_start + (end - payload_start) / 2);
        }
        start = end;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    for _ in 0..extra_random {
        offsets.push(rng.gen_range(0..=total_len));
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Installs the first `keep` bytes of `full` as the WAL file at `path` —
/// the on-disk picture a kill at byte offset `keep` leaves behind.
pub fn install_torn_wal(path: &Path, full: &[u8], keep: usize) -> std::io::Result<()> {
    // cardest-lint: allow(durability-protocol): fault injection — deliberately leaves an unsynced torn WAL for recovery tests
    std::fs::write(path, &full[..keep.min(full.len())])
}

/// The number of whole records a kill at `offset` leaves durable.
pub fn records_surviving(record_ends: &[usize], offset: usize) -> usize {
    record_ends.iter().take_while(|&&end| end <= offset).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::scan;

    fn ops(n: usize) -> Vec<(u8, Vec<u8>)> {
        (0..n).map(|i| (1u8, vec![i as u8; 3 + (i % 5)])).collect()
    }

    #[test]
    fn encode_stream_scans_back_exactly() {
        let ops = ops(4);
        let (bytes, ends) = encode_stream(&ops, 1);
        assert_eq!(ends.len(), 4);
        assert_eq!(*ends.last().unwrap(), bytes.len());
        let s = scan(&bytes);
        assert_eq!(s.defect, None);
        assert_eq!(s.records.len(), 4);
        for (i, r) in s.records.iter().enumerate() {
            assert_eq!(r.seq, 1 + i as u64);
            assert_eq!(r.payload, ops[i].1);
        }
    }

    #[test]
    fn kill_schedule_is_deterministic_and_bounded() {
        let (_, ends) = encode_stream(&ops(5), 1);
        let a = kill_offsets(&ends, 42, 16);
        let b = kill_offsets(&ends, 42, 16);
        assert_eq!(a, b, "same seed, same schedule");
        let c = kill_offsets(&ends, 43, 16);
        assert_ne!(a, c, "different seed moves the random offsets");
        let total = *ends.last().unwrap();
        assert!(a.iter().all(|&o| o <= total));
        assert!(a.contains(&0) && a.contains(&total));
        // Every record boundary and its neighbours are in the schedule.
        for &end in &ends {
            assert!(a.contains(&end) && a.contains(&(end - 1)));
        }
    }

    #[test]
    fn records_surviving_counts_whole_records_only() {
        let (_, ends) = encode_stream(&ops(3), 1);
        assert_eq!(records_surviving(&ends, 0), 0);
        assert_eq!(records_surviving(&ends, ends[0] - 1), 0);
        assert_eq!(records_surviving(&ends, ends[0]), 1);
        assert_eq!(records_surviving(&ends, ends[0] + 1), 1);
        assert_eq!(records_surviving(&ends, ends[2]), 3);
    }
}
