//! Durable online ingestion: WAL-ahead writes over an [`UpdatableGl`].
//!
//! The write path is the classic ordering: validate → WAL append (+sync)
//! → apply in memory → acknowledge. Because [`UpdatableGl::apply_insert`]
//! and [`UpdatableGl::apply_delete`] are pure and deterministic, recovery
//! is exact: load the latest snapshot, replay every WAL record with a
//! higher sequence number through the same apply functions, and the
//! resulting state is bit-identical to the never-crashed run (pinned by
//! `state_fingerprint`). Fine-tuned model weights are soft state: they
//! are made durable by the next snapshot, and a crash before it merely
//! loses the fine-tune — dataset, labels, and segment membership are
//! still exact, so the recovered model answers from slightly staler
//! weights until the drift monitor fires again.

use crate::segment::SegmentedWal;
use crate::snapshot::{self, SnapshotError};
use crate::wal::{WalError, WalRecord, WalRecovery};
use cardest_core::update::UpdatableGl;
use cardest_data::vector::{VectorData, VectorView};
use std::fmt;
use std::path::{Path, PathBuf};

/// Active WAL segment file name inside a store directory (sealed
/// segments sit next to it as `wal.<first_seq>.seg`).
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "state.snapshot";

/// Record kinds this store writes.
pub const OP_INSERT_DENSE: u8 = 1;
pub const OP_INSERT_BINARY: u8 = 2;
pub const OP_DELETE: u8 = 3;

/// Store behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Appends between automatic snapshots; 0 disables auto-snapshots
    /// (callers snapshot explicitly, e.g. after a fine-tune).
    pub snapshot_every: usize,
    /// `sync_data` after every append — the durability the ack promises.
    /// Tests that manufacture crashes from buffers can turn it off.
    pub sync_writes: bool,
    /// Keep replayed records in the WAL across snapshots instead of
    /// compacting. Recovery stays correct either way (covered records are
    /// skipped); the bench uses this to measure replay cost vs WAL length.
    pub retain_wal: bool,
    /// Active-segment size that triggers sealing it into a
    /// `wal.<first_seq>.seg` file; 0 keeps the WAL in one file.
    pub rotate_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            snapshot_every: 256,
            sync_writes: true,
            retain_wal: false,
            rotate_bytes: 8 << 20,
        }
    }
}

/// Everything the durable-ingest layer can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    Io(String),
    Wal(WalError),
    Snapshot(SnapshotError),
    /// Snapshot state failed to (de)serialize.
    Serde(String),
    /// Inserted point has the wrong dimensionality.
    DimensionMismatch {
        expected: usize,
        got: usize,
    },
    /// Inserted point mixes representations with the dataset.
    ReprMismatch {
        expected: &'static str,
    },
    /// Inserted dense component is NaN or infinite.
    NonFinite {
        index: usize,
    },
    /// Delete index beyond the dataset.
    OutOfRange {
        index: usize,
        len: usize,
    },
    /// The WAL's first uncovered record does not follow the snapshot —
    /// records the snapshot depends on are missing.
    SeqGap {
        snapshot_seq: u64,
        found: u64,
    },
    /// A WAL record carried an undecodable payload for its kind.
    BadOp {
        seq: u64,
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store io error: {m}"),
            StoreError::Wal(e) => write!(f, "{e}"),
            StoreError::Snapshot(e) => write!(f, "{e}"),
            StoreError::Serde(m) => write!(f, "store state serde error: {m}"),
            StoreError::DimensionMismatch { expected, got } => {
                write!(f, "point has dimension {got}, dataset expects {expected}")
            }
            StoreError::ReprMismatch { expected } => {
                write!(f, "point representation mismatch: dataset is {expected}")
            }
            StoreError::NonFinite { index } => {
                write!(f, "point component {index} is not finite")
            }
            StoreError::OutOfRange { index, len } => {
                write!(f, "delete index {index} out of range for {len} rows")
            }
            StoreError::SeqGap {
                snapshot_seq,
                found,
            } => write!(
                f,
                "wal gap: snapshot covers seq {snapshot_seq} but the next record is {found}"
            ),
            StoreError::BadOp { seq, reason } => {
                write!(f, "undecodable wal record at seq {seq}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WalError> for StoreError {
    fn from(e: WalError) -> Self {
        StoreError::Wal(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

/// What [`DurableIngest::replication_fetch`] hands a catching-up standby.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicationFetch {
    /// WAL records after the requested position, oldest first.
    Records(Vec<WalRecord>),
    /// The position was compacted away: full state as of `seq`.
    Snapshot { seq: u64, state: Vec<u8> },
}

/// What [`DurableIngest::apply_replicated`] did with a streamed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicatedApply {
    /// The record extended the stream and was WAL-appended + applied.
    Applied,
    /// A duplicate delivery of an already-applied seq; dropped.
    Skipped,
}

/// The acknowledgement an insert returns once it is durable and applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReceipt {
    /// WAL sequence number that made the insert durable.
    pub seq: u64,
    /// Dataset row index the point landed at.
    pub index: usize,
    /// Segment the point was routed to.
    pub segment: usize,
}

/// What a recovery ([`DurableIngest::open`]) found and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number the loaded snapshot covered.
    pub snapshot_seq: u64,
    /// WAL records replayed (seq beyond the snapshot).
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covered them.
    pub skipped: usize,
    /// What the WAL scan found (torn tails land here, already truncated).
    pub wal: WalRecovery,
    /// Temp files from a crash mid-snapshot-rename that were swept.
    pub stale_tmp_swept: usize,
}

/// A durable, recoverable [`UpdatableGl`].
pub struct DurableIngest {
    upd: UpdatableGl,
    wal: SegmentedWal,
    dir: PathBuf,
    cfg: StoreConfig,
    appends_since_snapshot: usize,
}

impl DurableIngest {
    /// Initializes a store directory with a base snapshot of `upd` (at
    /// seq 0) and an empty WAL. Any pre-existing WAL content is dropped —
    /// the snapshot is the new ground truth.
    pub fn create(dir: &Path, upd: UpdatableGl, cfg: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let state = upd
            .snapshot_json()
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        snapshot::write_snapshot(&dir.join(SNAPSHOT_FILE), 0, state.as_bytes())?;
        let (mut wal, _, _) = SegmentedWal::open(dir, cfg.sync_writes, cfg.rotate_bytes)?;
        wal.truncate_all()?;
        wal.set_next_seq(1);
        Ok(DurableIngest {
            upd,
            wal,
            dir: dir.to_path_buf(),
            cfg,
            appends_since_snapshot: 0,
        })
    }

    /// Recovers a store: sweeps torn snapshot temp files, loads the
    /// snapshot, truncates any torn WAL tail, and replays every record
    /// beyond the snapshot through the pure apply path.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<(Self, RecoveryReport), StoreError> {
        let stale_tmp_swept = snapshot::sweep_stale_tmp(dir, snapshot::SWEEP_GRACE);
        let (snapshot_seq, state) = snapshot::read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let state = String::from_utf8(state)
            .map_err(|_| StoreError::Serde("snapshot state is not utf-8".into()))?;
        let mut upd = UpdatableGl::from_snapshot_json(&state)
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        let (mut wal, records, wal_recovery) =
            SegmentedWal::open(dir, cfg.sync_writes, cfg.rotate_bytes)?;
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for r in &records {
            if r.seq <= snapshot_seq {
                skipped += 1;
                continue;
            }
            if r.seq != snapshot_seq + 1 + replayed as u64 {
                return Err(StoreError::SeqGap {
                    snapshot_seq,
                    found: r.seq,
                });
            }
            apply_record(&mut upd, r.seq, r.kind, &r.payload)?;
            replayed += 1;
        }
        let last_seq = records
            .last()
            .map_or(snapshot_seq, |r| r.seq.max(snapshot_seq));
        wal.set_next_seq(last_seq + 1);
        let report = RecoveryReport {
            snapshot_seq,
            replayed,
            skipped,
            wal: wal_recovery,
            stale_tmp_swept,
        };
        Ok((
            DurableIngest {
                upd,
                wal,
                dir: dir.to_path_buf(),
                cfg,
                appends_since_snapshot: replayed,
            },
            report,
        ))
    }

    /// Durably inserts one point (any representation the dataset uses):
    /// validate → WAL append → apply → maybe auto-snapshot → ack.
    pub fn insert(&mut self, point: VectorView<'_>) -> Result<InsertReceipt, StoreError> {
        let (kind, payload) = self.validate_and_encode(point)?;
        let seq = self.wal.append(kind, &payload)?;
        let index = self.upd.dataset_len();
        let segment = self.upd.apply_insert(point);
        self.note_append()?;
        Ok(InsertReceipt {
            seq,
            index,
            segment,
        })
    }

    /// Durably inserts a dense point given as raw components.
    pub fn insert_dense(&mut self, point: &[f32]) -> Result<InsertReceipt, StoreError> {
        self.insert(VectorView::Dense(point))
    }

    /// Durably tombstones a dataset row. Returns the WAL seq and the
    /// segment the point left (`None` if it was already deleted — still
    /// logged, so replay reproduces the no-op identically).
    pub fn delete(&mut self, index: usize) -> Result<(u64, Option<usize>), StoreError> {
        let len = self.upd.dataset_len();
        if index >= len {
            return Err(StoreError::OutOfRange { index, len });
        }
        let seq = self.wal.append(OP_DELETE, &(index as u64).to_le_bytes())?;
        let seg = self.upd.apply_delete(index);
        self.note_append()?;
        Ok((seq, seg))
    }

    /// Writes a snapshot covering everything applied so far, then (unless
    /// retaining) drops the WAL records the snapshot made redundant —
    /// sealed segments deleted, active file truncated. Also the call that
    /// makes a background fine-tune durable.
    pub fn snapshot_now(&mut self) -> Result<(), StoreError> {
        let state = self
            .upd
            .snapshot_json()
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        let last_seq = self.wal.next_seq() - 1;
        snapshot::write_snapshot(&self.dir.join(SNAPSHOT_FILE), last_seq, state.as_bytes())?;
        if !self.cfg.retain_wal {
            self.wal.truncate_all()?;
        }
        self.appends_since_snapshot = 0;
        Ok(())
    }

    fn note_append(&mut self) -> Result<(), StoreError> {
        self.appends_since_snapshot += 1;
        if self.cfg.snapshot_every > 0 && self.appends_since_snapshot >= self.cfg.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    fn validate_and_encode(&self, point: VectorView<'_>) -> Result<(u8, Vec<u8>), StoreError> {
        let expected = self.upd.data().dim();
        match (self.upd.data(), point) {
            (VectorData::Dense(_), VectorView::Dense(v)) => {
                if v.len() != expected {
                    return Err(StoreError::DimensionMismatch {
                        expected,
                        got: v.len(),
                    });
                }
                if let Some(index) = v.iter().position(|x| !x.is_finite()) {
                    return Err(StoreError::NonFinite { index });
                }
                let mut payload = Vec::with_capacity(v.len() * 4);
                for x in v {
                    payload.extend_from_slice(&x.to_le_bytes());
                }
                Ok((OP_INSERT_DENSE, payload))
            }
            (VectorData::Binary(_), VectorView::Binary { words, dim }) => {
                if dim != expected {
                    return Err(StoreError::DimensionMismatch { expected, got: dim });
                }
                if words.len() != expected.div_ceil(64) {
                    return Err(StoreError::DimensionMismatch {
                        expected,
                        got: words.len() * 64,
                    });
                }
                let mut payload = Vec::with_capacity(words.len() * 8);
                for w in words {
                    payload.extend_from_slice(&w.to_le_bytes());
                }
                Ok((OP_INSERT_BINARY, payload))
            }
            (VectorData::Dense(_), _) => Err(StoreError::ReprMismatch { expected: "dense" }),
            (VectorData::Binary(_), _) => Err(StoreError::ReprMismatch { expected: "binary" }),
        }
    }

    /// The recovered/served estimator state.
    pub fn estimator(&self) -> &UpdatableGl {
        &self.upd
    }

    /// Mutable estimator access (fine-tunes; the dataset itself must only
    /// change through [`DurableIngest::insert`] / [`DurableIngest::delete`]
    /// or recovery loses exactness).
    pub fn estimator_mut(&mut self) -> &mut UpdatableGl {
        &mut self.upd
    }

    /// Sequence number of the last durable record (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.wal.next_seq() - 1
    }

    /// Current WAL size in bytes (sealed segments + active file).
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Sealed WAL segments currently on disk.
    pub fn wal_segments(&self) -> usize {
        self.wal.sealed_segments().len()
    }

    /// Seals the active WAL segment regardless of size (tests and
    /// operational tooling; normal rotation is size-triggered).
    pub fn rotate_wal_now(&mut self) -> Result<(), StoreError> {
        self.wal.rotate_now().map_err(StoreError::Wal)
    }

    /// What a catching-up standby at `after_seq` should receive next:
    /// WAL records still on disk, or — once compaction has dropped the
    /// requested position — the full current state to bootstrap from
    /// ("latest snapshot + segments since" collapses to "state now + the
    /// live stream from here").
    pub fn replication_fetch(
        &self,
        after_seq: u64,
        max: usize,
    ) -> Result<ReplicationFetch, StoreError> {
        if let Some(records) = self.wal.read_since(after_seq, max)? {
            return Ok(ReplicationFetch::Records(records));
        }
        let state = self
            .upd
            .snapshot_json()
            .map_err(|e| StoreError::Serde(e.to_string()))?;
        Ok(ReplicationFetch::Snapshot {
            seq: self.last_seq(),
            state: state.into_bytes(),
        })
    }

    /// Applies one record streamed from a primary: duplicates (seq at or
    /// below the last applied) are skipped so re-delivered frames are
    /// idempotent; the next expected seq is WAL-appended and applied
    /// through the same path as local inserts; anything further ahead is
    /// a gap the caller must resolve by re-syncing.
    pub fn apply_replicated(&mut self, rec: &WalRecord) -> Result<ReplicatedApply, StoreError> {
        let last = self.last_seq();
        if rec.seq <= last {
            return Ok(ReplicatedApply::Skipped);
        }
        if rec.seq != last + 1 {
            return Err(StoreError::SeqGap {
                snapshot_seq: last,
                found: rec.seq,
            });
        }
        self.wal.append(rec.kind, &rec.payload)?;
        apply_record(&mut self.upd, rec.seq, rec.kind, &rec.payload)?;
        self.note_append()?;
        Ok(ReplicatedApply::Applied)
    }

    /// Replaces local state with a primary's snapshot at `seq`: the state
    /// is made durable, the local WAL is reset (records it held are
    /// covered or obsolete), and subsequent appends continue at `seq + 1`.
    pub fn install_snapshot(&mut self, seq: u64, state: &[u8]) -> Result<(), StoreError> {
        let json = std::str::from_utf8(state)
            .map_err(|_| StoreError::Serde("replicated snapshot state is not utf-8".into()))?;
        let upd =
            UpdatableGl::from_snapshot_json(json).map_err(|e| StoreError::Serde(e.to_string()))?;
        snapshot::write_snapshot(&self.dir.join(SNAPSHOT_FILE), seq, state)?;
        self.wal.truncate_all()?;
        self.wal.set_next_seq(seq + 1);
        self.upd = upd;
        self.appends_since_snapshot = 0;
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// FNV-1a 64 digest of the full serialized state — the bit-identity
    /// the crash matrix compares.
    pub fn fingerprint(&self) -> Result<u64, StoreError> {
        self.upd
            .state_fingerprint()
            .map_err(|e| StoreError::Serde(e.to_string()))
    }
}

/// Applies one decoded WAL record to the estimator — the replay half of
/// the write path. Shared validation keeps replay and live appends on the
/// same apply functions.
pub fn apply_record(
    upd: &mut UpdatableGl,
    seq: u64,
    kind: u8,
    payload: &[u8],
) -> Result<(), StoreError> {
    match kind {
        OP_INSERT_DENSE => {
            if payload.len() % 4 != 0 {
                return Err(StoreError::BadOp {
                    seq,
                    reason: format!("dense payload of {} bytes", payload.len()),
                });
            }
            let v: Vec<f32> = payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            if v.len() != upd.data().dim() {
                return Err(StoreError::BadOp {
                    seq,
                    reason: format!(
                        "dense point of dim {}, dataset has {}",
                        v.len(),
                        upd.data().dim()
                    ),
                });
            }
            upd.apply_insert(VectorView::Dense(&v));
            Ok(())
        }
        OP_INSERT_BINARY => {
            if payload.len() % 8 != 0 {
                return Err(StoreError::BadOp {
                    seq,
                    reason: format!("binary payload of {} bytes", payload.len()),
                });
            }
            let words: Vec<u64> = payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect();
            let dim = upd.data().dim();
            if words.len() != dim.div_ceil(64) {
                return Err(StoreError::BadOp {
                    seq,
                    reason: format!("binary point of {} words, dataset dim {dim}", words.len()),
                });
            }
            upd.apply_insert(VectorView::Binary { words: &words, dim });
            Ok(())
        }
        OP_DELETE => {
            let bytes: [u8; 8] = payload.try_into().map_err(|_| StoreError::BadOp {
                seq,
                reason: format!("delete payload of {} bytes", payload.len()),
            })?;
            let index = u64::from_le_bytes(bytes) as usize;
            if index >= upd.dataset_len() {
                return Err(StoreError::BadOp {
                    seq,
                    reason: format!("delete index {index} beyond {} rows", upd.dataset_len()),
                });
            }
            upd.apply_delete(index);
            Ok(())
        }
        other => Err(StoreError::BadOp {
            seq,
            reason: format!("unknown record kind {other}"),
        }),
    }
}
