//! Deterministic network-fault injection for replication, in the style
//! of [`crate::crash`]: every fault schedule is a pure function of a
//! seed, so a failing chaos run replays exactly.
//!
//! A [`ChaosProxy`] sits between a standby and its primary as a plain
//! TCP forwarder. The standby→primary direction (HELLO, ACKs) is always
//! transparent — the faults under test are on the streamed WAL, and a
//! mangled HELLO would only re-exercise the same reconnect path. The
//! primary→standby direction injects, per forwarded chunk and while the
//! proxy is in [`ChaosMode::Storm`]:
//!
//! * **connection kills** — both halves shut down mid-stream,
//! * **truncations** — a prefix of the chunk is delivered, then the kill
//!   (a torn frame on the wire),
//! * **bit flips** — 1–3 flipped bits in the forwarded bytes,
//! * **duplications** — the chunk delivered twice (duplicate frames when
//!   the chunk sits on a frame boundary, garbage otherwise — both must
//!   be survivable),
//! * **delays** — a bounded sleep before forwarding.
//!
//! Switching back to [`ChaosMode::Transparent`] lets the storm drain so
//! tests can assert convergence (standby fingerprint == primary's).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// What the proxy does to primary→standby traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Forward everything unchanged.
    Transparent,
    /// Inject the full fault mix.
    Storm,
}

/// Fault mix probabilities (per forwarded chunk), all in `[0, 1]` and
/// applied in order: kill, truncate+kill, flip, duplicate, delay.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Root seed; each proxied session derives its own stream from it.
    pub seed: u64,
    pub p_kill: f64,
    pub p_truncate: f64,
    pub p_flip: f64,
    pub p_duplicate: f64,
    pub p_delay: f64,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            p_kill: 0.04,
            p_truncate: 0.04,
            p_flip: 0.08,
            p_duplicate: 0.08,
            p_delay: 0.15,
            max_delay: Duration::from_millis(15),
        }
    }
}

/// Counts of injected faults, for assertions that the storm actually
/// stormed.
#[derive(Debug, Default)]
pub struct ChaosStats {
    pub kills: AtomicU64,
    pub truncations: AtomicU64,
    pub bit_flips: AtomicU64,
    pub duplications: AtomicU64,
    pub delays: AtomicU64,
    pub sessions: AtomicU64,
}

impl ChaosStats {
    /// Total faults injected (excluding benign delays).
    pub fn corruptions(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
            + self.truncations.load(Ordering::Relaxed)
            + self.bit_flips.load(Ordering::Relaxed)
            + self.duplications.load(Ordering::Relaxed)
    }
}

/// An in-process fault-injecting TCP proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    stats: Arc<ChaosStats>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and forwards every accepted
    /// connection to `upstream`, injecting faults per `cfg` while in
    /// storm mode. Starts transparent.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mode = Arc::new(AtomicU8::new(0));
        let stats = Arc::new(ChaosStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let mode = Arc::clone(&mode);
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                let mut session_idx = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            stats.sessions.fetch_add(1, Ordering::Relaxed);
                            let session_seed = cfg
                                .seed
                                .wrapping_add(session_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                            session_idx += 1;
                            if let Ok(server) = TcpStream::connect(upstream) {
                                track(&conns, &client);
                                track(&conns, &server);
                                spawn_pumps(
                                    client,
                                    server,
                                    cfg,
                                    session_seed,
                                    Arc::clone(&mode),
                                    Arc::clone(&stats),
                                );
                            } else {
                                let _ = client.shutdown(Shutdown::Both);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            mode,
            stats,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the standby should dial instead of the primary.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips between storm and transparent forwarding.
    pub fn set_mode(&self, mode: ChaosMode) {
        let v = match mode {
            ChaosMode::Transparent => 0,
            ChaosMode::Storm => 1,
        };
        self.mode.store(v, Ordering::Relaxed);
    }

    /// Fault counters.
    pub fn stats(&self) -> Arc<ChaosStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting and severs every proxied connection.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for c in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = c.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn track(conns: &Arc<Mutex<Vec<TcpStream>>>, stream: &TcpStream) {
    if let Ok(clone) = stream.try_clone() {
        conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(clone);
    }
}

fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    cfg: ChaosConfig,
    seed: u64,
    mode: Arc<AtomicU8>,
    stats: Arc<ChaosStats>,
) {
    // standby → primary: always transparent (control frames).
    {
        let Ok(from) = client.try_clone() else { return };
        let Ok(to) = server.try_clone() else { return };
        std::thread::spawn(move || pump_transparent(from, to));
    }
    // primary → standby: the faulted direction.
    std::thread::spawn(move || pump_faulted(server, client, cfg, seed, &mode, &stats));
}

fn pump_transparent(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn pump_faulted(
    mut from: TcpStream,
    mut to: TcpStream,
    cfg: ChaosConfig,
    seed: u64,
    mode: &AtomicU8,
    stats: &ChaosStats,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = [0u8; 4 * 1024];
    'outer: loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let storm = mode.load(Ordering::Relaxed) == 1;
        let chunk = &mut buf[..n];
        if storm {
            let r: f64 = rng.gen_range(0.0..1.0);
            let mut band = cfg.p_kill;
            if r < band {
                stats.kills.fetch_add(1, Ordering::Relaxed);
                break;
            }
            band += cfg.p_truncate;
            if r < band {
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                let keep = rng.gen_range(0..n.max(1));
                if keep > 0 {
                    let _ = to.write_all(&chunk[..keep]);
                }
                break;
            }
            band += cfg.p_flip;
            if r < band {
                stats.bit_flips.fetch_add(1, Ordering::Relaxed);
                for _ in 0..rng.gen_range(1..4usize) {
                    let byte = rng.gen_range(0..n);
                    let bit = rng.gen_range(0..8usize);
                    chunk[byte] ^= 1 << bit;
                }
                if to.write_all(chunk).is_err() {
                    break 'outer;
                }
                continue;
            }
            band += cfg.p_duplicate;
            if r < band {
                stats.duplications.fetch_add(1, Ordering::Relaxed);
                if to.write_all(chunk).is_err() || to.write_all(chunk).is_err() {
                    break;
                }
                continue;
            }
            band += cfg.p_delay;
            if r < band {
                stats.delays.fetch_add(1, Ordering::Relaxed);
                let micros = rng.gen_range(0..cfg.max_delay.as_micros().max(1) as u64);
                std::thread::sleep(Duration::from_micros(micros));
            }
        }
        if to.write_all(chunk).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
