// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-store
//!
//! Crash-safe durability for online ingestion (ROADMAP item 2: the §5.3
//! incremental-update experiment, made mutable *under serving*):
//!
//! * [`wal`] — an append-only write-ahead log with a fixed 21-byte record
//!   header (length, FNV-1a checksum over seq‖kind‖payload, sequence
//!   number, kind), torn-tail detection, and physical truncation on
//!   recovery,
//! * [`snapshot`] — periodic full-state checkpoints in the
//!   `cardest_nn::artifact` container (magic/version/kind/checksum,
//!   atomic temp-file rename), prefixed with the WAL sequence number they
//!   cover,
//! * [`segment`] — [`SegmentedWal`]: the WAL spread over sealed
//!   `wal.<first_seq>.seg` files plus one active `wal.log`, with
//!   size-triggered rotation and snapshot-anchored compaction,
//! * [`ingest`] — [`DurableIngest`]: validate → WAL append → pure apply →
//!   ack, with recovery = snapshot-load + WAL-replay through the same
//!   deterministic [`cardest_core::UpdatableGl::apply_insert`] path, so
//!   recovered state is bit-identical to the never-crashed run,
//! * [`replicate`] — warm-standby replication: a CRC-guarded TCP frame
//!   protocol streaming WAL records (and bootstrap snapshots) from a
//!   primary to standbys that replay them through the same apply path,
//!   with heartbeats, lag tracking, and backoff-driven reconnection,
//! * [`crash`] — deterministic byte-offset kill schedules for the crash
//!   matrix (`cardest_nn::faults` style: everything is seed-driven),
//! * [`chaos`] — a deterministic fault-injecting TCP proxy (drops,
//!   delays, disconnects, torn/duplicated frames, bit flips) that proves
//!   the replication path converges under network failure.

pub mod chaos;
pub mod clock;
pub mod crash;
pub mod ingest;
pub mod replicate;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use ingest::{
    DurableIngest, InsertReceipt, RecoveryReport, ReplicatedApply, ReplicationFetch, StoreConfig,
    StoreError,
};
pub use replicate::{
    decode_frame, encode_frame, Frame, FrameError, ListenerConfig, PrimaryReplStats, ReplicaClient,
    ReplicaClientConfig, ReplicaSource, ReplicaStatus, ReplicationListener, SharedStore,
    StandbyTarget,
};
pub use segment::{SegmentMeta, SegmentedWal};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotError, SNAPSHOT_KIND};
pub use wal::{scan, TailDefect, Wal, WalError, WalRecord, WalRecovery};
