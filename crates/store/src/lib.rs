// Library (non-test) code must not panic on malformed input: surface
// typed errors instead. Tests may unwrap freely.
// The workspace is 100% safe Rust; `cardest-lint` (unsafe-block rule) and
// this forbid cross-check each other.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-store
//!
//! Crash-safe durability for online ingestion (ROADMAP item 2: the §5.3
//! incremental-update experiment, made mutable *under serving*):
//!
//! * [`wal`] — an append-only write-ahead log with a fixed 21-byte record
//!   header (length, FNV-1a checksum over seq‖kind‖payload, sequence
//!   number, kind), torn-tail detection, and physical truncation on
//!   recovery,
//! * [`snapshot`] — periodic full-state checkpoints in the
//!   `cardest_nn::artifact` container (magic/version/kind/checksum,
//!   atomic temp-file rename), prefixed with the WAL sequence number they
//!   cover,
//! * [`ingest`] — [`DurableIngest`]: validate → WAL append → pure apply →
//!   ack, with recovery = snapshot-load + WAL-replay through the same
//!   deterministic [`cardest_core::UpdatableGl::apply_insert`] path, so
//!   recovered state is bit-identical to the never-crashed run,
//! * [`crash`] — deterministic byte-offset kill schedules for the crash
//!   matrix (`cardest_nn::faults` style: everything is seed-driven).

pub mod crash;
pub mod ingest;
pub mod snapshot;
pub mod wal;

pub use ingest::{DurableIngest, InsertReceipt, RecoveryReport, StoreConfig, StoreError};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotError, SNAPSHOT_KIND};
pub use wal::{scan, TailDefect, Wal, WalError, WalRecord, WalRecovery};
