//! Warm-standby replication: WAL streaming over a length-prefixed,
//! CRC-guarded TCP protocol.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (u32)
//! 4       8     FNV-1a 64 checksum of type ‖ payload (u64)
//! 12      1     frame type (u8)
//! 13      N     payload
//! ```
//!
//! Frame types and payloads:
//!
//! | type | name      | payload                          | direction          |
//! |------|-----------|----------------------------------|--------------------|
//! | 1    | HELLO     | `last_applied` (u64)             | standby → primary  |
//! | 2    | SNAPSHOT  | `seq` (u64) ‖ state bytes        | primary → standby  |
//! | 3    | RECORD    | `seq` (u64) ‖ `kind` (u8) ‖ data | primary → standby  |
//! | 4    | HEARTBEAT | `head_seq` (u64)                 | primary → standby  |
//! | 5    | ACK       | `seq` (u64)                      | standby → primary  |
//!
//! The protocol is a cursor chase: the standby opens with HELLO carrying
//! the last seq it durably applied, and the primary streams RECORD
//! frames from there (or one SNAPSHOT when compaction has dropped the
//! cursor), interleaving HEARTBEATs when idle. Corruption anywhere —
//! torn frame, flipped bit, garbage type — fails the checksum or parse,
//! and the *connection* is the recovery unit: either side drops it, the
//! standby reconnects with jittered exponential backoff
//! ([`cardest_core::backoff`]) and a fresh HELLO, and the stream resumes
//! exactly where durable application stopped. Duplicate delivery is
//! harmless by construction ([`DurableIngest::apply_replicated`] skips
//! seqs at or below the last applied), so at-least-once transport gives
//! exactly-once application.
//!
//! The primary never blocks inserts on a standby: sessions run on their
//! own threads, read the WAL from disk under the same store lock inserts
//! use (bounded batches), and a slow or dead standby just accumulates
//! lag, which [`PrimaryReplStats`] reports.

use crate::clock;
use crate::ingest::{DurableIngest, InsertReceipt, ReplicatedApply, ReplicationFetch, StoreError};
use crate::wal::WalRecord;
use cardest_core::backoff::{clamp_to_deadline, Backoff, BackoffConfig};
use cardest_nn::artifact::fnv1a64;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Fixed frame header size: length (4) + checksum (8) + type (1).
pub const FRAME_HEADER_LEN: usize = 13;

/// Upper bound on a frame payload (snapshots are the big ones).
pub const MAX_FRAME_PAYLOAD: usize = 256 << 20;

const TYPE_HELLO: u8 = 1;
const TYPE_SNAPSHOT: u8 = 2;
const TYPE_RECORD: u8 = 3;
const TYPE_HEARTBEAT: u8 = 4;
const TYPE_ACK: u8 = 5;

/// One replication protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Standby's opener: the last seq it durably applied.
    Hello { last_applied: u64 },
    /// Full state as of `seq` — bootstrap after compaction.
    Snapshot { seq: u64, state: Vec<u8> },
    /// One WAL record.
    Record(WalRecord),
    /// Primary liveness + current head while the stream is idle.
    Heartbeat { head_seq: u64 },
    /// Standby progress: everything through `seq` is durably applied.
    Ack { seq: u64 },
}

/// Why a frame failed to decode. Every variant means the byte stream is
/// unusable from here on — the connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize { len: usize },
    /// Checksum over type ‖ payload does not match.
    BadCrc,
    /// Valid checksum but an unassigned frame type.
    UnknownType { ty: u8 },
    /// Valid checksum but the payload does not parse for its type.
    BadPayload { ty: u8, len: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { len } => write!(f, "frame payload length {len} oversize"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
            FrameError::UnknownType { ty } => write!(f, "unknown frame type {ty}"),
            FrameError::BadPayload { ty, len } => {
                write!(f, "frame type {ty} with unparseable {len}-byte payload")
            }
        }
    }
}

impl std::error::Error for FrameError {}

fn frame_crc(ty: u8, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(1 + payload.len());
    buf.push(ty);
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

fn u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let b = bytes.get(at..at + 8)?;
    Some(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Encodes one frame in the layout described at module level.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (ty, payload): (u8, Vec<u8>) = match frame {
        Frame::Hello { last_applied } => (TYPE_HELLO, last_applied.to_le_bytes().to_vec()),
        Frame::Snapshot { seq, state } => {
            let mut p = Vec::with_capacity(8 + state.len());
            p.extend_from_slice(&seq.to_le_bytes());
            p.extend_from_slice(state);
            (TYPE_SNAPSHOT, p)
        }
        Frame::Record(r) => {
            let mut p = Vec::with_capacity(9 + r.payload.len());
            p.extend_from_slice(&r.seq.to_le_bytes());
            p.push(r.kind);
            p.extend_from_slice(&r.payload);
            (TYPE_RECORD, p)
        }
        Frame::Heartbeat { head_seq } => (TYPE_HEARTBEAT, head_seq.to_le_bytes().to_vec()),
        Frame::Ack { seq } => (TYPE_ACK, seq.to_le_bytes().to_vec()),
    };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(ty, &payload).to_le_bytes());
    out.push(ty);
    out.extend_from_slice(&payload);
    out
}

/// Attempts to decode one frame from the front of `buf`. Pure — the
/// frame-codec proptests drive it directly.
///
/// * `Ok(None)` — the buffer holds a valid prefix of a frame; read more.
/// * `Ok(Some((frame, consumed)))` — one complete valid frame.
/// * `Err(_)` — the stream is corrupt; drop the connection.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let plen = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if plen > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize { len: plen });
    }
    let total = FRAME_HEADER_LEN + plen;
    if buf.len() < total {
        return Ok(None);
    }
    let crc = u64_at(buf, 4).unwrap_or(0);
    let ty = buf[12];
    let payload = &buf[FRAME_HEADER_LEN..total];
    if frame_crc(ty, payload) != crc {
        return Err(FrameError::BadCrc);
    }
    let bad = || FrameError::BadPayload { ty, len: plen };
    let frame = match ty {
        TYPE_HELLO => {
            if plen != 8 {
                return Err(bad());
            }
            Frame::Hello {
                last_applied: u64_at(payload, 0).ok_or_else(bad)?,
            }
        }
        TYPE_SNAPSHOT => Frame::Snapshot {
            seq: u64_at(payload, 0).ok_or_else(bad)?,
            state: payload[8..].to_vec(),
        },
        TYPE_RECORD => {
            if plen < 9 {
                return Err(bad());
            }
            Frame::Record(WalRecord {
                seq: u64_at(payload, 0).ok_or_else(bad)?,
                kind: payload[8],
                payload: payload[9..].to_vec(),
            })
        }
        TYPE_HEARTBEAT => {
            if plen != 8 {
                return Err(bad());
            }
            Frame::Heartbeat {
                head_seq: u64_at(payload, 0).ok_or_else(bad)?,
            }
        }
        TYPE_ACK => {
            if plen != 8 {
                return Err(bad());
            }
            Frame::Ack {
                seq: u64_at(payload, 0).ok_or_else(bad)?,
            }
        }
        other => return Err(FrameError::UnknownType { ty: other }),
    };
    Ok(Some((frame, total)))
}

/// What a primary exposes to replication sessions.
pub trait ReplicaSource: Send + Sync {
    /// Seq of the last durable record.
    fn head_seq(&self) -> u64;
    /// Records after `after_seq` (bounded), or a snapshot once compacted.
    fn fetch_since(&self, after_seq: u64, max: usize) -> Result<ReplicationFetch, StoreError>;
    /// Blocks until the head moves past `after_seq` or `timeout` elapses;
    /// returns the current head either way.
    fn wait_growth(&self, after_seq: u64, timeout: Duration) -> u64;
}

/// What a standby exposes to its replication client.
pub trait StandbyTarget: Send + Sync {
    /// Seq of the last durably applied record.
    fn last_applied(&self) -> u64;
    /// Applies one streamed record (idempotent on duplicates).
    fn apply(&self, rec: &WalRecord) -> Result<ReplicatedApply, StoreError>;
    /// Replaces local state with the primary's snapshot at `seq`.
    fn install_snapshot(&self, seq: u64, state: &[u8]) -> Result<(), StoreError>;
}

/// A [`DurableIngest`] shared across threads with growth signalling —
/// implements both replication roles, so store-level tests and the bench
/// can stand up a primary/standby pair without the HTTP server.
pub struct SharedStore {
    inner: Mutex<DurableIngest>,
    grew: Condvar,
}

impl SharedStore {
    pub fn new(store: DurableIngest) -> Arc<Self> {
        Arc::new(SharedStore {
            inner: Mutex::new(store),
            grew: Condvar::new(),
        })
    }

    /// Runs `f` under the store lock and signals waiters afterwards (any
    /// mutation may have grown the stream).
    pub fn with<R>(&self, f: impl FnOnce(&mut DurableIngest) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let r = f(&mut guard);
        drop(guard);
        self.grew.notify_all();
        r
    }

    /// Durably inserts one dense point and wakes replication sessions.
    pub fn insert_dense(&self, point: &[f32]) -> Result<InsertReceipt, StoreError> {
        self.with(|s| s.insert_dense(point))
    }

    /// State fingerprint (bit-identity assertions in tests).
    pub fn fingerprint(&self) -> Result<u64, StoreError> {
        self.with(|s| s.fingerprint())
    }
}

impl ReplicaSource for SharedStore {
    fn head_seq(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last_seq()
    }

    fn fetch_since(&self, after_seq: u64, max: usize) -> Result<ReplicationFetch, StoreError> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .replication_fetch(after_seq, max)
    }

    fn wait_growth(&self, after_seq: u64, timeout: Duration) -> u64 {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.last_seq() > after_seq {
            return guard.last_seq();
        }
        let (guard, _) = self
            .grew
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.last_seq()
    }
}

impl StandbyTarget for SharedStore {
    fn last_applied(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last_seq()
    }

    fn apply(&self, rec: &WalRecord) -> Result<ReplicatedApply, StoreError> {
        self.with(|s| s.apply_replicated(rec))
    }

    fn install_snapshot(&self, seq: u64, state: &[u8]) -> Result<(), StoreError> {
        self.with(|s| s.install_snapshot(seq, state))
    }
}

/// Primary-side replication knobs.
#[derive(Debug, Clone, Copy)]
pub struct ListenerConfig {
    /// Heartbeat cadence while the stream is idle.
    pub heartbeat_every: Duration,
    /// Records per fetch batch.
    pub batch_max: usize,
    /// Read timeout used to poll for acks / socket deadline per op.
    pub ack_poll: Duration,
    /// Patience for the standby's HELLO before dropping the connection.
    pub hello_deadline: Duration,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            heartbeat_every: Duration::from_millis(500),
            batch_max: 256,
            ack_poll: Duration::from_millis(25),
            hello_deadline: Duration::from_secs(10),
        }
    }
}

/// Primary-side replication counters, shared with `/stats`.
#[derive(Debug, Default)]
pub struct PrimaryReplStats {
    /// Sessions accepted over the listener's lifetime.
    pub sessions: AtomicU64,
    /// Sessions currently streaming.
    pub active: AtomicU64,
    /// Highest seq any standby has acked.
    pub last_acked: AtomicU64,
    /// RECORD frames sent.
    pub records_sent: AtomicU64,
    /// SNAPSHOT frames sent (bootstrap / post-compaction resync).
    pub snapshots_sent: AtomicU64,
}

impl PrimaryReplStats {
    /// Records the best-connected standby still trails by (0 when caught
    /// up or when no standby has ever acked).
    pub fn lag(&self, head_seq: u64) -> u64 {
        head_seq.saturating_sub(self.last_acked.load(Ordering::Relaxed))
    }
}

/// The primary's replication endpoint: accepts standby connections and
/// streams the WAL to each on its own thread.
pub struct ReplicationListener {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<PrimaryReplStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ReplicationListener {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts accepting standbys.
    pub fn start(
        addr: &str,
        source: Arc<dyn ReplicaSource>,
        cfg: ListenerConfig,
    ) -> Result<Self, StoreError> {
        let listener = TcpListener::bind(addr).map_err(|e| StoreError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let local = listener
            .local_addr()
            .map_err(|e| StoreError::Io(e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(PrimaryReplStats::default());
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stats.sessions.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                conns
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .push(clone);
                            }
                            let source = Arc::clone(&source);
                            let stats = Arc::clone(&stats);
                            let stop = Arc::clone(&stop);
                            std::thread::spawn(move || {
                                stats.active.fetch_add(1, Ordering::Relaxed);
                                let _ = serve_session(stream, &*source, &stats, &stop, cfg);
                                stats.active.fetch_sub(1, Ordering::Relaxed);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ReplicationListener {
            addr: local,
            stop,
            stats,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address standbys should dial.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Shared counters for `/stats` and tests.
    pub fn stats(&self) -> Arc<PrimaryReplStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, severs live sessions, and joins the acceptor.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicationListener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Outcome of one blocking poll for a frame.
enum Poll {
    Frame(Frame),
    /// Read timed out — no bytes this interval.
    Idle,
    /// Peer closed or the socket failed.
    Closed,
}

/// Reads frames off a socket through a reassembly buffer.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn new(stream: TcpStream) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Decodes the next frame, reading at most one socket chunk if the
    /// buffer doesn't already hold one. Corruption is an `Err`.
    fn poll(&mut self) -> Result<Poll, FrameError> {
        loop {
            if let Some((frame, consumed)) = decode_frame(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(Poll::Frame(frame));
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Poll::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Poll::Idle)
                }
                Err(_) => return Ok(Poll::Closed),
            }
        }
    }
}

/// One primary-side session: HELLO, then chase the standby's cursor.
fn serve_session(
    stream: TcpStream,
    source: &dyn ReplicaSource,
    stats: &PrimaryReplStats,
    stop: &AtomicBool,
    cfg: ListenerConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(cfg.ack_poll))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);

    // Wait for HELLO within the deadline; anything else is a bad client.
    let hello_deadline = clock::now() + cfg.hello_deadline;
    let mut cursor = loop {
        if stop.load(Ordering::Relaxed) || clock::now() >= hello_deadline {
            return Ok(());
        }
        match reader.poll() {
            Ok(Poll::Frame(Frame::Hello { last_applied })) => break last_applied,
            Ok(Poll::Idle) => continue,
            _ => return Ok(()),
        }
    };

    let mut last_heartbeat = clock::now();
    while !stop.load(Ordering::Relaxed) {
        let head = source.head_seq();
        if cursor < head {
            match source.fetch_since(cursor, cfg.batch_max) {
                Ok(ReplicationFetch::Records(records)) if !records.is_empty() => {
                    for r in &records {
                        writer.write_all(&encode_frame(&Frame::Record(r.clone())))?;
                        cursor = r.seq;
                        stats.records_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    writer.flush()?;
                }
                Ok(ReplicationFetch::Snapshot { seq, state }) => {
                    writer.write_all(&encode_frame(&Frame::Snapshot { seq, state }))?;
                    writer.flush()?;
                    cursor = seq;
                    stats.snapshots_sent.fetch_add(1, Ordering::Relaxed);
                }
                // Empty batch (records raced a compaction) or store error:
                // re-evaluate on the next turn of the loop.
                Ok(ReplicationFetch::Records(_)) => {}
                Err(_) => return Ok(()),
            }
        } else if clock::now().duration_since(last_heartbeat) >= cfg.heartbeat_every {
            writer.write_all(&encode_frame(&Frame::Heartbeat { head_seq: head }))?;
            writer.flush()?;
            last_heartbeat = clock::now();
        }

        // One bounded poll for acks; doubles as pacing when idle.
        match reader.poll() {
            Ok(Poll::Frame(Frame::Ack { seq })) => {
                stats.last_acked.fetch_max(seq, Ordering::Relaxed);
            }
            Ok(Poll::Idle) => {
                if cursor >= head {
                    source.wait_growth(cursor, cfg.ack_poll);
                }
            }
            // Corrupt inbound stream or an out-of-protocol frame: drop
            // the session; the standby reconnects and resumes.
            _ => return Ok(()),
        }
    }
    Ok(())
}

/// Standby-side replication knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaClientConfig {
    /// Per-connect deadline.
    pub connect_timeout: Duration,
    /// Per-read deadline (also the cadence of ack/stop checks).
    pub read_timeout: Duration,
    /// Per-write deadline.
    pub write_timeout: Duration,
    /// Reconnect backoff shape.
    pub backoff: BackoffConfig,
    /// Seed for the jitter stream (deterministic in tests).
    pub seed: u64,
    /// Applied records between progress acks (acks also flush on
    /// heartbeats and idle ticks).
    pub ack_every: u64,
}

impl Default for ReplicaClientConfig {
    fn default() -> Self {
        ReplicaClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(5),
            backoff: BackoffConfig {
                base: Duration::from_millis(50),
                max: Duration::from_secs(2),
                jitter: 0.5,
                max_attempts: 0,
            },
            seed: 0x5EED_0CA1,
            ack_every: 32,
        }
    }
}

/// Standby-side replication counters, shared with `/stats` and `/ready`.
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    /// A session is currently established.
    pub connected: AtomicBool,
    /// Last seq durably applied locally.
    pub last_applied: AtomicU64,
    /// Primary's head as last advertised (records or heartbeats).
    pub primary_head: AtomicU64,
    /// RECORD frames applied.
    pub records_applied: AtomicU64,
    /// SNAPSHOT frames installed.
    pub snapshots_installed: AtomicU64,
    /// Sessions re-established after a drop.
    pub reconnects: AtomicU64,
    /// Sessions dropped on a corrupt frame.
    pub corrupt_frames: AtomicU64,
    /// Duplicate record deliveries skipped.
    pub duplicates_skipped: AtomicU64,
}

impl ReplicaStatus {
    /// Records the standby still trails the primary by.
    pub fn lag(&self) -> u64 {
        self.primary_head
            .load(Ordering::Relaxed)
            .saturating_sub(self.last_applied.load(Ordering::Relaxed))
    }
}

/// The standby's replication client: one background thread that dials
/// the primary, applies the stream, and reconnects with backoff forever
/// (or until the attempt budget in its config runs out).
pub struct ReplicaClient {
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaClient {
    /// Starts replicating from `primary_addr` into `target`.
    pub fn start(
        primary_addr: String,
        target: Arc<dyn StandbyTarget>,
        cfg: ReplicaClientConfig,
    ) -> ReplicaClient {
        let status = Arc::new(ReplicaStatus::default());
        status
            .last_applied
            .store(target.last_applied(), Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let status = Arc::clone(&status);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(&primary_addr, &*target, &status, &stop, cfg))
        };
        ReplicaClient {
            status,
            stop,
            thread: Some(thread),
        }
    }

    /// Live counters (role/lag reporting, readiness checks).
    pub fn status(&self) -> Arc<ReplicaStatus> {
        Arc::clone(&self.status)
    }

    /// Stops the client and joins its thread (used by promote).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.status.connected.store(false, Ordering::Relaxed);
    }
}

impl Drop for ReplicaClient {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleeps `delay` in stop-aware slices, each clamped to the remaining
/// deadline so a stop request is honored within ~50ms.
fn sleep_interruptible(delay: Duration, stop: &AtomicBool) {
    let deadline = clock::now() + delay;
    while !stop.load(Ordering::Relaxed) {
        let remaining = deadline.saturating_duration_since(clock::now());
        if remaining.is_zero() {
            return;
        }
        std::thread::sleep(clamp_to_deadline(Duration::from_millis(50), remaining));
    }
}

fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last_err = None;
    for sockaddr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sockaddr, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses resolved")
    }))
}

fn client_loop(
    addr: &str,
    target: &dyn StandbyTarget,
    status: &ReplicaStatus,
    stop: &AtomicBool,
    cfg: ReplicaClientConfig,
) {
    let mut backoff = Backoff::new(cfg.backoff, cfg.seed);
    let mut had_session = false;
    while !stop.load(Ordering::Relaxed) {
        match run_session(addr, target, status, stop, cfg) {
            SessionEnd::Established => {
                if had_session {
                    status.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                had_session = true;
                // Progress was made; the next failure backs off from base.
                backoff.reset();
            }
            SessionEnd::NoProgress => {}
            SessionEnd::Stopped => return,
        }
        status.connected.store(false, Ordering::Relaxed);
        match backoff.next_delay() {
            Some(delay) => sleep_interruptible(delay, stop),
            // Attempt budget exhausted: stay up serving reads, stop dialing.
            None => return,
        }
    }
}

enum SessionEnd {
    /// The session applied at least one frame before dropping.
    Established,
    /// Never got as far as a single applied frame.
    NoProgress,
    /// Stop was requested.
    Stopped,
}

fn run_session(
    addr: &str,
    target: &dyn StandbyTarget,
    status: &ReplicaStatus,
    stop: &AtomicBool,
    cfg: ReplicaClientConfig,
) -> SessionEnd {
    let Ok(stream) = connect(addr, cfg.connect_timeout) else {
        return SessionEnd::NoProgress;
    };
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return SessionEnd::NoProgress;
    }
    stream.set_nodelay(true).ok();
    let Ok(mut writer) = stream.try_clone() else {
        return SessionEnd::NoProgress;
    };
    let mut reader = FrameReader::new(stream);

    let mut last_applied = target.last_applied();
    status.last_applied.store(last_applied, Ordering::Relaxed);
    if writer
        .write_all(&encode_frame(&Frame::Hello { last_applied }))
        .is_err()
    {
        return SessionEnd::NoProgress;
    }
    status.connected.store(true, Ordering::Relaxed);

    let mut progressed = false;
    let mut last_acked = last_applied;
    let mut since_ack = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            return SessionEnd::Stopped;
        }
        let end = |p| {
            if p {
                SessionEnd::Established
            } else {
                SessionEnd::NoProgress
            }
        };
        match reader.poll() {
            Ok(Poll::Frame(Frame::Record(rec))) => {
                status.primary_head.fetch_max(rec.seq, Ordering::Relaxed);
                match target.apply(&rec) {
                    Ok(ReplicatedApply::Applied) => {
                        last_applied = rec.seq;
                        status.last_applied.store(last_applied, Ordering::Relaxed);
                        status.records_applied.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                        since_ack += 1;
                    }
                    Ok(ReplicatedApply::Skipped) => {
                        status.duplicates_skipped.fetch_add(1, Ordering::Relaxed);
                    }
                    // Gap (we missed frames) or apply failure: resync via
                    // a fresh session's HELLO.
                    Err(_) => return end(progressed),
                }
            }
            Ok(Poll::Frame(Frame::Snapshot { seq, state })) => {
                if seq > last_applied {
                    if target.install_snapshot(seq, &state).is_err() {
                        return end(progressed);
                    }
                    last_applied = seq;
                    status.last_applied.store(seq, Ordering::Relaxed);
                    status.primary_head.fetch_max(seq, Ordering::Relaxed);
                    status.snapshots_installed.fetch_add(1, Ordering::Relaxed);
                    progressed = true;
                    since_ack += 1;
                }
            }
            Ok(Poll::Frame(Frame::Heartbeat { head_seq })) => {
                status.primary_head.fetch_max(head_seq, Ordering::Relaxed);
                // Heartbeats flush progress so the primary's lag is live.
                since_ack = cfg.ack_every;
            }
            // HELLO/ACK from a primary is out of protocol.
            Ok(Poll::Frame(_)) => return end(progressed),
            Ok(Poll::Idle) => {
                if last_applied > last_acked {
                    since_ack = cfg.ack_every;
                }
            }
            Ok(Poll::Closed) => return end(progressed),
            Err(_) => {
                status.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                return end(progressed);
            }
        }
        if since_ack >= cfg.ack_every && last_applied > last_acked {
            if writer
                .write_all(&encode_frame(&Frame::Ack { seq: last_applied }))
                .is_err()
            {
                return end(progressed);
            }
            last_acked = last_applied;
            since_ack = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = vec![
            Frame::Hello { last_applied: 0 },
            Frame::Hello {
                last_applied: u64::MAX,
            },
            Frame::Snapshot {
                seq: 7,
                state: b"{\"gl\":1}".to_vec(),
            },
            Frame::Snapshot {
                seq: 0,
                state: Vec::new(),
            },
            Frame::Record(WalRecord {
                seq: 42,
                kind: 3,
                payload: vec![1, 2, 3, 4],
            }),
            Frame::Record(WalRecord {
                seq: 1,
                kind: 0,
                payload: Vec::new(),
            }),
            Frame::Heartbeat { head_seq: 99 },
            Frame::Ack { seq: 12 },
        ];
        for f in frames {
            let bytes = encode_frame(&f);
            let (decoded, consumed) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!(decoded, f);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn torn_prefixes_ask_for_more_bytes() {
        let bytes = encode_frame(&Frame::Heartbeat { head_seq: 5 });
        for keep in 0..bytes.len() {
            assert_eq!(decode_frame(&bytes[..keep]).unwrap(), None, "at {keep}");
        }
    }

    #[test]
    fn two_frames_decode_in_sequence() {
        let mut bytes = encode_frame(&Frame::Ack { seq: 1 });
        let second = encode_frame(&Frame::Heartbeat { head_seq: 9 });
        bytes.extend_from_slice(&second);
        let (f1, c1) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(f1, Frame::Ack { seq: 1 });
        let (f2, c2) = decode_frame(&bytes[c1..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Heartbeat { head_seq: 9 });
        assert_eq!(c1 + c2, bytes.len());
    }

    #[test]
    fn corruption_is_rejected_not_misread() {
        let bytes = encode_frame(&Frame::Record(WalRecord {
            seq: 3,
            kind: 1,
            payload: vec![9; 32],
        }));
        // Flip one bit everywhere past the length field: must error (the
        // length field itself is covered by the reframing argument — a
        // changed length either overshoots, starves, or fails the CRC).
        for at in 4..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                decode_frame(&bad).is_err() || decode_frame(&bad).unwrap().is_none(),
                "flip at {at} decoded as a valid frame"
            );
        }
        // Unknown type with a correct checksum is still rejected.
        let mut p = Vec::new();
        p.extend_from_slice(&(0u32).to_le_bytes());
        p.extend_from_slice(&frame_crc(77, &[]).to_le_bytes());
        p.push(77);
        assert_eq!(decode_frame(&p), Err(FrameError::UnknownType { ty: 77 }));
    }

    #[test]
    fn oversize_length_is_rejected_immediately() {
        let mut bytes = encode_frame(&Frame::Ack { seq: 1 });
        bytes[3] = 0xFF; // declared length becomes > MAX_FRAME_PAYLOAD
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn short_typed_payloads_are_bad_payload_not_panic() {
        // An ACK must carry exactly 8 bytes; craft one with 3.
        let payload = [1u8, 2, 3];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_crc(TYPE_ACK, &payload).to_le_bytes());
        bytes.push(TYPE_ACK);
        bytes.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&bytes),
            Err(FrameError::BadPayload {
                ty: TYPE_ACK,
                len: 3
            })
        );
    }
}
