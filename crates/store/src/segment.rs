//! WAL segment rotation with snapshot-anchored compaction.
//!
//! A [`SegmentedWal`] presents the same append/truncate surface as a
//! single [`Wal`](crate::wal::Wal) but spreads the record stream over
//! files: the **active** segment is always `wal.log` (so single-file
//! stores from before rotation open unchanged, and the crash matrix can
//! keep tearing one file), and when it outgrows `rotate_bytes` it is
//! **sealed** by an atomic rename to `wal.<first_seq>.seg` and a fresh
//! active file is started. Sequence numbers chain across segments: the
//! first record of each file continues the last record of the previous
//! one, and recovery enforces the chain — a defect in any segment drops
//! that segment's tail *and every later segment*, keeping the invariant
//! that the surviving stream is one gap-free prefix.
//!
//! Compaction is snapshot-anchored: a sealed segment whose last record is
//! covered by a snapshot (`last_seq <= covered_seq`) is deleted; the
//! active segment is never compacted. Replication bootstrap leans on the
//! same anchor — [`SegmentedWal::read_since`] answers records still on
//! disk, and `None` once the requested position has been compacted away,
//! which tells the caller to ship "latest snapshot + segments since"
//! instead of an unbounded log.

use crate::wal::{scan, Wal, WalError, WalRecord, WalRecovery};
use std::path::{Path, PathBuf};

/// Active segment file name (same as the pre-rotation single-file WAL).
pub const ACTIVE_FILE: &str = "wal.log";
/// Prefix and suffix sealed segments carry: `wal.<first_seq:020>.seg`.
pub const SEALED_PREFIX: &str = "wal.";
pub const SEALED_SUFFIX: &str = ".seg";

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

/// One sealed, immutable segment on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
    /// Sequence number of the segment's last record.
    pub last_seq: u64,
    /// File path (`wal.<first_seq>.seg` in the store directory).
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
}

fn sealed_name(first_seq: u64) -> String {
    // Zero-padded so lexical directory order equals sequence order.
    format!("{SEALED_PREFIX}{first_seq:020}{SEALED_SUFFIX}")
}

fn parse_sealed_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEALED_PREFIX)?
        .strip_suffix(SEALED_SUFFIX)?
        .parse()
        .ok()
}

/// A record stream split across sealed segments plus one active file.
pub struct SegmentedWal {
    dir: PathBuf,
    sealed: Vec<SegmentMeta>,
    active: Wal,
    /// Seq of the active segment's first record; equals `next_seq` while
    /// the active segment is empty.
    active_first_seq: u64,
    sync: bool,
    /// Active-segment size that triggers sealing; 0 disables rotation.
    rotate_bytes: u64,
}

impl SegmentedWal {
    /// Opens the segmented log in `dir`: scans sealed segments in
    /// sequence order, then the active file, enforcing the cross-segment
    /// sequence chain. The first defect truncates its segment to the
    /// valid prefix and deletes every later segment file (they would
    /// continue a stream that no longer exists). Returns all surviving
    /// records for replay plus an aggregate recovery report.
    pub fn open(
        dir: &Path,
        sync: bool,
        rotate_bytes: u64,
    ) -> Result<(Self, Vec<WalRecord>, WalRecovery), WalError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut sealed_paths: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(io_err)?.flatten() {
            let name = entry.file_name();
            if let Some(first_seq) = parse_sealed_name(&name.to_string_lossy()) {
                sealed_paths.push((first_seq, entry.path()));
            }
        }
        sealed_paths.sort();

        let mut sealed = Vec::new();
        let mut records = Vec::new();
        let mut bytes_kept = 0u64;
        let mut bytes_dropped = 0u64;
        let mut defect = None;
        let mut broken = false;
        for (first_seq, path) in &sealed_paths {
            if broken {
                // A stream break upstream orphans this segment entirely.
                bytes_dropped += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                std::fs::remove_file(path).map_err(io_err)?;
                continue;
            }
            let bytes = std::fs::read(path).map_err(io_err)?;
            let mut scanned = scan(&bytes);
            // The chain check: this segment must continue the stream.
            let expected = records.last().map(|r: &WalRecord| r.seq + 1);
            let chains = scanned
                .records
                .first()
                .is_some_and(|r| r.seq == *first_seq && expected.is_none_or(|e| r.seq == e));
            if !chains {
                // Misnamed, empty, or gapped segment: drop it whole.
                scanned.consumed = 0;
                scanned.records.clear();
            }
            if scanned.consumed < bytes.len() || !chains {
                broken = true;
                if defect.is_none() {
                    defect = scanned.defect.take();
                }
                bytes_dropped += (bytes.len() - scanned.consumed) as u64;
                if scanned.consumed == 0 {
                    std::fs::remove_file(path).map_err(io_err)?;
                } else {
                    let f = std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(io_err)?;
                    f.set_len(scanned.consumed as u64).map_err(io_err)?;
                    f.sync_data().map_err(io_err)?;
                }
            }
            if scanned.consumed > 0 {
                bytes_kept += scanned.consumed as u64;
                sealed.push(SegmentMeta {
                    first_seq: *first_seq,
                    last_seq: scanned.records.last().map_or(*first_seq, |r| r.seq),
                    path: path.clone(),
                    bytes: scanned.consumed as u64,
                });
                records.append(&mut scanned.records);
            }
        }

        let active_path = dir.join(ACTIVE_FILE);
        if broken {
            // The active file continues a stream that ended mid-sealed
            // segment — its records are unreachable. Drop them.
            bytes_dropped += std::fs::metadata(&active_path)
                .map(|m| m.len())
                .unwrap_or(0);
            if active_path.exists() {
                std::fs::remove_file(&active_path).map_err(io_err)?;
            }
        }
        let (mut active, mut active_records, active_rec) = Wal::open(&active_path, sync)?;
        if !broken {
            let expected = records.last().map(|r| r.seq + 1);
            let chains = match (active_records.first(), expected) {
                (Some(first), Some(e)) => first.seq == e,
                _ => true,
            };
            if !chains {
                active.truncate_all()?;
                bytes_dropped += active_rec.bytes_kept;
                active_records.clear();
            } else {
                bytes_kept += active_rec.bytes_kept;
                bytes_dropped += active_rec.bytes_dropped;
                if defect.is_none() {
                    defect = active_rec.defect;
                }
            }
        }
        let next_seq = active_records
            .last()
            .or(records.last())
            .map_or(1, |r| r.seq + 1);
        active.set_next_seq(next_seq);
        let active_first_seq = active_records.first().map_or(next_seq, |r| r.seq);
        records.append(&mut active_records);
        let recovery = WalRecovery {
            records: records.len(),
            bytes_kept,
            bytes_dropped,
            defect,
        };
        Ok((
            SegmentedWal {
                dir: dir.to_path_buf(),
                sealed,
                active,
                active_first_seq,
                sync,
                rotate_bytes,
            },
            records,
            recovery,
        ))
    }

    /// Appends one record, sealing the active segment first if it has
    /// outgrown `rotate_bytes`. Returns the assigned sequence number.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        if self.rotate_bytes > 0
            && self.active.len_bytes() >= self.rotate_bytes
            && self.active_first_seq < self.active.next_seq()
        {
            self.rotate_now()?;
        }
        self.active.append(kind, payload)
    }

    /// Seals the active segment (atomic rename to `wal.<first_seq>.seg`)
    /// and starts a fresh one. A no-op when the active segment is empty.
    pub fn rotate_now(&mut self) -> Result<(), WalError> {
        if self.active_first_seq >= self.active.next_seq() {
            return Ok(());
        }
        let next_seq = self.active.next_seq();
        let sealed_path = self.dir.join(sealed_name(self.active_first_seq));
        let bytes = self.active.len_bytes();
        std::fs::rename(self.dir.join(ACTIVE_FILE), &sealed_path).map_err(io_err)?;
        self.sealed.push(SegmentMeta {
            first_seq: self.active_first_seq,
            last_seq: next_seq - 1,
            path: sealed_path,
            bytes,
        });
        let (mut active, _, _) = Wal::open(&self.dir.join(ACTIVE_FILE), self.sync)?;
        active.set_next_seq(next_seq);
        self.active = active;
        self.active_first_seq = next_seq;
        Ok(())
    }

    /// Deletes sealed segments fully covered by a snapshot at
    /// `covered_seq` (`last_seq <= covered_seq`). The active segment is
    /// never touched. Returns how many segments were deleted.
    pub fn compact(&mut self, covered_seq: u64) -> Result<usize, WalError> {
        let mut deleted = 0;
        let mut keep = Vec::with_capacity(self.sealed.len());
        for seg in self.sealed.drain(..) {
            if seg.last_seq <= covered_seq {
                std::fs::remove_file(&seg.path).map_err(io_err)?;
                deleted += 1;
            } else {
                keep.push(seg);
            }
        }
        self.sealed = keep;
        Ok(deleted)
    }

    /// Drops every record — sealed segments deleted, active truncated —
    /// but keeps the sequence counter running.
    pub fn truncate_all(&mut self) -> Result<(), WalError> {
        for seg in self.sealed.drain(..) {
            std::fs::remove_file(&seg.path).map_err(io_err)?;
        }
        self.active.truncate_all()?;
        self.active_first_seq = self.active.next_seq();
        Ok(())
    }

    /// Records with `seq > after_seq`, oldest first, at most `max`, read
    /// back from disk. `None` means the position has been compacted away
    /// and the caller must bootstrap from a snapshot instead.
    pub fn read_since(
        &self,
        after_seq: u64,
        max: usize,
    ) -> Result<Option<Vec<WalRecord>>, WalError> {
        if after_seq + 1 < self.first_retained_seq() {
            return Ok(None);
        }
        let mut out = Vec::new();
        for seg in &self.sealed {
            if seg.last_seq <= after_seq {
                continue;
            }
            if out.len() >= max {
                break;
            }
            let bytes = std::fs::read(&seg.path).map_err(io_err)?;
            for r in scan(&bytes).records {
                if r.seq > after_seq && out.len() < max {
                    out.push(r);
                }
            }
        }
        if out.len() < max && self.active.len_bytes() > 0 {
            let bytes = std::fs::read(self.dir.join(ACTIVE_FILE)).map_err(io_err)?;
            for r in scan(&bytes).records {
                if r.seq > after_seq && out.len() < max {
                    out.push(r);
                }
            }
        }
        Ok(Some(out))
    }

    /// The smallest sequence number still on disk (equals `next_seq` when
    /// the log is empty — every older record is snapshot-covered).
    pub fn first_retained_seq(&self) -> u64 {
        self.sealed
            .first()
            .map_or(self.active_first_seq, |s| s.first_seq)
    }

    /// Overrides the next sequence number (recovery with an empty log).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.active.set_next_seq(seq);
        if self.active.len_bytes() == 0 {
            self.active_first_seq = seq;
        }
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.active.next_seq()
    }

    /// Total bytes across sealed segments and the active file.
    pub fn len_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.len_bytes()
    }

    /// Bytes in the active (unsealed) segment.
    pub fn active_len_bytes(&self) -> u64 {
        self.active.len_bytes()
    }

    /// Sealed segments, oldest first.
    pub fn sealed_segments(&self) -> &[SegmentMeta] {
        &self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cardest-seg-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fill(w: &mut SegmentedWal, n: usize) {
        for i in 0..n {
            w.append(1, format!("payload-{i:04}").as_bytes()).unwrap();
        }
    }

    #[test]
    fn rotation_seals_and_recovery_chains_across_segments() {
        let dir = tmp_dir("rotate");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        fill(&mut w, 40);
        assert!(
            w.sealed_segments().len() >= 2,
            "40 × ~35-byte records over a 128-byte threshold must seal segments"
        );
        let sealed_before = w.sealed_segments().to_vec();
        drop(w);
        let (w, records, rec) = SegmentedWal::open(&dir, false, 128).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(records.len(), 40);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (1..=40).collect::<Vec<_>>());
        assert_eq!(w.sealed_segments(), sealed_before.as_slice());
        assert_eq!(w.next_seq(), 41);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_deletes_only_covered_segments() {
        let dir = tmp_dir("compact");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        fill(&mut w, 40);
        let n_sealed = w.sealed_segments().len();
        assert!(n_sealed >= 2);
        let cut = w.sealed_segments()[0].last_seq;
        assert_eq!(w.compact(cut).unwrap(), 1);
        assert_eq!(w.sealed_segments().len(), n_sealed - 1);
        assert_eq!(w.first_retained_seq(), cut + 1);
        // Compacted position: the caller must fall back to a snapshot.
        assert_eq!(w.read_since(0, 100).unwrap(), None);
        // Retained positions still answer records.
        let tail = w.read_since(cut, 100).unwrap().unwrap();
        assert_eq!(tail.first().unwrap().seq, cut + 1);
        assert_eq!(tail.last().unwrap().seq, 40);
        drop(w);
        let (_, records, rec) = SegmentedWal::open(&dir, false, 128).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(records.first().unwrap().seq, cut + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_since_pages_and_spans_the_active_segment() {
        let dir = tmp_dir("since");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        fill(&mut w, 40);
        let page = w.read_since(10, 7).unwrap().unwrap();
        assert_eq!(
            page.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (11..=17).collect::<Vec<_>>()
        );
        let rest = w.read_since(38, 100).unwrap().unwrap();
        assert_eq!(rest.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![39, 40]);
        assert_eq!(w.read_since(40, 100).unwrap().unwrap(), Vec::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_sealed_segment_drops_every_later_segment() {
        let dir = tmp_dir("torn-seal");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        fill(&mut w, 40);
        assert!(w.sealed_segments().len() >= 3);
        let victim = w.sealed_segments()[1].clone();
        let survivors = w.sealed_segments()[0].last_seq;
        drop(w);
        // Corrupt a middle sealed segment: flip one byte of its first record.
        let mut bytes = std::fs::read(&victim.path).unwrap();
        bytes[crate::wal::HEADER_LEN / 2] ^= 0x40;
        std::fs::write(&victim.path, &bytes).unwrap();
        let (w, records, rec) = SegmentedWal::open(&dir, false, 128).unwrap();
        assert!(rec.defect.is_some());
        assert_eq!(records.last().unwrap().seq, survivors);
        assert_eq!(w.sealed_segments().len(), 1);
        // Later segment files are gone from disk, not just from memory.
        assert!(!victim.path.exists());
        // Appends continue the surviving stream.
        drop(w);
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        assert_eq!(w.append(1, b"resume").unwrap(), survivors + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_all_drops_segments_but_keeps_the_counter() {
        let dir = tmp_dir("truncall");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 128).unwrap();
        fill(&mut w, 40);
        w.truncate_all().unwrap();
        assert_eq!(w.len_bytes(), 0);
        assert_eq!(w.sealed_segments().len(), 0);
        assert_eq!(w.first_retained_seq(), 41);
        assert_eq!(w.append(1, b"after").unwrap(), 41);
        drop(w);
        let (_, records, rec) = SegmentedWal::open(&dir, false, 128).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 41);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_file_store_from_before_rotation_opens_unchanged() {
        let dir = tmp_dir("legacy");
        // A pre-rotation store is just wal.log — write one via plain Wal.
        let (mut wal, _, _) = Wal::open(&dir.join(ACTIVE_FILE), false).unwrap();
        for i in 0..5 {
            wal.append(2, format!("legacy-{i}").as_bytes()).unwrap();
        }
        drop(wal);
        let (w, records, rec) = SegmentedWal::open(&dir, false, 0).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(records.len(), 5);
        assert_eq!(w.sealed_segments().len(), 0);
        assert_eq!(w.next_seq(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_disabled_never_seals() {
        let dir = tmp_dir("noseal");
        let (mut w, _, _) = SegmentedWal::open(&dir, false, 0).unwrap();
        fill(&mut w, 40);
        assert_eq!(w.sealed_segments().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
