//! Append-only write-ahead log with per-record checksums and torn-tail
//! recovery.
//!
//! Record layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (u32)
//! 4       8     FNV-1a 64 checksum of seq ‖ kind ‖ payload (u64)
//! 12      8     sequence number (u64, strictly increasing by 1)
//! 20      1     record kind (opaque to this layer)
//! 21      N     payload
//! ```
//!
//! A crash can stop a write anywhere — mid-header, mid-payload, or on a
//! clean boundary — so recovery scans forward and keeps the longest valid
//! prefix: a record is accepted only if its header fits, its declared
//! length is sane, its payload is fully present, its checksum matches,
//! and its sequence number continues the previous record's. The first
//! violation classifies the tail defect and everything from that offset
//! on is truncated away (physically, via `set_len`), so a recovered log
//! re-opens clean. The checksum covers the sequence number and kind, not
//! just the payload, so a bit-flip anywhere in a record — header included
//! — is caught (the length field is implicitly covered: a flipped length
//! reframes the checksummed region, which then mismatches).

use cardest_nn::artifact::fnv1a64;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Fixed record header size: length (4) + checksum (8) + seq (8) + kind (1).
pub const HEADER_LEN: usize = 21;

/// Upper bound on a single record's payload. Anything larger is treated
/// as a corrupt length field during recovery (a flipped high bit would
/// otherwise ask the scanner to skip gigabytes).
pub const MAX_PAYLOAD_LEN: usize = 256 << 20;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// Why the recovery scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer than [`HEADER_LEN`] bytes remained — a write died mid-header.
    ShortHeader { at: usize, got: usize },
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    OversizePayload { at: usize, len: usize },
    /// The file ends before the declared payload does — a write died
    /// mid-payload.
    ShortPayload {
        at: usize,
        needed: usize,
        got: usize,
    },
    /// Header and payload are present but the checksum does not match —
    /// bit rot, or a torn write that happened to leave enough bytes.
    CrcMismatch { at: usize, seq: u64 },
    /// A structurally valid record whose sequence number does not follow
    /// its predecessor — an interleaved or misdirected write.
    SeqBreak {
        at: usize,
        expected: u64,
        found: u64,
    },
}

impl fmt::Display for TailDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailDefect::ShortHeader { at, got } => {
                write!(f, "short header at byte {at} ({got} bytes left)")
            }
            TailDefect::OversizePayload { at, len } => {
                write!(f, "oversize payload length {len} at byte {at}")
            }
            TailDefect::ShortPayload { at, needed, got } => {
                write!(f, "short payload at byte {at}: needed {needed}, got {got}")
            }
            TailDefect::CrcMismatch { at, seq } => {
                write!(f, "checksum mismatch at byte {at} (record seq {seq})")
            }
            TailDefect::SeqBreak {
                at,
                expected,
                found,
            } => write!(
                f,
                "sequence break at byte {at}: expected {expected}, found {found}"
            ),
        }
    }
}

/// WAL I/O failure (scan defects are not errors — they are recovery facts
/// reported in [`WalRecovery`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    Io(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal io error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

/// What [`Wal::open`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Records in the longest valid prefix.
    pub records: usize,
    /// Bytes kept (the valid prefix length).
    pub bytes_kept: u64,
    /// Bytes truncated away behind the first defect.
    pub bytes_dropped: u64,
    /// The defect that ended the scan, if the file did not end cleanly.
    pub defect: Option<TailDefect>,
}

/// The checksum a record must carry: FNV-1a 64 over seq ‖ kind ‖ payload.
pub fn record_crc(seq: u64, kind: u8, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    fnv1a64(&buf)
}

/// Frames one record in the layout described at module level.
pub fn encode_record(seq: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(seq, kind, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a byte buffer for valid records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// The longest valid record prefix.
    pub records: Vec<WalRecord>,
    /// Bytes consumed by that prefix (the truncation point on recovery).
    pub consumed: usize,
    /// The defect that stopped the scan, `None` for a clean end.
    pub defect: Option<TailDefect>,
}

/// Scans `bytes` front to back, keeping the longest valid prefix. Pure —
/// the crash-matrix tests drive it directly on manufactured buffers.
pub fn scan(bytes: &[u8]) -> ScanResult {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut prev_seq: Option<u64> = None;
    let defect = loop {
        if pos == bytes.len() {
            break None;
        }
        let left = bytes.len() - pos;
        if left < HEADER_LEN {
            break Some(TailDefect::ShortHeader { at: pos, got: left });
        }
        let h = &bytes[pos..pos + HEADER_LEN];
        let plen = u32::from_le_bytes([h[0], h[1], h[2], h[3]]) as usize;
        if plen > MAX_PAYLOAD_LEN {
            break Some(TailDefect::OversizePayload { at: pos, len: plen });
        }
        let crc = u64::from_le_bytes([h[4], h[5], h[6], h[7], h[8], h[9], h[10], h[11]]);
        let seq = u64::from_le_bytes([h[12], h[13], h[14], h[15], h[16], h[17], h[18], h[19]]);
        let kind = h[20];
        let needed = HEADER_LEN + plen;
        if left < needed {
            break Some(TailDefect::ShortPayload {
                at: pos,
                needed,
                got: left,
            });
        }
        let payload = &bytes[pos + HEADER_LEN..pos + needed];
        if record_crc(seq, kind, payload) != crc {
            break Some(TailDefect::CrcMismatch { at: pos, seq });
        }
        if let Some(prev) = prev_seq {
            if seq != prev + 1 {
                break Some(TailDefect::SeqBreak {
                    at: pos,
                    expected: prev + 1,
                    found: seq,
                });
            }
        }
        prev_seq = Some(seq);
        records.push(WalRecord {
            seq,
            kind,
            payload: payload.to_vec(),
        });
        pos += needed;
    };
    ScanResult {
        records,
        consumed: pos,
        defect,
    }
}

/// An open write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len_bytes: u64,
    sync: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scans it, physically
    /// truncates any torn tail, and positions the writer after the last
    /// valid record. The surviving records are returned for replay.
    ///
    /// With `sync` set, every append is followed by `sync_data` so an
    /// acknowledged write survives a process kill (the crash model this
    /// store defends against; media loss needs replication, not a WAL).
    pub fn open(path: &Path, sync: bool) -> Result<(Self, Vec<WalRecord>, WalRecovery), WalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;
        let scanned = scan(&bytes);
        let bytes_dropped = (bytes.len() - scanned.consumed) as u64;
        if bytes_dropped > 0 {
            file.set_len(scanned.consumed as u64).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
        }
        file.seek(SeekFrom::Start(scanned.consumed as u64))
            .map_err(io_err)?;
        let next_seq = scanned.records.last().map_or(1, |r| r.seq + 1);
        let recovery = WalRecovery {
            records: scanned.records.len(),
            bytes_kept: scanned.consumed as u64,
            bytes_dropped,
            defect: scanned.defect,
        };
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_seq,
                len_bytes: scanned.consumed as u64,
                sync,
            },
            scanned.records,
            recovery,
        ))
    }

    /// Appends one record and (if syncing) makes it durable. Returns the
    /// sequence number assigned to the record.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let bytes = encode_record(seq, kind, payload);
        self.file.write_all(&bytes).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        if self.sync {
            self.file.sync_data().map_err(io_err)?;
        }
        self.next_seq = seq + 1;
        self.len_bytes += bytes.len() as u64;
        Ok(seq)
    }

    /// Drops every record (after a snapshot has made them redundant) but
    /// keeps the sequence counter running, so post-truncation appends
    /// continue the global ordering.
    pub fn truncate_all(&mut self) -> Result<(), WalError> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        self.len_bytes = 0;
        Ok(())
    }

    /// Overrides the next sequence number — used after recovery when the
    /// log is empty but the snapshot already accounts for `seq - 1`.
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cardest-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("wal.log");
        std::fs::remove_file(&path).ok();
        let (mut wal, recs, rec) = Wal::open(&path, false).unwrap();
        assert!(recs.is_empty());
        assert_eq!(rec.records, 0);
        assert_eq!(wal.append(1, b"alpha").unwrap(), 1);
        assert_eq!(wal.append(2, b"").unwrap(), 2); // zero-length payload is valid
        assert_eq!(wal.append(1, b"gamma").unwrap(), 3);
        drop(wal);
        let (_, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(rec.bytes_dropped, 0);
        let got: Vec<(u64, u8, &[u8])> = recs
            .iter()
            .map(|r| (r.seq, r.kind, r.payload.as_slice()))
            .collect();
        assert_eq!(
            got,
            vec![
                (1, 1, &b"alpha"[..]),
                (2, 2, &b""[..]),
                (3, 1, &b"gamma"[..])
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_reopen_is_idempotent() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path, false).unwrap();
        wal.append(1, b"first").unwrap();
        wal.append(1, b"second").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let r1_end = HEADER_LEN + 5;
        // Kill mid-second-record: only the first survives, and the torn
        // bytes are physically removed.
        std::fs::write(&path, &full[..r1_end + 7]).unwrap();
        let (wal, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload, b"first");
        assert!(matches!(rec.defect, Some(TailDefect::ShortHeader { .. })));
        assert_eq!(rec.bytes_dropped, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), r1_end as u64);
        assert_eq!(wal.next_seq(), 2);
        drop(wal);
        // Second open sees a clean log — recovery is idempotent.
        let (_, recs2, rec2) = Wal::open(&path, false).unwrap();
        assert_eq!(recs2.len(), 1);
        assert_eq!(rec2.defect, None);
        assert_eq!(rec2.bytes_dropped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn post_truncation_append_continues_the_sequence() {
        let dir = tmp_dir("continue");
        let path = dir.join("wal.log");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path, false).unwrap();
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1]).unwrap(); // tear record 2
        let (mut wal, recs, _) = Wal::open(&path, false).unwrap();
        assert_eq!(recs.last().unwrap().seq, 1);
        assert_eq!(
            wal.append(1, b"b2").unwrap(),
            2,
            "seq continues after the last good record"
        );
        drop(wal);
        let (_, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(rec.defect, None);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].payload, b"b2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_classifies_each_defect() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(1, 7, b"hello"));
        bytes.extend_from_slice(&encode_record(2, 7, b"world"));
        // CRC mismatch: flip a payload bit in record 2.
        let mut flipped = bytes.clone();
        let at = flipped.len() - 2;
        flipped[at] ^= 0x10;
        let s = scan(&flipped);
        assert_eq!(s.records.len(), 1);
        assert!(matches!(
            s.defect,
            Some(TailDefect::CrcMismatch { seq: 2, .. })
        ));
        // Flipping a high bit of the length field reads as oversize.
        let mut long = bytes.clone();
        let r2 = HEADER_LEN + 5;
        long[r2 + 3] |= 0x80;
        let s = scan(&long);
        assert!(matches!(s.defect, Some(TailDefect::OversizePayload { .. })));
        // A sequence gap stops the scan at the gapped record.
        let mut gap = encode_record(1, 7, b"x");
        gap.extend_from_slice(&encode_record(3, 7, b"y"));
        let s = scan(&gap);
        assert_eq!(s.records.len(), 1);
        assert_eq!(
            s.defect,
            Some(TailDefect::SeqBreak {
                at: HEADER_LEN + 1,
                expected: 2,
                found: 3
            })
        );
    }

    #[test]
    fn truncate_all_keeps_the_sequence_counter() {
        let dir = tmp_dir("truncall");
        let path = dir.join("wal.log");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path, false).unwrap();
        wal.append(1, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        wal.truncate_all().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert_eq!(wal.append(1, b"c").unwrap(), 3);
        drop(wal);
        let (_, recs, _) = Wal::open(&path, false).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
