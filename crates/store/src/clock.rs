//! The store's single wall-clock access point.
//!
//! Snapshot-tmp staleness, replication heartbeats, and reconnect
//! deadlines are wall-clock by definition — nothing on the training or
//! recovery path reads them, so the bit-reproducibility contract
//! (`cardest-lint`'s `nondeterminism` rule) is unaffected. Keeping the
//! sanctioned clock reads here makes every other timing site grep-clean,
//! mirroring `cardest_server::clock`.

use std::time::{Instant, SystemTime};

/// Current monotonic instant (heartbeats, deadlines, lag timing).
pub fn now() -> Instant {
    // cardest-lint: allow(nondeterminism): replication heartbeats and retry deadlines are wall-clock by definition; no training-path result depends on this
    Instant::now()
}

/// Current wall time (file-mtime staleness comparisons only).
#[allow(clippy::disallowed_methods)]
pub fn wall() -> SystemTime {
    // cardest-lint: allow(nondeterminism): stale-tmp sweeping compares file mtimes against wall time; no training-path result depends on this
    SystemTime::now()
}
