//! Checkpoint snapshots in the `cardest_nn::artifact` container.
//!
//! A snapshot is a full serialized [`cardest_core::UpdatableGl`] state
//! prefixed with the last WAL sequence number it covers, wrapped in the
//! same magic/version/kind/checksum container model artifacts use, and
//! written with the same temp-file + atomic-rename discipline: a crash at
//! any point of a snapshot write leaves either the previous complete
//! snapshot or the new complete one on disk — never a torn file. Stray
//! temp files from a crash mid-rename are swept on recovery.

use cardest_nn::artifact::{self, ArtifactError};
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// Artifact kind tag for ingest snapshots.
pub const SNAPSHOT_KIND: &str = "cardest.snapshot";

/// Snapshot load failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// Container-level failure (missing file, truncation, checksum, kind).
    Artifact(ArtifactError),
    /// The verified payload is too short to hold the sequence prefix.
    MissingSeqPrefix { got: usize },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Artifact(e) => write!(f, "snapshot: {e}"),
            SnapshotError::MissingSeqPrefix { got } => {
                write!(f, "snapshot payload too short for seq prefix: {got} bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<ArtifactError> for SnapshotError {
    fn from(e: ArtifactError) -> Self {
        SnapshotError::Artifact(e)
    }
}

/// Writes a snapshot covering all WAL records with `seq <= last_seq`.
/// Atomic: readers see the old snapshot or the new one, never a mix.
pub fn write_snapshot(path: &Path, last_seq: u64, state: &[u8]) -> Result<(), SnapshotError> {
    let mut payload = Vec::with_capacity(8 + state.len());
    payload.extend_from_slice(&last_seq.to_le_bytes());
    payload.extend_from_slice(state);
    artifact::write_atomic(path, SNAPSHOT_KIND, &payload)?;
    Ok(())
}

/// Reads and verifies a snapshot, returning `(last_seq, state_bytes)`.
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u8>), SnapshotError> {
    let payload = artifact::read(path, SNAPSHOT_KIND)?;
    let seq_bytes = payload
        .get(..8)
        .ok_or(SnapshotError::MissingSeqPrefix { got: payload.len() })?;
    let last_seq = u64::from_le_bytes([
        seq_bytes[0],
        seq_bytes[1],
        seq_bytes[2],
        seq_bytes[3],
        seq_bytes[4],
        seq_bytes[5],
        seq_bytes[6],
        seq_bytes[7],
    ]);
    Ok((last_seq, payload[8..].to_vec()))
}

/// Grace window [`sweep_stale_tmp`] applies: a tmp file younger than this
/// may belong to a snapshot write in flight on another thread, so it is
/// left alone. Crash droppings are swept on the *next* recovery instead —
/// recovery after a crash is always at least a process restart away, so
/// anything older than a minute is provably not being written.
pub const SWEEP_GRACE: Duration = Duration::from_secs(60);

/// Removes temp files a crash mid-snapshot-rename left behind
/// (`.name.tmp.PID`, the naming `artifact::write_atomic` uses), but only
/// those whose mtime is older than `grace`: a concurrent snapshot writer
/// between temp-write and rename holds a *fresh* tmp file, and deleting
/// it from under the writer would fail the rename and drop the
/// checkpoint. Files with unreadable mtimes are treated as fresh (kept).
/// Returns how many were swept. Missing directories sweep zero files.
pub fn sweep_stale_tmp(dir: &Path, grace: Duration) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let now = crate::clock::wall();
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with('.') && name.contains(".tmp.")) {
            continue;
        }
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age >= grace);
        if old_enough && std::fs::remove_file(entry.path()).is_ok() {
            swept += 1;
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cardest-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn snapshot_round_trips_seq_and_state() {
        let dir = tmp_dir("rt");
        let path = dir.join("state.snapshot");
        write_snapshot(&path, 42, b"{\"state\":true}").unwrap();
        let (seq, state) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(state, b"{\"state\":true}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshot_is_rejected_loudly() {
        let dir = tmp_dir("trunc");
        let path = dir.join("state.snapshot");
        write_snapshot(&path, 7, b"payload-bytes").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, cardest_nn::faults::truncate(&bytes, keep)).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "truncation to {keep} bytes loaded cleanly"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_state_still_carries_its_seq() {
        let dir = tmp_dir("empty");
        let path = dir.join("state.snapshot");
        write_snapshot(&path, 3, b"").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), (3, Vec::new()));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Backdates a file's mtime so the sweep sees it as a crash dropping.
    fn backdate(path: &Path, by: Duration) {
        let f = std::fs::File::options().write(true).open(path).unwrap();
        f.set_modified(crate::clock::wall() - by).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_droppings_older_than_grace() {
        let dir = tmp_dir("sweep");
        let snap = dir.join("state.snapshot");
        write_snapshot(&snap, 1, b"keep-me").unwrap();
        // A crash between temp-write and rename leaves this behind.
        let dropping = dir.join(".state.snapshot.tmp.99999");
        std::fs::write(&dropping, b"torn").unwrap();
        // Fresh tmp files are presumed in-flight writes and kept...
        assert_eq!(sweep_stale_tmp(&dir, SWEEP_GRACE), 0);
        assert!(dropping.exists());
        // ...until they age past the grace window.
        backdate(&dropping, SWEEP_GRACE + Duration::from_secs(1));
        assert_eq!(sweep_stale_tmp(&dir, SWEEP_GRACE), 1);
        assert!(!dropping.exists());
        assert!(snap.exists());
        assert_eq!(read_snapshot(&snap).unwrap().1, b"keep-me");
        assert_eq!(sweep_stale_tmp(&dir, SWEEP_GRACE), 0);
        assert_eq!(sweep_stale_tmp(&dir.join("missing-subdir"), SWEEP_GRACE), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_never_races_a_concurrent_snapshot_writer() {
        let dir = tmp_dir("race");
        let snap = dir.join("state.snapshot");
        let writer_dir = dir.clone();
        let writer = std::thread::spawn(move || {
            for seq in 0..200u64 {
                write_snapshot(&writer_dir.join("state.snapshot"), seq, b"concurrent").unwrap();
            }
        });
        // Sweeping while the writer holds fresh tmp files must never
        // delete one out from under it (which would fail its rename).
        let mut swept = 0;
        while !writer.is_finished() {
            swept += sweep_stale_tmp(&dir, SWEEP_GRACE);
            std::thread::yield_now();
        }
        writer.join().unwrap();
        assert_eq!(swept, 0, "sweep deleted an in-flight tmp file");
        assert_eq!(read_snapshot(&snap).unwrap(), (199, b"concurrent".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
