//! Replication chaos harness (ISSUE 8 tentpole): a primary streams its
//! WAL through a deterministic fault-injecting proxy — drops, delays,
//! disconnects, truncated frames, duplicated frames, bit flips — and the
//! standby must reconnect with backoff, replay, and converge to a
//! `state_fingerprint` bit-identical to the primary's once the storm
//! drains. Also pins snapshot bootstrap after compaction and the
//! graceful-degradation contract (a dead standby never blocks inserts).

use cardest_baselines::traits::TrainingSet;
use cardest_core::backoff::BackoffConfig;
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::metric::Metric;
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorView;
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use cardest_store::chaos::{ChaosConfig, ChaosMode, ChaosProxy};
use cardest_store::replicate::{
    ListenerConfig, ReplicaClient, ReplicaClientConfig, ReplicaSource, ReplicationListener,
    SharedStore, StandbyTarget,
};
use cardest_store::{DurableIngest, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_DATA: usize = 400;
const DIM: usize = 16;

fn spec() -> DatasetSpec {
    DatasetSpec {
        dataset: PaperDataset::GloVe300,
        dim: DIM,
        n_data: N_DATA,
        n_train_queries: 30,
        n_test_queries: 10,
        metric: Metric::Angular,
        tau_max: 0.6,
    }
}

/// Trains the tiny GL stack, deterministic in the seed.
fn build_updatable(seed: u64) -> UpdatableGl {
    let spec = spec();
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        n_segments: 4,
        local_train: TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        global_train: TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        tuning: TuningConfig::fast(),
        tuning_segments: 1,
        ..Default::default()
    };
    let training = TrainingSet::new(&w.queries, &w.train);
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    UpdatableGl::new(
        data,
        spec.metric,
        gl,
        w.queries,
        w.train,
        w.test,
        &w.table,
        UpdateConfig::default(),
    )
}

fn dense_row(upd: &UpdatableGl, data_row: usize) -> Vec<f32> {
    match upd.data().view(data_row) {
        VectorView::Dense(row) => row.to_vec(),
        other => panic!("spec is dense, got {other:?}"),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cardest-repl-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Primary/standby configs: no auto-snapshots, WAL retained (the storm
/// test wants every record streamable), tiny segments so catch-up reads
/// span sealed files.
fn repl_cfg() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync_writes: false,
        retain_wal: true,
        rotate_bytes: 4096,
    }
}

fn fast_client_cfg(seed: u64) -> ReplicaClientConfig {
    ReplicaClientConfig {
        connect_timeout: Duration::from_secs(1),
        read_timeout: Duration::from_millis(30),
        write_timeout: Duration::from_secs(1),
        backoff: BackoffConfig {
            base: Duration::from_millis(10),
            max: Duration::from_millis(150),
            jitter: 0.5,
            max_attempts: 0,
        },
        seed,
        ack_every: 8,
    }
}

fn fast_listener_cfg() -> ListenerConfig {
    ListenerConfig {
        heartbeat_every: Duration::from_millis(100),
        batch_max: 32,
        ack_poll: Duration::from_millis(10),
        hello_deadline: Duration::from_secs(10),
    }
}

/// Waits until the standby's durable position reaches `target_seq`.
fn await_catchup(standby: &Arc<SharedStore>, target_seq: u64, deadline: Duration) {
    let start = Instant::now();
    while StandbyTarget::last_applied(standby.as_ref()) < target_seq {
        assert!(
            start.elapsed() < deadline,
            "standby stuck at seq {} of {} after {:?}",
            StandbyTarget::last_applied(standby.as_ref()),
            target_seq,
            deadline
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn standby_converges_bit_identically_through_the_fault_storm() {
    let upd = build_updatable(11);
    let base_json = upd.snapshot_json().unwrap();
    let insert_vecs: Vec<Vec<f32>> = (0..300)
        .map(|i| dense_row(&upd, (i * 7) % N_DATA))
        .collect();

    let dir_p = tmp_dir("storm-p");
    let primary = SharedStore::new(DurableIngest::create(&dir_p, upd, repl_cfg()).unwrap());
    let mut listener = ReplicationListener::start(
        "127.0.0.1:0",
        Arc::clone(&primary) as Arc<dyn ReplicaSource>,
        fast_listener_cfg(),
    )
    .unwrap();

    let mut proxy = ChaosProxy::start(listener.addr(), ChaosConfig::default()).unwrap();
    proxy.set_mode(ChaosMode::Storm);

    let dir_s = tmp_dir("storm-s");
    let upd_s = UpdatableGl::from_snapshot_json(&base_json).unwrap();
    let standby = SharedStore::new(DurableIngest::create(&dir_s, upd_s, repl_cfg()).unwrap());
    let mut client = ReplicaClient::start(
        proxy.addr().to_string(),
        Arc::clone(&standby) as Arc<dyn StandbyTarget>,
        fast_client_cfg(21),
    );
    let status = client.status();

    // Insert through the storm, paced so sessions break mid-stream.
    for (i, v) in insert_vecs.iter().enumerate() {
        primary.insert_dense(v).unwrap();
        if i % 10 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let head = ReplicaSource::head_seq(primary.as_ref());
    assert_eq!(head, 300);

    // Let the storm rage a while longer over the catch-up traffic...
    std::thread::sleep(Duration::from_millis(1500));
    // ...then drain it and require convergence.
    proxy.set_mode(ChaosMode::Transparent);
    await_catchup(&standby, head, Duration::from_secs(60));

    let chaos = proxy.stats();
    assert!(
        chaos.corruptions() > 0,
        "the storm injected no faults — the harness tested nothing"
    );
    assert!(
        status.reconnects.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "standby never had to reconnect through the storm"
    );
    assert_eq!(
        primary.fingerprint().unwrap(),
        standby.fingerprint().unwrap(),
        "standby state diverged from primary after the storm drained"
    );

    client.stop();
    proxy.stop();
    listener.stop();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_s).ok();
}

#[test]
fn compacted_primary_bootstraps_standby_from_snapshot_then_streams() {
    let upd = build_updatable(13);
    let base_json = upd.snapshot_json().unwrap();
    let rows: Vec<Vec<f32>> = (0..70).map(|i| dense_row(&upd, (i * 3) % N_DATA)).collect();

    // Primary compacts: snapshots drop covered WAL records/segments.
    let dir_p = tmp_dir("boot-p");
    let cfg = StoreConfig {
        snapshot_every: 0,
        sync_writes: false,
        retain_wal: false,
        rotate_bytes: 2048,
    };
    let primary = SharedStore::new(DurableIngest::create(&dir_p, upd, cfg).unwrap());
    for v in &rows[..50] {
        primary.insert_dense(v).unwrap();
    }
    // Snapshot + compaction: seqs 1..=50 are no longer on disk as WAL.
    primary.with(|s| s.snapshot_now()).unwrap();

    let mut listener = ReplicationListener::start(
        "127.0.0.1:0",
        Arc::clone(&primary) as Arc<dyn ReplicaSource>,
        fast_listener_cfg(),
    )
    .unwrap();

    // A standby at seq 0 must be bootstrapped by a snapshot frame.
    let dir_s = tmp_dir("boot-s");
    let upd_s = UpdatableGl::from_snapshot_json(&base_json).unwrap();
    let standby = SharedStore::new(DurableIngest::create(&dir_s, upd_s, cfg).unwrap());
    let mut client = ReplicaClient::start(
        listener.addr().to_string(),
        Arc::clone(&standby) as Arc<dyn StandbyTarget>,
        fast_client_cfg(23),
    );
    let status = client.status();
    await_catchup(&standby, 50, Duration::from_secs(30));
    // The store position advances inside `install_snapshot`, a beat
    // before the counter — give the client thread a moment to record it.
    let t = Instant::now();
    while status
        .snapshots_installed
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
        && t.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        status
            .snapshots_installed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "catch-up over a compacted WAL must go through a snapshot frame"
    );
    assert_eq!(
        primary.fingerprint().unwrap(),
        standby.fingerprint().unwrap()
    );

    // From here the live stream continues record-by-record.
    for v in &rows[50..] {
        primary.insert_dense(v).unwrap();
    }
    await_catchup(&standby, 70, Duration::from_secs(30));
    assert_eq!(
        primary.fingerprint().unwrap(),
        standby.fingerprint().unwrap()
    );
    // Standby recovery from its own disk reproduces the replicated state.
    client.stop();
    listener.stop();
    let standby_fp = standby.fingerprint().unwrap();
    drop(standby);
    let (reopened, _) = DurableIngest::open(&dir_s, cfg).unwrap();
    assert_eq!(reopened.fingerprint().unwrap(), standby_fp);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_s).ok();
}

#[test]
fn dead_standby_never_blocks_primary_inserts() {
    let upd = build_updatable(17);
    let base_json = upd.snapshot_json().unwrap();
    let rows: Vec<Vec<f32>> = (0..200)
        .map(|i| dense_row(&upd, (i * 5) % N_DATA))
        .collect();

    let dir_p = tmp_dir("dead-p");
    let primary = SharedStore::new(DurableIngest::create(&dir_p, upd, repl_cfg()).unwrap());
    let mut listener = ReplicationListener::start(
        "127.0.0.1:0",
        Arc::clone(&primary) as Arc<dyn ReplicaSource>,
        fast_listener_cfg(),
    )
    .unwrap();

    // Baseline: no standby at all.
    let t0 = Instant::now();
    for v in &rows[..100] {
        primary.insert_dense(v).unwrap();
    }
    let solo = t0.elapsed();

    // A standby connects, catches up, then dies abruptly.
    let dir_s = tmp_dir("dead-s");
    let upd_s = UpdatableGl::from_snapshot_json(&base_json).unwrap();
    let standby = SharedStore::new(DurableIngest::create(&dir_s, upd_s, repl_cfg()).unwrap());
    let mut client = ReplicaClient::start(
        listener.addr().to_string(),
        Arc::clone(&standby) as Arc<dyn StandbyTarget>,
        fast_client_cfg(29),
    );
    await_catchup(&standby, 100, Duration::from_secs(30));
    client.stop();
    drop(client);

    // Inserts against the now-dead standby: the primary only accumulates
    // lag; it must not block. Allow a generous multiple of the baseline
    // to keep the assertion robust on loaded CI machines — the failure
    // mode this guards against is a *hang* on a dead peer, not jitter.
    let t1 = Instant::now();
    for v in &rows[100..] {
        primary.insert_dense(v).unwrap();
    }
    let with_dead_standby = t1.elapsed();
    assert!(
        with_dead_standby < solo * 20 + Duration::from_secs(2),
        "inserts slowed from {solo:?} to {with_dead_standby:?} after the standby died"
    );

    // The primary reports the dead standby as lag, not as an error.
    let head = ReplicaSource::head_seq(primary.as_ref());
    let stats = listener.stats();
    assert_eq!(head, 200);
    assert!(
        stats.lag(head) > 0,
        "a dead standby at seq 100 must show as replication lag"
    );

    listener.stop();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_s).ok();
}
