//! Property tests for WAL record framing: encode/decode round-trips,
//! torn-tail prefix recovery, bit-flip detection, and zero-length-record
//! corpora (the framing-level mirror of the `artifact` truncation
//! fixtures).

use cardest_store::crash::{encode_stream, records_surviving};
use cardest_store::wal::{scan, TailDefect, HEADER_LEN};
use proptest::prelude::*;

/// Generated op streams: 1–8 records, payloads 0–24 bytes (zero-length
/// payloads are valid records and must round-trip).
fn to_ops(raw: Vec<(u16, Vec<u16>)>) -> Vec<(u8, Vec<u8>)> {
    raw.into_iter()
        .map(|(kind, payload)| {
            (
                kind as u8,
                payload.into_iter().map(|b| b as u8).collect::<Vec<u8>>(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_scan_round_trips(
        raw in prop::collection::vec(
            (0u16..8, prop::collection::vec(0u16..256, 0..24)),
            1..8,
        ),
        first_seq in 1u64..1000,
    ) {
        let ops = to_ops(raw);
        let (bytes, ends) = encode_stream(&ops, first_seq);
        let s = scan(&bytes);
        prop_assert_eq!(&s.defect, &None);
        prop_assert_eq!(s.consumed, bytes.len());
        prop_assert_eq!(s.records.len(), ops.len());
        for (i, r) in s.records.iter().enumerate() {
            prop_assert_eq!(r.seq, first_seq + i as u64);
            prop_assert_eq!(r.kind, ops[i].0);
            prop_assert_eq!(&r.payload, &ops[i].1);
        }
        prop_assert_eq!(*ends.last().unwrap(), bytes.len());
    }

    #[test]
    fn truncated_tail_keeps_the_longest_valid_prefix(
        raw in prop::collection::vec(
            (0u16..8, prop::collection::vec(0u16..256, 0..24)),
            1..8,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let ops = to_ops(raw);
        let (bytes, ends) = encode_stream(&ops, 1);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let s = scan(&bytes[..cut]);
        let survivors = records_surviving(&ends, cut);
        prop_assert_eq!(
            s.records.len(),
            survivors,
            "cut at {} of {} kept {} records, expected {}",
            cut, bytes.len(), s.records.len(), survivors
        );
        // The kept records are byte-identical to the original prefix.
        for (i, r) in s.records.iter().enumerate() {
            prop_assert_eq!(r.kind, ops[i].0);
            prop_assert_eq!(&r.payload, &ops[i].1);
        }
        // Consumption stops exactly at the last surviving boundary, and a
        // mid-record cut is classified as a defect.
        let boundary = if survivors == 0 { 0 } else { ends[survivors - 1] };
        prop_assert_eq!(s.consumed, boundary);
        if cut != boundary {
            prop_assert!(s.defect.is_some(), "mid-record cut at {} reported no defect", cut);
        } else {
            prop_assert_eq!(&s.defect, &None);
        }
    }

    #[test]
    fn single_bit_flip_stops_the_scan_at_the_flipped_record(
        raw in prop::collection::vec(
            (0u16..8, prop::collection::vec(0u16..256, 1..24)),
            1..8,
        ),
        pick_record in 0usize..10_000,
        pick_byte in 0usize..10_000,
        bit in 0u16..8,
    ) {
        let ops = to_ops(raw);
        let (mut bytes, ends) = encode_stream(&ops, 1);
        let r = pick_record % ops.len();
        let start = if r == 0 { 0 } else { ends[r - 1] };
        let at = start + pick_byte % (ends[r] - start);
        bytes[at] ^= 1u8 << bit;
        let s = scan(&bytes);
        // Records before the flipped one survive untouched; the flipped
        // record is rejected (CRC covers seq, kind, and payload, and a
        // flipped length reframes the checksummed region).
        prop_assert_eq!(
            s.records.len(), r,
            "flip at byte {} (record {}) kept {} records", at, r, s.records.len()
        );
        for (i, rec) in s.records.iter().enumerate() {
            prop_assert_eq!(&rec.payload, &ops[i].1);
        }
        prop_assert!(s.defect.is_some());
    }

    #[test]
    fn zero_length_record_corpora_survive_truncation(
        n in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        // A stream of nothing but empty payloads: every record is exactly
        // one header, the tightest framing the scanner faces.
        let ops: Vec<(u8, Vec<u8>)> = (0..n).map(|i| ((i % 4) as u8, Vec::new())).collect();
        let (bytes, ends) = encode_stream(&ops, 1);
        prop_assert_eq!(bytes.len(), n * HEADER_LEN);
        let s = scan(&bytes);
        prop_assert_eq!(s.records.len(), n);
        prop_assert!(s.records.iter().all(|r| r.payload.is_empty()));
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let t = scan(&bytes[..cut]);
        prop_assert_eq!(t.records.len(), records_surviving(&ends, cut));
        prop_assert_eq!(t.consumed, cut - cut % HEADER_LEN);
        if cut % HEADER_LEN != 0 {
            prop_assert!(matches!(t.defect, Some(TailDefect::ShortHeader { .. })));
        }
    }
}
