//! Property tests for the replication frame codec, mirroring
//! `wal_props.rs`: encode/decode round-trips, torn frames at every byte
//! offset ask for more bytes instead of misdecoding, and bit flips are
//! always rejected — never applied as a different frame.

use cardest_store::replicate::{decode_frame, encode_frame, Frame, FRAME_HEADER_LEN};
use cardest_store::wal::WalRecord;
use proptest::prelude::*;

/// Builds one arbitrary frame from flattened generator output.
fn make_frame(pick: u8, a: u64, kind: u16, bytes: Vec<u16>) -> Frame {
    let payload: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
    match pick % 5 {
        0 => Frame::Hello { last_applied: a },
        1 => Frame::Snapshot {
            seq: a,
            state: payload,
        },
        2 => Frame::Record(WalRecord {
            seq: a,
            kind: kind as u8,
            payload,
        }),
        3 => Frame::Heartbeat { head_seq: a },
        _ => Frame::Ack { seq: a },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_round_trips(
        pick in 0u8..5,
        a in 0u64..u64::MAX,
        kind in 0u16..256,
        bytes in prop::collection::vec(0u16..256, 0..48),
    ) {
        let frame = make_frame(pick, a, kind, bytes);
        let enc = encode_frame(&frame);
        prop_assert!(enc.len() >= FRAME_HEADER_LEN);
        let (dec, consumed) = decode_frame(&enc).unwrap().unwrap();
        prop_assert_eq!(dec, frame);
        prop_assert_eq!(consumed, enc.len());
    }

    #[test]
    fn torn_frame_at_every_offset_asks_for_more_never_misdecodes(
        pick in 0u8..5,
        a in 0u64..1_000_000,
        kind in 0u16..256,
        bytes in prop::collection::vec(0u16..256, 0..48),
    ) {
        let frame = make_frame(pick, a, kind, bytes);
        let enc = encode_frame(&frame);
        for keep in 0..enc.len() {
            // A prefix of a valid frame is never an error and never a
            // decoded frame — the reader must simply wait for more bytes.
            prop_assert_eq!(
                decode_frame(&enc[..keep]).unwrap(),
                None,
                "prefix of {} bytes decoded or errored", keep
            );
        }
    }

    #[test]
    fn a_stream_cut_mid_frame_yields_exactly_the_whole_frames(
        picks in prop::collection::vec((0u8..5, 0u64..10_000, 0u16..256,
            prop::collection::vec(0u16..256, 0..24)), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let frames: Vec<Frame> = picks
            .into_iter()
            .map(|(p, a, k, b)| make_frame(p, a, k, b))
            .collect();
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
            ends.push(stream.len());
        }
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while let Some((f, consumed)) = decode_frame(&stream[pos..cut]).unwrap() {
            decoded.push(f);
            pos += consumed;
        }
        prop_assert_eq!(decoded.len(), whole);
        for (d, f) in decoded.iter().zip(&frames) {
            prop_assert_eq!(d, f);
        }
    }

    #[test]
    fn bit_flips_never_misapply(
        pick in 0u8..5,
        a in 0u64..1_000_000,
        kind in 0u16..256,
        bytes in prop::collection::vec(0u16..256, 1..48),
        flip in 0usize..80_000,
    ) {
        let frame = make_frame(pick, a, kind, bytes);
        let mut enc = encode_frame(&frame);
        let at = (flip / 8) % enc.len();
        let bit = (flip % 8) as u8;
        enc[at] ^= 1 << bit;
        // The flipped buffer must never decode to a *different* frame: a
        // flip is caught by the checksum (payload/type/crc bytes) or
        // reframes the buffer (length bytes), which either starves the
        // reader (needs more bytes) or fails the checksum of the
        // reframed region.
        match decode_frame(&enc) {
            Err(_) => {}
            Ok(None) => {}
            Ok(Some((decoded, _))) => {
                prop_assert_eq!(&decoded, &frame, "flip at {} decoded a different frame", at);
                // Only a flip that cancels itself could decode the same
                // frame; a single bit flip never does.
                prop_assert!(false, "single flip at {} still decoded", at);
            }
        }
    }

    #[test]
    fn duplicated_frames_decode_as_two_identical_frames(
        pick in 0u8..5,
        a in 0u64..1_000_000,
        kind in 0u16..256,
        bytes in prop::collection::vec(0u16..256, 0..24),
    ) {
        // The chaos proxy duplicates whole chunks; when a chunk holds
        // complete frames the reader sees duplicates, which must decode
        // cleanly (dedup happens at the apply layer by seq).
        let frame = make_frame(pick, a, kind, bytes);
        let one = encode_frame(&frame);
        let mut twice = one.clone();
        twice.extend_from_slice(&one);
        let (f1, c1) = decode_frame(&twice).unwrap().unwrap();
        let (f2, c2) = decode_frame(&twice[c1..]).unwrap().unwrap();
        prop_assert_eq!(&f1, &frame);
        prop_assert_eq!(&f2, &frame);
        prop_assert_eq!(c1 + c2, twice.len());
    }
}
