//! The crash matrix: kill the WAL at every scheduled byte offset and
//! assert recovery is *bit-identical* to the never-crashed run's state
//! after the last fully-durable record.
//!
//! Methodology: run an op stream through a live [`DurableIngest`],
//! fingerprinting the full serialized state after every op (`fp[i]` =
//! state after `i` ops). The WAL bytes of that run, cut at offset `o`,
//! are exactly what a kill at `o` leaves on disk; recovery from that
//! prefix must reproduce `fp[records_surviving(o)]`. The schedule covers
//! clean boundaries, boundary ± 1, every header field's interior,
//! payload midpoints, and seeded random offsets — plus bit-flip
//! mid-stream, crash-between-snapshot-and-truncate, and stray
//! mid-rename temp files.

use cardest_baselines::traits::{CardinalityEstimator, TrainingSet};
use cardest_core::gl::{GlConfig, GlEstimator, GlVariant};
use cardest_core::tuning::TuningConfig;
use cardest_core::update::{UpdatableGl, UpdateConfig};
use cardest_data::paper::{DatasetSpec, PaperDataset};
use cardest_data::vector::VectorData;
use cardest_data::workload::SearchWorkload;
use cardest_nn::trainer::TrainConfig;
use cardest_store::crash::{install_torn_wal, kill_offsets, records_surviving};
use cardest_store::ingest::{DurableIngest, StoreConfig, SNAPSHOT_FILE, WAL_FILE};
use cardest_store::wal::{scan, HEADER_LEN};
use std::path::{Path, PathBuf};

fn setup(dataset: PaperDataset, seed: u64) -> UpdatableGl {
    let spec = DatasetSpec {
        n_data: 400,
        n_train_queries: 30,
        n_test_queries: 10,
        ..dataset.spec()
    };
    let data = spec.generate(seed);
    let w = SearchWorkload::build(&data, &spec, seed);
    let cfg = GlConfig {
        variant: GlVariant::GlCnn,
        n_segments: 4,
        local_train: TrainConfig {
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        },
        global_train: TrainConfig {
            epochs: 3,
            batch_size: 64,
            ..Default::default()
        },
        tuning: TuningConfig::fast(),
        tuning_segments: 1,
        ..Default::default()
    };
    let training = TrainingSet::new(&w.queries, &w.train);
    let gl = GlEstimator::train(&data, spec.metric, &training, &w.table, &cfg);
    UpdatableGl::new(
        data,
        spec.metric,
        gl,
        w.queries,
        w.train,
        w.test,
        &w.table,
        UpdateConfig::default(),
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("cardest-crashmx-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// No auto-snapshots, no fsync (we crash from byte buffers, not kills),
/// and the full WAL retained so every kill offset is reachable.
fn matrix_cfg() -> StoreConfig {
    StoreConfig {
        snapshot_every: 0,
        sync_writes: false,
        retain_wal: true,
        rotate_bytes: 0,
    }
}

#[derive(Clone, Copy)]
enum Op {
    Insert(usize),
    Delete(usize),
}

/// An op stream with inserts, deletes, and a deliberate double-delete
/// (the no-op second delete is still logged, so replay must reproduce
/// the no-op identically).
fn op_stream() -> Vec<Op> {
    vec![
        Op::Insert(0),
        Op::Insert(1),
        Op::Insert(2),
        Op::Delete(3),
        Op::Insert(5),
        Op::Insert(8),
        Op::Delete(3), // no-op: already tombstoned
        Op::Insert(13),
        Op::Insert(21),
        Op::Delete(34),
        Op::Insert(55),
        Op::Insert(89),
        Op::Insert(144),
        Op::Insert(233),
    ]
}

/// Applies the stream to a live store, returning `fp[i]` = fingerprint
/// after the first `i` ops (so `fp[0]` is the pre-stream state).
fn run_stream(store: &mut DurableIngest, src: &VectorData, ops: &[Op]) -> Vec<u64> {
    let mut fps = vec![store.fingerprint().unwrap()];
    for op in ops {
        match *op {
            Op::Insert(row) => {
                store.insert(src.view(row)).unwrap();
            }
            Op::Delete(idx) => {
                store.delete(idx).unwrap();
            }
        }
        fps.push(store.fingerprint().unwrap());
    }
    fps
}

/// Record end offsets of a WAL byte buffer (cumulative framing).
fn record_ends(bytes: &[u8]) -> Vec<usize> {
    let s = scan(bytes);
    assert_eq!(s.defect, None, "live WAL must scan clean");
    let mut ends = Vec::with_capacity(s.records.len());
    let mut at = 0usize;
    for r in &s.records {
        at += HEADER_LEN + r.payload.len();
        ends.push(at);
    }
    ends
}

/// Installs `snapshot` + the first `keep` bytes of `wal` in `dir` and
/// recovers. Returns the recovered store and its report.
fn recover_torn(
    dir: &Path,
    snapshot: &[u8],
    wal: &[u8],
    keep: usize,
) -> (DurableIngest, cardest_store::RecoveryReport) {
    std::fs::write(dir.join(SNAPSHOT_FILE), snapshot).unwrap();
    install_torn_wal(&dir.join(WAL_FILE), wal, keep).unwrap();
    DurableIngest::open(dir, matrix_cfg()).unwrap()
}

#[test]
fn crash_matrix_dense_recovers_bit_identical_state() {
    let upd = setup(PaperDataset::GloVe300, 41);
    let src = upd.data().gather(&(0..300).collect::<Vec<_>>());
    let live_dir = tmp_dir("dense-live");
    let mut store = DurableIngest::create(&live_dir, upd, matrix_cfg()).unwrap();
    let ops = op_stream();
    let fps = run_stream(&mut store, &src, &ops);
    assert_eq!(fps.len(), ops.len() + 1);

    let snapshot = std::fs::read(live_dir.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(live_dir.join(WAL_FILE)).unwrap();
    let ends = record_ends(&wal);
    assert_eq!(ends.len(), ops.len());

    let offsets = kill_offsets(&ends, 0xC4A5, 12);
    let rec_dir = tmp_dir("dense-rec");
    for (k, &off) in offsets.iter().enumerate() {
        let survivors = records_surviving(&ends, off);
        let (recovered, report) = recover_torn(&rec_dir, &snapshot, &wal, off);
        assert_eq!(
            recovered.fingerprint().unwrap(),
            fps[survivors],
            "kill at byte {off} ({survivors} records durable) diverged: {report:?}"
        );
        assert_eq!(report.snapshot_seq, 0);
        assert_eq!(report.replayed, survivors);
        assert_eq!(recovered.last_seq(), survivors as u64);
        // A kill that did not land on a record boundary must be reported
        // as a (now truncated) tail defect.
        let clean = off == 0 || ends.contains(&off);
        assert_eq!(report.wal.defect.is_none(), clean, "kill at {off}");
        drop(recovered);
        // Recovery is idempotent: re-opening the repaired store drops
        // nothing further and lands on the same state.
        if k % 5 == 0 {
            let (again, report2) = DurableIngest::open(&rec_dir, matrix_cfg()).unwrap();
            assert_eq!(report2.wal.bytes_dropped, 0, "second open re-truncated");
            assert_eq!(report2.wal.defect, None);
            assert_eq!(again.fingerprint().unwrap(), fps[survivors]);
        }
    }

    // Post-recovery estimates stay well-formed after a full-tail recovery.
    let (recovered, _) = recover_torn(&rec_dir, &snapshot, &wal, wal.len());
    let est = recovered.estimator();
    for s in est.test_samples().iter().take(3) {
        let e = est.gl().estimate(est.queries().view(s.query), s.tau);
        assert!(e.is_finite() && e >= 0.0, "post-recovery estimate {e}");
    }

    std::fs::remove_dir_all(&live_dir).ok();
    std::fs::remove_dir_all(&rec_dir).ok();
}

#[test]
fn crash_matrix_binary_recovers_bit_identical_state() {
    // Same matrix on a bit-packed Hamming dataset: exercises the binary
    // insert op encoding. Boundary-heavy schedule, fewer random offsets.
    let upd = setup(PaperDataset::ImageNet, 43);
    let src = upd.data().gather(&(0..100).collect::<Vec<_>>());
    let live_dir = tmp_dir("bin-live");
    let mut store = DurableIngest::create(&live_dir, upd, matrix_cfg()).unwrap();
    let ops: Vec<Op> = vec![
        Op::Insert(0),
        Op::Insert(7),
        Op::Delete(2),
        Op::Insert(9),
        Op::Insert(11),
        Op::Delete(2),
        Op::Insert(63),
    ];
    let fps = run_stream(&mut store, &src, &ops);
    let snapshot = std::fs::read(live_dir.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(live_dir.join(WAL_FILE)).unwrap();
    let ends = record_ends(&wal);
    let rec_dir = tmp_dir("bin-rec");
    for &off in &kill_offsets(&ends, 0xB17, 4) {
        let survivors = records_surviving(&ends, off);
        let (recovered, _) = recover_torn(&rec_dir, &snapshot, &wal, off);
        assert_eq!(
            recovered.fingerprint().unwrap(),
            fps[survivors],
            "binary kill at byte {off}"
        );
    }
    std::fs::remove_dir_all(&live_dir).ok();
    std::fs::remove_dir_all(&rec_dir).ok();
}

#[test]
fn bit_flip_mid_stream_recovers_the_prefix_before_the_flip() {
    let upd = setup(PaperDataset::GloVe300, 47);
    let src = upd.data().gather(&(0..300).collect::<Vec<_>>());
    let live_dir = tmp_dir("flip-live");
    let mut store = DurableIngest::create(&live_dir, upd, matrix_cfg()).unwrap();
    let ops = op_stream();
    let fps = run_stream(&mut store, &src, &ops);
    let snapshot = std::fs::read(live_dir.join(SNAPSHOT_FILE)).unwrap();
    let wal = std::fs::read(live_dir.join(WAL_FILE)).unwrap();
    let ends = record_ends(&wal);
    let rec_dir = tmp_dir("flip-rec");
    // Flip one bit inside records 2, 6, and the last: recovery keeps
    // exactly the records before the flipped one.
    for &r in &[2usize, 6, ops.len() - 1] {
        let start = if r == 0 { 0 } else { ends[r - 1] };
        let mut torn = wal.clone();
        torn[start + 9] ^= 0x20; // inside the checksum field
        std::fs::write(rec_dir.join(SNAPSHOT_FILE), &snapshot).unwrap();
        std::fs::write(rec_dir.join(WAL_FILE), &torn).unwrap();
        let (recovered, report) = DurableIngest::open(&rec_dir, matrix_cfg()).unwrap();
        assert_eq!(report.replayed, r, "flip in record {r}");
        assert!(report.wal.defect.is_some());
        assert_eq!(recovered.fingerprint().unwrap(), fps[r]);
    }
    std::fs::remove_dir_all(&live_dir).ok();
    std::fs::remove_dir_all(&rec_dir).ok();
}

#[test]
fn segmented_wal_crash_matrix_recovers_across_segments() {
    // The same kill-and-recover methodology, with the WAL rotated into
    // several sealed segments: kills inside the active segment, kills
    // exactly at a rotation boundary (no active file yet), and a flip
    // inside a middle sealed segment — which must drop that segment's
    // tail AND every later segment, keeping one gap-free prefix.
    let upd = setup(PaperDataset::GloVe300, 59);
    let src = upd.data().gather(&(0..300).collect::<Vec<_>>());
    let live_dir = tmp_dir("seg-live");
    let cfg = StoreConfig {
        snapshot_every: 0,
        sync_writes: false,
        retain_wal: true,
        rotate_bytes: 256,
    };
    let mut store = DurableIngest::create(&live_dir, upd, cfg).unwrap();
    let ops = op_stream();
    let fps = run_stream(&mut store, &src, &ops);
    assert!(
        store.wal_segments() >= 2,
        "stream must span several sealed segments, got {}",
        store.wal_segments()
    );
    drop(store);

    let snapshot = std::fs::read(live_dir.join(SNAPSHOT_FILE)).unwrap();
    let mut sealed: Vec<(String, Vec<u8>)> = std::fs::read_dir(&live_dir)
        .unwrap()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name.starts_with("wal.") && name.ends_with(".seg"))
                .then(|| (name, std::fs::read(e.path()).unwrap()))
        })
        .collect();
    sealed.sort(); // zero-padded names: lexical order == sequence order
    let active = std::fs::read(live_dir.join(WAL_FILE)).unwrap();
    let per_segment: Vec<usize> = sealed.iter().map(|(_, b)| scan(b).records.len()).collect();
    let sealed_total: usize = per_segment.iter().sum();
    let ends_active = record_ends(&active);
    assert_eq!(sealed_total + ends_active.len(), ops.len());

    let rec_dir = tmp_dir("seg-rec");
    // Lays down snapshot + all sealed segments + `keep` bytes of the
    // active file (None = crashed exactly at a rotation boundary).
    let restore = |keep_active: Option<usize>| {
        for e in std::fs::read_dir(&rec_dir).unwrap().flatten() {
            if e.file_name().to_string_lossy().starts_with("wal.") {
                std::fs::remove_file(e.path()).unwrap();
            }
        }
        std::fs::write(rec_dir.join(SNAPSHOT_FILE), &snapshot).unwrap();
        for (name, bytes) in &sealed {
            std::fs::write(rec_dir.join(name), bytes).unwrap();
        }
        if let Some(keep) = keep_active {
            install_torn_wal(&rec_dir.join(WAL_FILE), &active, keep).unwrap();
        }
    };

    // Kill inside the active segment: sealed records all survive, the
    // active tail truncates exactly as in the single-file matrix.
    for &off in &kill_offsets(&ends_active, 0x5E61, 4) {
        restore(Some(off));
        let (recovered, report) = DurableIngest::open(&rec_dir, cfg).unwrap();
        let survivors = sealed_total + records_surviving(&ends_active, off);
        assert_eq!(
            recovered.fingerprint().unwrap(),
            fps[survivors],
            "active-segment kill at byte {off} diverged: {report:?}"
        );
        assert_eq!(recovered.last_seq(), survivors as u64);
    }

    // Kill exactly at a rotation boundary: the active file was never
    // created. Recovery is the sealed stream, and the sequence counter
    // continues where it left off.
    restore(None);
    let (mut recovered, report) = DurableIngest::open(&rec_dir, cfg).unwrap();
    assert_eq!(report.replayed, sealed_total);
    assert_eq!(recovered.fingerprint().unwrap(), fps[sealed_total]);
    let receipt = recovered.insert(src.view(250)).unwrap();
    assert_eq!(receipt.seq, sealed_total as u64 + 1);
    drop(recovered);

    // Flip a checksum bit in a *middle* sealed segment: everything from
    // that record on — including later segments and the active file — is
    // unreachable and must be dropped from disk.
    let mid = sealed.len() / 2;
    let before_mid: usize = per_segment[..mid].iter().sum();
    restore(Some(active.len()));
    let mut flipped = sealed[mid].1.clone();
    flipped[9] ^= 0x40; // inside the first record's checksum field
    std::fs::write(rec_dir.join(&sealed[mid].0), &flipped).unwrap();
    let (recovered, report) = DurableIngest::open(&rec_dir, cfg).unwrap();
    assert!(report.wal.defect.is_some(), "flip must surface as a defect");
    assert_eq!(report.replayed, before_mid);
    assert_eq!(recovered.fingerprint().unwrap(), fps[before_mid]);
    assert_eq!(recovered.last_seq(), before_mid as u64);
    for (name, _) in &sealed[mid..] {
        assert!(
            !rec_dir.join(name).exists(),
            "{name} should have been dropped with the broken chain"
        );
    }
    assert_eq!(
        std::fs::metadata(rec_dir.join(WAL_FILE)).unwrap().len(),
        0,
        "orphaned active records must not survive a mid-chain break"
    );
    drop(recovered);
    // Idempotent: a second open finds nothing further to repair.
    let (again, report2) = DurableIngest::open(&rec_dir, cfg).unwrap();
    assert_eq!(report2.wal.bytes_dropped, 0);
    assert_eq!(again.fingerprint().unwrap(), fps[before_mid]);

    std::fs::remove_dir_all(&live_dir).ok();
    std::fs::remove_dir_all(&rec_dir).ok();
}

#[test]
fn snapshot_mid_stream_matches_straight_through_replay() {
    let upd = setup(PaperDataset::GloVe300, 53);
    let base_json = upd.snapshot_json().unwrap();
    let src = upd.data().gather(&(0..300).collect::<Vec<_>>());
    let ops = op_stream();

    // Reference: full-WAL run, no snapshots.
    let dir_a = tmp_dir("snapmid-a");
    let mut store_a = DurableIngest::create(&dir_a, upd, matrix_cfg()).unwrap();
    let fps = run_stream(&mut store_a, &src, &ops);

    // Same stream with auto-snapshots every 5 appends (and WAL truncation
    // behind them): the end state must be bit-identical.
    let dir_b = tmp_dir("snapmid-b");
    let upd_b = UpdatableGl::from_snapshot_json(&base_json).unwrap();
    let cfg_b = StoreConfig {
        snapshot_every: 5,
        sync_writes: false,
        retain_wal: false,
        rotate_bytes: 0,
    };
    let mut store_b = DurableIngest::create(&dir_b, upd_b, cfg_b).unwrap();
    let fps_b = run_stream(&mut store_b, &src, &ops);
    assert_eq!(fps_b.last(), fps.last(), "snapshotting changed the state");
    drop(store_b);
    // The on-disk snapshot is the one auto-written at append 10.
    let snap_b = std::fs::read(dir_b.join(SNAPSHOT_FILE)).unwrap();

    // Store B's WAL now holds only the records past its last snapshot
    // (seq 10). Crash it at every offset: recovery = snapshot(10) + tail.
    let wal_b = std::fs::read(dir_b.join(WAL_FILE)).unwrap();
    let ends_b = record_ends(&wal_b);
    assert_eq!(ends_b.len(), ops.len() - 10);
    for &off in &kill_offsets(&ends_b, 0x5EED, 4) {
        install_torn_wal(&dir_b.join(WAL_FILE), &wal_b, off).unwrap();
        let (recovered, report) = DurableIngest::open(&dir_b, cfg_b).unwrap();
        assert_eq!(report.snapshot_seq, 10);
        let survivors = records_surviving(&ends_b, off);
        assert_eq!(recovered.fingerprint().unwrap(), fps[10 + survivors]);
    }

    // Crash *between* snapshot-write and WAL-truncate: the snapshot at
    // seq 10 paired with the full WAL (seqs 1..=14). Covered records are
    // skipped, the tail is replayed.
    let wal_a = std::fs::read(dir_a.join(WAL_FILE)).unwrap();
    let dir_c = tmp_dir("snapmid-c");
    std::fs::write(dir_c.join(SNAPSHOT_FILE), &snap_b).unwrap();
    std::fs::write(dir_c.join(WAL_FILE), &wal_a).unwrap();
    let (recovered, report) = DurableIngest::open(&dir_c, cfg_b).unwrap();
    assert_eq!(report.skipped, 10);
    assert_eq!(report.replayed, 4);
    assert_eq!(recovered.fingerprint().unwrap(), *fps.last().unwrap());

    // Crash mid-snapshot-rename: a stray temp file next to a good
    // snapshot is swept, never loaded. Recovery runs at least a process
    // restart after the crash, so the dropping is older than the sweep's
    // grace window — simulated by backdating its mtime.
    let dropping = dir_c.join(".state.snapshot.tmp.4242");
    std::fs::write(&dropping, b"torn snapshot").unwrap();
    let f = std::fs::File::options()
        .write(true)
        .open(&dropping)
        .unwrap();
    f.set_modified(cardest_store::clock::wall() - 2 * cardest_store::snapshot::SWEEP_GRACE)
        .unwrap();
    drop(f);
    let (_, report) = DurableIngest::open(&dir_c, cfg_b).unwrap();
    assert_eq!(report.stale_tmp_swept, 1);
    assert!(!dropping.exists());

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
    std::fs::remove_dir_all(&dir_c).ok();
}
