// Mirror the library's self-discipline in the binary crate root.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! `cardest-lint` CLI: `cardest-lint [--format=text|json] [--list-rules]
//! [paths...]`. Paths default to `crates`. Exit code 0 means no
//! diagnostics, 1 means violations were found, 2 means usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cardest_lint::{engine, rules};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--format=text" => format = Format::Text,
            "--format=json" => format = Format::Json,
            "--list-rules" => {
                for r in rules::registry() {
                    println!("{:18} {}", r.id, r.summary);
                }
                println!(
                    "{:18} malformed or reason-less suppression pragma (meta-rule)",
                    rules::BAD_PRAGMA
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("cardest-lint: unknown flag `{other}`");
                print_help();
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }

    let report = match engine::lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cardest-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => println!("{}", engine::to_json(&report)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
            }
            eprintln!(
                "cardest-lint: {} diagnostic(s) across {} file(s) ({} allow pragma(s) in effect)",
                report.diagnostics.len(),
                report.files_scanned,
                report.allows_used
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "cardest-lint: invariant checker for the cardest workspace\n\n\
         USAGE: cardest-lint [--format=text|json] [--list-rules] [paths...]\n\n\
         Paths default to `crates`. Directories are walked recursively for\n\
         .rs files (skipping target/, fixtures/, and hidden directories).\n\
         Suppress a diagnostic with an inline pragma carrying a reason:\n\n\
             // cardest-lint: allow(<rule>): <why this is legitimate>\n\n\
         Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error."
    );
}
