// Mirror the library's self-discipline in the binary crate root.
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! `cardest-lint` CLI: `cardest-lint [--format=text|json] [--semantic]
//! [--baseline=FILE] [--write-baseline=FILE] [--report=FILE]
//! [--list-rules] [paths...]`. Paths default to `crates`. Exit code 0
//! means no diagnostics, 1 means violations were found, 2 means usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cardest_lint::baseline::Baseline;
use cardest_lint::{engine, rules, semrules};

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut semantic = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--format=text" => format = Format::Text,
            "--format=json" | "--json" => format = Format::Json,
            "--semantic" => semantic = true,
            "--list-rules" => {
                for r in rules::registry() {
                    println!("{:26} {}", r.id, r.summary);
                }
                println!(
                    "{:26} malformed or reason-less suppression pragma (meta-rule)",
                    rules::BAD_PRAGMA
                );
                for (id, summary) in semrules::semantic_registry() {
                    println!("{id:26} {summary} (semantic, --semantic)");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                if let Some(p) = other.strip_prefix("--baseline=") {
                    baseline_path = Some(PathBuf::from(p));
                } else if let Some(p) = other.strip_prefix("--write-baseline=") {
                    write_baseline = Some(PathBuf::from(p));
                } else if let Some(p) = other.strip_prefix("--report=") {
                    report_path = Some(PathBuf::from(p));
                } else if other.starts_with("--") {
                    eprintln!("cardest-lint: unknown flag `{other}`");
                    print_help();
                    return ExitCode::from(2);
                } else {
                    paths.push(PathBuf::from(other));
                }
            }
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }

    let mut report = match engine::lint_paths(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cardest-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if semantic {
        let sem = match engine::lint_paths_semantic(&paths) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cardest-lint: {e}");
                return ExitCode::from(2);
            }
        };
        report.diagnostics.extend(sem.diagnostics);
        report.allows_used += sem.allows_used;
        report
            .diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    if let Some(p) = &write_baseline {
        let base = Baseline::from_diags(&report.diagnostics);
        if let Err(e) = std::fs::write(p, base.render()) {
            eprintln!("cardest-lint: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cardest-lint: wrote baseline with {} diagnostic(s) to {}",
            report.diagnostics.len(),
            p.display()
        );
    }
    if let Some(p) = &baseline_path {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cardest-lint: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        let base = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cardest-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        base.apply(&mut report);
    }

    let json = engine::to_json(&report);
    if let Some(p) = &report_path {
        if let Err(e) = std::fs::write(p, &json) {
            eprintln!("cardest-lint: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    match format {
        Format::Json => println!("{json}"),
        Format::Text => {
            for d in &report.diagnostics {
                if d.function.is_empty() {
                    println!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message);
                } else {
                    println!(
                        "{}:{}: [{}] in `{}`: {}",
                        d.file, d.line, d.rule, d.function, d.message
                    );
                }
            }
            eprintln!(
                "cardest-lint: {} diagnostic(s) across {} file(s) ({} allow pragma(s) in \
                 effect, {} baselined)",
                report.diagnostics.len(),
                report.files_scanned,
                report.allows_used,
                report.baseline_suppressed
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "cardest-lint: invariant checker for the cardest workspace\n\n\
         USAGE: cardest-lint [OPTIONS] [paths...]\n\n\
         OPTIONS:\n\
         \x20   --format=text|json   output format (--json is shorthand)\n\
         \x20   --semantic           also run the call-graph rules (panic\n\
         \x20                        reachability, lock discipline, durability,\n\
         \x20                        error taxonomy)\n\
         \x20   --baseline=FILE      subtract the checked-in baseline; only\n\
         \x20                        new diagnostics fail the run\n\
         \x20   --write-baseline=FILE  accept current diagnostics as baseline\n\
         \x20   --report=FILE        also write the JSON report to FILE\n\
         \x20   --list-rules         print the rule catalogue\n\n\
         Paths default to `crates`. Directories are walked recursively for\n\
         .rs files (skipping target/, fixtures/, and hidden directories).\n\
         Suppress a diagnostic with an inline pragma carrying a reason:\n\n\
             // cardest-lint: allow(<rule>): <why this is legitimate>\n\n\
         Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error."
    );
}
