//! Checked-in diagnostic baseline.
//!
//! The semantic pass gates CI on *new* findings only: a baseline file
//! (`crates/lint/baseline.txt`) records accepted pre-existing diagnostics
//! as `(rule, file, function, kind) -> count` entries. Keying on the
//! containing function rather than the line keeps the baseline stable
//! under unrelated edits, while the count still catches a *second*
//! violation of the same shape appearing in an already-baselined function
//! (the seeded-bug negative test relies on this).
//!
//! The workflow: prefer fixing or pragma-annotating a finding; when a
//! finding must be deferred, run `cardest-lint --semantic
//! --write-baseline=crates/lint/baseline.txt crates` and commit the diff —
//! every baseline entry is visible in review, like a pragma without a
//! reason string (which is why an empty baseline is the healthy state).

use std::collections::BTreeMap;

use crate::engine::Report;
use crate::rules::Diagnostic;

/// Accepted diagnostic counts, keyed by `rule\tfile\tfunction\tkind`.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

/// Normalizes a diagnostic path so baselines survive being generated from
/// different working directories (absolute vs repo-relative).
pub fn norm_path(path: &str) -> &str {
    match path.find("crates/") {
        Some(i) => &path[i..],
        None => path,
    }
}

fn key(d: &Diagnostic) -> String {
    format!(
        "{}\t{}\t{}\t{}",
        d.rule,
        norm_path(&d.file),
        d.function,
        d.kind
    )
}

impl Baseline {
    /// Parses the `rule<TAB>file<TAB>function<TAB>kind<TAB>count` format;
    /// `#` comments and blank lines are ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 5 {
                return Err(format!(
                    "baseline line {}: expected 5 tab-separated fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let count: usize = fields[4]
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{}`", lineno + 1, fields[4]))?;
            let k = format!("{}\t{}\t{}\t{}", fields[0], fields[1], fields[2], fields[3]);
            *counts.entry(k).or_insert(0) += count;
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline accepting every diagnostic in `diags`.
    pub fn from_diags(diags: &[Diagnostic]) -> Baseline {
        let mut counts = BTreeMap::new();
        for d in diags {
            *counts.entry(key(d)).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Renders the baseline in its file format.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# cardest-lint baseline: accepted diagnostics, one per line as\n\
             # rule<TAB>file<TAB>function<TAB>kind<TAB>count\n\
             # Regenerate: cargo run -p cardest-lint -- --semantic \
             --write-baseline=crates/lint/baseline.txt crates\n",
        );
        for (k, c) in &self.counts {
            s.push_str(k);
            s.push('\t');
            s.push_str(&c.to_string());
            s.push('\n');
        }
        s
    }

    /// Removes baselined diagnostics from `report` (up to the accepted
    /// count per key), recording how many were absorbed. Diagnostics
    /// beyond a key's count — e.g. a *new* unwrap in a function that
    /// already had one accepted — stay in the report.
    pub fn apply(&self, report: &mut Report) {
        let mut remaining = self.counts.clone();
        let mut absorbed = 0usize;
        report.diagnostics.retain(|d| {
            if let Some(c) = remaining.get_mut(&key(d)) {
                if *c > 0 {
                    *c -= 1;
                    absorbed += 1;
                    return false;
                }
            }
            true
        });
        report.baseline_suppressed += absorbed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, file: &str, function: &str, kind: &str, line: u32) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
            function: function.to_string(),
            kind: kind.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_count_semantics() {
        let diags = vec![
            d(
                "serving-panic-reachability",
                "crates/a/src/x.rs",
                "f",
                "unwrap",
                10,
            ),
            d(
                "serving-panic-reachability",
                "crates/a/src/x.rs",
                "f",
                "unwrap",
                20,
            ),
            d(
                "lock-discipline",
                "crates/b/src/y.rs",
                "S::g",
                "order-inversion",
                5,
            ),
        ];
        let base = Baseline::parse(&Baseline::from_diags(&diags).render()).unwrap();
        assert!(!base.is_empty());

        // Same shape, different lines: fully absorbed.
        let mut rep = Report {
            diagnostics: diags.clone(),
            ..Report::default()
        };
        base.apply(&mut rep);
        assert!(rep.diagnostics.is_empty());
        assert_eq!(rep.baseline_suppressed, 3);

        // A third unwrap in `f` exceeds the accepted count and survives.
        let mut extra = diags.clone();
        extra.push(d(
            "serving-panic-reachability",
            "crates/a/src/x.rs",
            "f",
            "unwrap",
            30,
        ));
        let mut rep = Report {
            diagnostics: extra,
            ..Report::default()
        };
        base.apply(&mut rep);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].line, 30);
    }

    #[test]
    fn paths_normalize_across_working_directories() {
        let accepted = vec![d(
            "error-taxonomy",
            "/abs/repo/crates/a/src/x.rs",
            "f",
            "stringly-error",
            1,
        )];
        let base = Baseline::from_diags(&accepted);
        let mut rep = Report {
            diagnostics: vec![d(
                "error-taxonomy",
                "crates/a/src/x.rs",
                "f",
                "stringly-error",
                99,
            )],
            ..Report::default()
        };
        base.apply(&mut rep);
        assert!(rep.diagnostics.is_empty());
    }

    #[test]
    fn malformed_baseline_lines_error() {
        assert!(Baseline::parse("only\tthree\tfields").is_err());
        assert!(Baseline::parse("a\tb\tc\td\tnot-a-number").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().is_empty());
    }
}
