//! Workspace call graph with heuristic name resolution.
//!
//! Built from the item skeletons of every file in the workspace, the graph
//! links call *sites* (token positions) to candidate callee functions.
//! Resolution is heuristic — there is no type inference — and intentionally
//! over-approximates:
//!
//! * `recv.name(...)` (method style) resolves to **every** impl/trait
//!   method named `name` in the workspace.
//! * `Qual::name(...)` (path style) resolves to methods whose `impl` type
//!   matches `Qual` (after chasing one `use ... as` rename in the calling
//!   file); when no type matches, it falls back to free functions in a
//!   module file or crate named `Qual`.
//! * `name(...)` (bare style) prefers same-file functions, then same-crate,
//!   then the whole workspace — so local shadowing wins.
//! * Calls into `std` or the vendored shims resolve to nothing and simply
//!   terminate propagation.
//!
//! Over-approximation is the right default for reachability-style rules
//! (missing an edge hides a panic; inventing one at worst widens the
//! search); rules that *propagate* facts along edges additionally cap the
//! fan-out per site (see [`crate::semrules`]) so one ambiguous name cannot
//! smear a fact across the workspace.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::lexer::{Tok, TokKind};
use crate::parser::{is_punct, paren_match, Items};

/// One analyzed file, with everything the semantic rules need.
pub struct SourceFile {
    /// Path diagnostics are reported under.
    pub display: String,
    /// Effective repo-relative path used for scoping (fixture directives
    /// may re-scope a file).
    pub path: String,
    pub toks: Vec<Tok>,
    pub in_test: Vec<bool>,
    pub items: Items,
    /// Lines with a valid `allow` pragma, with the allowed rule ids.
    pub allowed: BTreeMap<u32, Vec<String>>,
}

impl SourceFile {
    /// Crate directory name under `crates/`, if any.
    pub fn crate_name(&self) -> Option<&str> {
        let mut parts = self.path.split('/');
        parts.by_ref().find(|p| *p == "crates")?;
        parts.next()
    }

    /// Whole-file test-ness (integration tests, benches, examples).
    pub fn is_testish(&self) -> bool {
        ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| self.path.contains(d))
    }

    /// Binary targets (`src/main.rs`, `src/bin/*`) are exempt from the
    /// library-only rules.
    pub fn is_bin(&self) -> bool {
        self.path.ends_with("/main.rs") || self.path.contains("/bin/")
    }
}

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallStyle {
    /// `recv.name(...)`
    Method,
    /// `Qual::name(...)` — `qualifier` is the path segment before `::`.
    Path { qualifier: String },
    /// `name(...)`
    Bare,
    /// `name!(...)` — macros never resolve to workspace functions but the
    /// semantic rules pattern-match their names (`panic!`, `println!`).
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
    pub style: CallStyle,
    /// Candidate callee nodes (empty: external / unresolved).
    pub targets: Vec<usize>,
}

/// One function in the graph (a `FnItem` with a body).
pub struct FnNode {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
    pub calls: Vec<CallSite>,
    /// Test code (marked item, or a testish file) — excluded from serving
    /// reachability.
    pub is_test: bool,
}

/// The whole-workspace call graph.
pub struct Graph {
    pub files: Vec<SourceFile>,
    pub nodes: Vec<FnNode>,
}

/// Identifiers that look like calls but never are (keywords, variant
/// constructors, primitive casts).
const NON_CALLEES: [&str; 28] = [
    "let", "if", "else", "match", "while", "for", "loop", "return", "in", "as", "mut", "ref",
    "move", "fn", "impl", "self", "Self", "super", "crate", "use", "pub", "where", "break",
    "continue", "unsafe", "dyn", "true", "false",
];

/// Method names that collide with the std collections / atomics / io
/// surface (`map.get(..)`, `flag.load(..)`, `buf.read(..)`). Method-style
/// calls through these never resolve to workspace functions: nearly every
/// such call is a std call, and one false edge into, say, an HTTP client's
/// `get` smears "does socket I/O" over the whole workspace. Path-style
/// calls (`Type::get(..)`) still resolve — the qualifier disambiguates.
const GENERIC_METHODS: [&str; 20] = [
    "get", "read", "write", "load", "store", "swap", "take", "clone", "next", "iter", "parse",
    "len", "is_empty", "push", "pop", "contains", "clear", "extend", "drain", "remove",
];

impl Graph {
    pub fn build(files: Vec<SourceFile>) -> Graph {
        let mut nodes: Vec<FnNode> = Vec::new();
        // name -> nodes, split by call shape.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            let testish = file.is_testish();
            for (ii, item) in file.items.fns.iter().enumerate() {
                if item.body.is_none() {
                    continue;
                }
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    calls: Vec::new(),
                    is_test: item.is_test || testish,
                });
            }
        }
        for (ni, node) in nodes.iter().enumerate() {
            let item = &files[node.file].items.fns[node.item];
            let idx = if item.self_ty.is_some() {
                &mut methods
            } else {
                &mut free
            };
            idx.entry(item.name.as_str()).or_default().push(ni);
        }

        let mut resolved_calls: Vec<Vec<CallSite>> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let file = &files[node.file];
            let item = &file.items.fns[node.item];
            let mut sites = extract_calls(&file.toks, item.body.unwrap_or((0, 0)));
            for site in &mut sites {
                site.targets = resolve(&files, &nodes, &methods, &free, node, site);
            }
            resolved_calls.push(sites);
        }
        for (node, calls) in nodes.iter_mut().zip(resolved_calls) {
            node.calls = calls;
        }
        Graph { files, nodes }
    }

    /// The `FnItem` behind a node.
    pub fn item(&self, n: usize) -> &crate::parser::FnItem {
        &self.files[self.nodes[n].file].items.fns[self.nodes[n].item]
    }

    /// Display-qualified function name for diagnostics.
    pub fn qual(&self, n: usize) -> &str {
        &self.item(n).qual
    }

    /// BFS over call edges from `entries`, skipping test nodes. Returns,
    /// for every reached node, the `(caller, call line)` edge it was first
    /// reached through (`None` for the entries themselves).
    pub fn reachable_from(&self, entries: &[usize]) -> BTreeMap<usize, Option<(usize, u32)>> {
        let mut parent: BTreeMap<usize, Option<(usize, u32)>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if parent.insert(e, None).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for call in &self.nodes[n].calls {
                for &t in &call.targets {
                    if !self.nodes[t].is_test && !parent.contains_key(&t) {
                        parent.insert(t, Some((n, call.line)));
                        queue.push_back(t);
                    }
                }
            }
        }
        parent
    }

    /// Renders the entry→node witness path recorded by
    /// [`Graph::reachable_from`], e.g. `route_request -> handle_estimate ->
    /// parse_body`.
    pub fn witness(&self, parents: &BTreeMap<usize, Option<(usize, u32)>>, n: usize) -> String {
        let mut chain: Vec<usize> = vec![n];
        let mut cur = n;
        while let Some(Some((p, _))) = parents.get(&cur) {
            cur = *p;
            chain.push(cur);
            if chain.len() > 24 {
                break; // cycles cannot occur (parents form a tree) but stay bounded
            }
        }
        chain.reverse();
        let names: Vec<&str> = chain.iter().map(|&c| self.qual(c)).collect();
        if names.len() > 6 {
            let mut s = names[..3].join(" -> ");
            s.push_str(" -> ... -> ");
            s.push_str(&names[names.len() - 2..].join(" -> "));
            s
        } else {
            names.join(" -> ")
        }
    }
}

/// Scans a body token range for call sites (method, path, bare, macro).
fn extract_calls(toks: &[Tok], body: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (open, close) = body;
    let mut j = open + 1;
    while j < close {
        let t = &toks[j];
        if t.kind != TokKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        if is_punct(toks, j + 1, "!") {
            // Macro invocation; only record when a delimiter follows so
            // `x != y` (unfused only as `!=`… which *is* fused) stays out.
            if is_punct(toks, j + 2, "(")
                || is_punct(toks, j + 2, "[")
                || is_punct(toks, j + 2, "{")
            {
                out.push(CallSite {
                    name: t.text.clone(),
                    line: t.line,
                    tok: j,
                    style: CallStyle::Macro,
                    targets: Vec::new(),
                });
            }
            j += 2;
            continue;
        }
        if is_punct(toks, j + 1, "(") {
            let style = if j > 0 && is_punct(toks, j - 1, ".") {
                Some(CallStyle::Method)
            } else if j > 0 && is_punct(toks, j - 1, "::") {
                let qualifier = j
                    .checked_sub(2)
                    .and_then(|q| toks.get(q))
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.text.clone())
                    .unwrap_or_default();
                Some(CallStyle::Path { qualifier })
            } else {
                // A bare ident followed by `(` is a call unless it is a
                // definition (`fn name(`) — `fn` is in NON_CALLEES so the
                // name after it lands here; check the previous token.
                if j > 0 && toks[j - 1].kind == TokKind::Ident && toks[j - 1].text == "fn" {
                    None
                } else {
                    Some(CallStyle::Bare)
                }
            };
            if let Some(style) = style {
                out.push(CallSite {
                    name: t.text.clone(),
                    line: t.line,
                    tok: j,
                    style,
                    targets: Vec::new(),
                });
            }
        }
        j += 1;
    }
    out
}

fn resolve(
    files: &[SourceFile],
    nodes: &[FnNode],
    methods: &BTreeMap<&str, Vec<usize>>,
    free: &BTreeMap<&str, Vec<usize>>,
    caller: &FnNode,
    site: &CallSite,
) -> Vec<usize> {
    let name = site.name.as_str();
    match &site.style {
        CallStyle::Macro => Vec::new(),
        CallStyle::Method => {
            if GENERIC_METHODS.contains(&name) {
                return Vec::new();
            }
            methods.get(name).cloned().unwrap_or_default()
        }
        CallStyle::Path { qualifier } => {
            let caller_file = &files[caller.file];
            let caller_item = &caller_file.items.fns[caller.item];
            // Chase one `use path::Ty as Alias` rename in the calling file.
            let qual: &str = caller_file
                .items
                .uses
                .iter()
                .find(|u| u.alias == *qualifier)
                .and_then(|u| u.path.rsplit("::").next())
                .unwrap_or(qualifier.as_str());
            if qual == "Self" {
                let sty = caller_item.self_ty.as_deref();
                return methods
                    .get(name)
                    .map(|cands| {
                        cands
                            .iter()
                            .copied()
                            .filter(|&c| item_of(files, nodes, c).self_ty.as_deref() == sty)
                            .collect()
                    })
                    .unwrap_or_default();
            }
            let typed: Vec<usize> = methods
                .get(name)
                .map(|cands| {
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| item_of(files, nodes, c).self_ty.as_deref() == Some(qual))
                        .collect()
                })
                .unwrap_or_default();
            if !typed.is_empty() {
                return typed;
            }
            // `module::func(...)` / `crate_name::func(...)`: free functions
            // in a matching module file or crate.
            free.get(name)
                .map(|cands| {
                    cands
                        .iter()
                        .copied()
                        .filter(|&c| {
                            let f = &files[nodes[c].file];
                            file_stem(&f.path) == Some(qual)
                                || f.crate_name()
                                    .is_some_and(|cn| cn.replace('-', "_") == qual)
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
        CallStyle::Bare => {
            let cands = match free.get(name) {
                Some(c) => c,
                None => return Vec::new(),
            };
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == caller.file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let caller_crate = files[caller.file].crate_name();
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| files[nodes[c].file].crate_name() == caller_crate)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            cands.clone()
        }
    }
}

fn item_of<'a>(files: &'a [SourceFile], nodes: &[FnNode], n: usize) -> &'a crate::parser::FnItem {
    &files[nodes[n].file].items.fns[nodes[n].item]
}

fn file_stem(path: &str) -> Option<&str> {
    path.rsplit('/').next()?.strip_suffix(".rs")
}

/// Re-export for rules that need to look at call argument lists.
pub fn call_args_span(toks: &[Tok], name_tok: usize) -> Option<(usize, usize)> {
    if is_punct(toks, name_tok + 1, "(") {
        Some((name_tok + 1, paren_match(toks, name_tok + 1)))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_flags;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn file(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let flags = test_flags(&lexed.toks);
        let items = parse_items(&lexed.toks, &flags);
        SourceFile {
            display: path.to_string(),
            path: path.to_string(),
            toks: lexed.toks,
            in_test: flags,
            items,
            allowed: BTreeMap::new(),
        }
    }

    fn node_named(g: &Graph, qual: &str) -> usize {
        (0..g.nodes.len())
            .find(|&n| g.qual(n) == qual)
            .unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn bare_calls_prefer_same_file_shadowed_names() {
        let g = Graph::build(vec![
            file(
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); } fn helper() {}",
            ),
            file("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let entry = node_named(&g, "entry");
        let local = node_named(&g, "helper");
        assert_eq!(g.nodes[entry].calls.len(), 1);
        assert_eq!(g.nodes[entry].calls[0].targets, vec![local]);
        assert_eq!(g.files[g.nodes[local].file].path, "crates/a/src/lib.rs");
    }

    #[test]
    fn method_calls_resolve_across_impls_and_trait_dispatch() {
        let g = Graph::build(vec![file(
            "crates/a/src/lib.rs",
            "
            trait Est { fn estimate(&self) -> f64; }
            struct A; struct B;
            impl Est for A { fn estimate(&self) -> f64 { 1.0 } }
            impl Est for B { fn estimate(&self) -> f64 { 2.0 } }
            pub fn run(e: &dyn Est) -> f64 { e.estimate() }
            ",
        )]);
        let run = node_named(&g, "run");
        let call = &g.nodes[run].calls[0];
        assert_eq!(call.name, "estimate");
        // Dynamic dispatch: both impls are candidate targets.
        assert_eq!(call.targets.len(), 2);
    }

    #[test]
    fn path_calls_filter_by_self_ty_and_chase_use_renames() {
        let g = Graph::build(vec![
            file(
                "crates/a/src/wal.rs",
                "pub struct Wal; impl Wal { pub fn open() -> Wal { Wal } } \
                 pub struct Snap; impl Snap { pub fn open() -> Snap { Snap } }",
            ),
            file(
                "crates/b/src/lib.rs",
                "use cardest_a::wal::Wal as Journal;\n\
                 pub fn recover() { let _ = Journal::open(); }",
            ),
        ]);
        let recover = node_named(&g, "recover");
        let wal_open = node_named(&g, "Wal::open");
        assert_eq!(g.nodes[recover].calls[0].targets, vec![wal_open]);
    }

    #[test]
    fn module_qualified_free_fns_resolve_by_file_stem() {
        let g = Graph::build(vec![
            file("crates/a/src/util.rs", "pub fn clamp(x: f64) -> f64 { x }"),
            file(
                "crates/a/src/lib.rs",
                "pub fn go(x: f64) -> f64 { util::clamp(x) }",
            ),
        ]);
        let go = node_named(&g, "go");
        let clamp = node_named(&g, "clamp");
        assert_eq!(g.nodes[go].calls[0].targets, vec![clamp]);
    }

    #[test]
    fn reachability_handles_cycles_and_skips_tests() {
        let g = Graph::build(vec![file(
            "crates/a/src/lib.rs",
            "
            pub fn entry() { ping(); }
            fn ping() { pong(); }
            fn pong() { ping(); leaf(); }
            fn leaf() {}
            fn orphan() {}
            #[cfg(test)]
            mod tests { pub fn t_only() { super::entry(); } }
            ",
        )]);
        let entry = node_named(&g, "entry");
        let reach = g.reachable_from(&[entry]);
        let reached: Vec<&str> = reach.keys().map(|&n| g.qual(n)).collect();
        assert_eq!(reached, vec!["entry", "ping", "pong", "leaf"]);
        let leaf = node_named(&g, "leaf");
        let w = g.witness(&reach, leaf);
        assert_eq!(w, "entry -> ping -> pong -> leaf");
    }

    #[test]
    fn std_and_external_calls_resolve_to_nothing() {
        let g = Graph::build(vec![file(
            "crates/a/src/lib.rs",
            "pub fn f(v: Vec<u32>) -> usize { std::mem::size_of::<u32>(); v.len() }",
        )]);
        let f = node_named(&g, "f");
        assert!(g.nodes[f].calls.iter().all(|c| c.targets.is_empty()));
    }
}
