//! Orchestration: file walking, test-region marking, pragma application,
//! and report assembly.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, TokKind};
use crate::parser;
use crate::pragma;
use crate::rules::{self, Diagnostic, FileCtx};
use crate::{callgraph, semrules};

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// Number of `allow` pragmas that suppressed at least one diagnostic.
    pub allows_used: usize,
    /// Diagnostics absorbed by the checked-in baseline (CLI only).
    pub baseline_suppressed: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directory names never descended into while walking. Fixture files are
/// deliberately violating and are linted only when named explicitly (the
/// self-tests re-scope them via their `cardest-lint-fixture:` directive).
const SKIP_DIRS: [&str; 4] = ["target", "fixtures", ".git", "results"];

/// Recursively collects `.rs` files under `path` (or `path` itself when it
/// is a file), sorted for deterministic reports.
pub fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    let entries = fs::read_dir(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut children: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        children.push(entry.path());
    }
    children.sort();
    for child in children {
        let name = child
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if child.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                collect_rs_files(&child, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Lints every `.rs` file reachable from `paths`.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::new();
    for p in paths {
        if !p.exists() {
            return Err(format!("no such path: {}", p.display()));
        }
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut report = Report::default();
    for f in &files {
        let bytes = fs::read(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let src = String::from_utf8_lossy(&bytes);
        let display = f.to_string_lossy().replace('\\', "/");
        let file_report = lint_source(&display, &src);
        report.diagnostics.extend(file_report.diagnostics);
        report.allows_used += file_report.allows_used;
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Lints one file's source. `display_path` names the file in diagnostics
/// and also scopes the rules, unless the source carries a
/// `cardest-lint-fixture: path=` directive overriding the scope.
pub fn lint_source(display_path: &str, src: &str) -> Report {
    let lexed = lexer::lex(src);
    let pragmas = pragma::extract(&lexed.comments, &lexed.toks);
    let effective_path = pragmas
        .fixture_path
        .clone()
        .unwrap_or_else(|| display_path.to_string());
    let in_test = test_flags(&lexed.toks);
    let ctx = FileCtx {
        path: effective_path,
        display_path: display_path.to_string(),
        toks: &lexed.toks,
        in_test: &in_test,
        comments: &lexed.comments,
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in rules::registry() {
        (rule.check)(&ctx, &mut diags);
    }

    // Pragma validation: malformed comments, reason-less allows, and
    // unknown rule ids all surface as `bad-pragma` diagnostics.
    let mut valid_allows: Vec<&pragma::Allow> = Vec::new();
    for (line, msg) in &pragmas.malformed {
        diags.push(Diagnostic {
            file: display_path.to_string(),
            line: *line,
            rule: rules::BAD_PRAGMA,
            message: msg.clone(),
            ..Diagnostic::default()
        });
    }
    for allow in &pragmas.allows {
        let mut ok = true;
        if allow.reason.is_empty() {
            diags.push(Diagnostic {
                file: display_path.to_string(),
                line: allow.pragma_line,
                rule: rules::BAD_PRAGMA,
                message: "allow pragma without a reason; write \
                          `// cardest-lint: allow(<rule>): <why this violation is legitimate>`"
                    .to_string(),
                ..Diagnostic::default()
            });
            ok = false;
        }
        for r in &allow.rules {
            if !rules::is_known_rule(r) {
                diags.push(Diagnostic {
                    file: display_path.to_string(),
                    line: allow.pragma_line,
                    rule: rules::BAD_PRAGMA,
                    message: format!("allow pragma names unknown rule `{r}`"),
                    ..Diagnostic::default()
                });
                ok = false;
            }
        }
        if ok {
            valid_allows.push(allow);
        }
    }

    // Apply suppressions (bad-pragma itself is never suppressible).
    let mut allows_used = vec![false; valid_allows.len()];
    diags.retain(|d| {
        if d.rule == rules::BAD_PRAGMA {
            return true;
        }
        let mut suppressed = false;
        for (used, allow) in allows_used.iter_mut().zip(&valid_allows) {
            if allow.target_line == d.line && allow.rules.iter().any(|r| r == d.rule) {
                *used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    diags.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    diags.dedup();

    Report {
        diagnostics: diags,
        files_scanned: 1,
        allows_used: allows_used.iter().filter(|&&u| u).count(),
        baseline_suppressed: 0,
    }
}

/// Runs the semantic (call-graph) pass over every `.rs` file reachable
/// from `paths`. Unlike [`lint_paths`], the whole file set is analyzed as
/// one workspace: calls resolve across files and crates.
pub fn lint_paths_semantic(paths: &[PathBuf]) -> Result<Report, String> {
    let mut files = Vec::new();
    for p in paths {
        if !p.exists() {
            return Err(format!("no such path: {}", p.display()));
        }
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for f in &files {
        let bytes = fs::read(f).map_err(|e| format!("cannot read {}: {e}", f.display()))?;
        let display = f.to_string_lossy().replace('\\', "/");
        sources.push((display, String::from_utf8_lossy(&bytes).into_owned()));
    }
    Ok(lint_sources_semantic(&sources))
}

/// Semantic pass over in-memory `(display_path, source)` pairs. Exposed so
/// the self-tests can lint synthetic workspaces (and splice seeded bugs
/// into real files) without touching the tree.
pub fn lint_sources_semantic(sources: &[(String, String)]) -> Report {
    let mut parsed: Vec<callgraph::SourceFile> = Vec::with_capacity(sources.len());
    for (display, src) in sources {
        let lexed = lexer::lex(src);
        let pragmas = pragma::extract(&lexed.comments, &lexed.toks);
        let effective = pragmas
            .fixture_path
            .clone()
            .unwrap_or_else(|| display.clone());
        let in_test = test_flags(&lexed.toks);
        let items = parser::parse_items(&lexed.toks, &in_test);
        // Valid allows only; the lexical pass reports malformed pragmas.
        let mut allowed: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for allow in &pragmas.allows {
            if allow.reason.is_empty() || !allow.rules.iter().all(|r| rules::is_known_rule(r)) {
                continue;
            }
            allowed
                .entry(allow.target_line)
                .or_default()
                .extend(allow.rules.iter().cloned());
        }
        parsed.push(callgraph::SourceFile {
            display: display.clone(),
            path: effective,
            toks: lexed.toks,
            in_test,
            items,
            allowed,
        });
    }
    let graph = callgraph::Graph::build(parsed);
    let mut diags = semrules::check(&graph);

    // Generic pragma suppression: an allow targeting the diagnostic's line
    // and naming its rule.
    let mut allows_used = 0usize;
    let allowed_by_file: BTreeMap<&str, &BTreeMap<u32, Vec<String>>> = graph
        .files
        .iter()
        .map(|f| (f.display.as_str(), &f.allowed))
        .collect();
    diags.retain(|d| {
        let suppressed = allowed_by_file
            .get(d.file.as_str())
            .and_then(|lines| lines.get(&d.line))
            .is_some_and(|rules| rules.iter().any(|r| r == d.rule));
        if suppressed {
            allows_used += 1;
        }
        !suppressed
    });
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diags.dedup();
    Report {
        diagnostics: diags,
        files_scanned: sources.len(),
        allows_used,
        baseline_suppressed: 0,
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` items. Inner
/// attributes (`#![...]`) never mark anything — in particular
/// `#![cfg_attr(test, ...)]` at a crate root must not flag the whole file.
pub fn test_flags(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !is_punct(toks, i, "#") {
            i += 1;
            continue;
        }
        if is_punct(toks, i + 1, "!") {
            // Inner attribute: skip without marking.
            if is_punct(toks, i + 2, "[") {
                i = attr_end(toks, i + 3) + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if !is_punct(toks, i + 1, "[") {
            i += 1;
            continue;
        }
        let end = attr_end(toks, i + 2);
        if !attr_is_test(toks, i + 2, end) {
            i = end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = end + 1;
        while is_punct(toks, j, "#") && is_punct(toks, j + 1, "[") {
            j = attr_end(toks, j + 2) + 1;
        }
        // The item body is the first `{ ... }` group; `;` ends a bodyless
        // item (e.g. `#[cfg(test)] mod tests;`).
        let mut k = j;
        let mut span_end = toks.len().saturating_sub(1);
        while k < toks.len() {
            if is_punct(toks, k, "{") {
                span_end = brace_match(toks, k);
                break;
            }
            if is_punct(toks, k, ";") {
                span_end = k;
                break;
            }
            k += 1;
        }
        for flag in flags.iter_mut().take(span_end + 1).skip(i) {
            *flag = true;
        }
        i = span_end + 1;
    }
    flags
}

fn is_punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Index of the `]` closing an attribute whose contents start at `start`
/// (just after the `[`). Returns the last token index when unbalanced.
fn attr_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 1usize;
    let mut i = start;
    while i < toks.len() {
        if is_punct(toks, i, "[") {
            depth += 1;
        } else if is_punct(toks, i, "]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Does the attribute span `toks[start..end]` mean "this item is test
/// code"? Accepts `#[test]` and `#[cfg(test)]`; rejects `#[cfg(not(test))]`
/// and `#[cfg_attr(test, ...)]`.
fn attr_is_test(toks: &[Tok], start: usize, end: usize) -> bool {
    let first = match toks.get(start) {
        Some(t) if t.kind == TokKind::Ident => t.text.as_str(),
        _ => return false,
    };
    if first == "test" && end == start + 1 {
        return true;
    }
    first == "cfg"
        && is_punct(toks, start + 1, "(")
        && toks
            .get(start + 2)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// Index of the `}` matching the `{` at `open`. Returns the last token
/// index when unbalanced.
fn brace_match(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, "{") {
            depth += 1;
        } else if is_punct(toks, i, "}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Serializes a report as a single JSON object (hand-rolled: the linter
/// depends on nothing, not even the vendored serde shim).
pub fn to_json(report: &Report) -> String {
    let mut s = String::from("{\"files_scanned\":");
    s.push_str(&report.files_scanned.to_string());
    s.push_str(",\"allows_used\":");
    s.push_str(&report.allows_used.to_string());
    s.push_str(",\"baseline_suppressed\":");
    s.push_str(&report.baseline_suppressed.to_string());
    s.push_str(",\"count\":");
    s.push_str(&report.diagnostics.len().to_string());
    s.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        json_string(&mut s, &d.file);
        s.push_str(",\"line\":");
        s.push_str(&d.line.to_string());
        s.push_str(",\"rule\":");
        json_string(&mut s, d.rule);
        if !d.function.is_empty() {
            s.push_str(",\"function\":");
            json_string(&mut s, &d.function);
        }
        if !d.kind.is_empty() {
            s.push_str(",\"kind\":");
            json_string(&mut s, &d.kind);
        }
        s.push_str(",\"message\":");
        json_string(&mut s, &d.message);
        s.push('}');
    }
    s.push_str("]}");
    s
}

fn json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_marked_and_inner_attrs_are_not() {
        let src = "#![cfg_attr(test, allow(clippy::unwrap_used))]\n\
                   fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let lexed = lexer::lex(src);
        let flags = test_flags(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &f)| f)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let lexed = lexer::lex(src);
        let flags = test_flags(&lexed.toks);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn test_attribute_covers_stacked_attrs_and_fn_body() {
        let src = "#[test]\n#[ignore]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let lexed = lexer::lex(src);
        let flags = test_flags(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, &f)| f)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn suppression_requires_matching_rule_and_line() {
        let path = "crates/data/src/x.rs";
        let fire = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert_eq!(lint_source(path, fire).diagnostics.len(), 1);

        let allowed = "pub fn f(v: Option<u32>) -> u32 {\n    \
                       v.unwrap() // cardest-lint: allow(panic-path): caller checked is_some\n}\n";
        let rep = lint_source(path, allowed);
        assert!(rep.is_clean(), "{:?}", rep.diagnostics);
        assert_eq!(rep.allows_used, 1);

        let wrong_rule = "pub fn f(v: Option<u32>) -> u32 {\n    \
                          v.unwrap() // cardest-lint: allow(unsafe-block): mismatched rule\n}\n";
        assert_eq!(lint_source(path, wrong_rule).diagnostics.len(), 1);
    }

    #[test]
    fn reasonless_allow_is_a_bad_pragma_and_does_not_suppress() {
        let path = "crates/data/src/x.rs";
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    \
                   v.unwrap() // cardest-lint: allow(panic-path)\n}\n";
        let rep = lint_source(path, src);
        let rules_hit: Vec<&str> = rep.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules_hit.contains(&"bad-pragma"));
        assert!(rules_hit.contains(&"panic-path"));
    }

    #[test]
    fn json_output_escapes_and_counts() {
        let rep = Report {
            diagnostics: vec![Diagnostic {
                file: "a\"b.rs".to_string(),
                line: 3,
                rule: "panic-path",
                message: "tab\there".to_string(),
                ..Diagnostic::default()
            }],
            files_scanned: 2,
            allows_used: 1,
            baseline_suppressed: 0,
        };
        let j = to_json(&rep);
        assert!(j.contains("\"files_scanned\":2"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
    }
}
