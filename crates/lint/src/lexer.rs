//! A small hand-rolled Rust lexer.
//!
//! `cardest-lint` must build with nothing but `std` (the workspace is
//! offline, so `syn` is unavailable), and its rules are lexical: they need
//! to see identifiers, punctuation, and literals *with comments and string
//! contents reliably separated out*, so that a banned name inside a string
//! literal or a doc-comment code block never fires a rule, while pragma
//! comments remain inspectable.
//!
//! The lexer therefore handles the full set of Rust constructs that can
//! hide `//`-lookalike text: ordinary strings with escapes, raw strings
//! with arbitrary `#` fences, byte strings, char literals (disambiguated
//! from lifetimes), and nested block comments. Everything else is reduced
//! to identifier / number / punctuation tokens tagged with 1-based line
//! numbers.

/// Lexical class of a [`Tok`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `as`, ...).
    Ident,
    /// Punctuation. Multi-char operators the rules care about (`==`, `!=`,
    /// `::`, `..`) are fused into a single token; everything else is one
    /// character per token.
    Punct,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Integer literal (including hex/octal/binary and `_` separators).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f32`, ...).
    Float,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block, doc or plain), with its span and whether it
/// starts on a line of its own (no code token precedes it on that line).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
    pub own_line: bool,
}

/// The output of [`lex`]: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Line number of the most recent code token, used to decide whether a
    /// comment shares its starting line with code.
    last_code_line: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized bytes
/// become single-character punctuation tokens, and unterminated literals
/// or comments simply run to end-of-file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        last_code_line: 0,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut out),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur, &mut out),
            '"' => {
                let text = lex_string(&mut cur);
                push_tok(&mut cur, &mut out, TokKind::Str, text, line);
            }
            '\'' => lex_char_or_lifetime(&mut cur, &mut out),
            c if c.is_ascii_digit() => {
                let (text, kind) = lex_number(&mut cur);
                push_tok(&mut cur, &mut out, kind, text, line);
            }
            c if is_ident_start(c) => {
                let ident = lex_ident(&mut cur);
                // `r"..."` / `r#"..."#` / `b"..."` / `br#"..."#` / `b'x'` /
                // `c"..."` / `cr#"..."#` are string-ish literals whose
                // prefix lexes as an ident.
                let next = cur.peek(0);
                if (ident == "r" || ident == "br" || ident == "cr")
                    && next == Some('#')
                    && cur.peek(1).is_some_and(is_ident_start)
                {
                    // Raw identifier (`r#type`), not a raw string: the
                    // token is the identifier itself, keyword-ness erased.
                    cur.bump();
                    let name = lex_ident(&mut cur);
                    push_tok(&mut cur, &mut out, TokKind::Ident, name, line);
                } else if (ident == "r"
                    || ident == "b"
                    || ident == "br"
                    || ident == "c"
                    || ident == "cr")
                    && (next == Some('"') || next == Some('#'))
                {
                    let text = lex_raw_or_byte_string(&mut cur, &ident);
                    push_tok(
                        &mut cur,
                        &mut out,
                        TokKind::Str,
                        format!("{ident}{text}"),
                        line,
                    );
                } else if ident == "b" && next == Some('\'') {
                    cur.bump();
                    let body = lex_char_body(&mut cur);
                    push_tok(
                        &mut cur,
                        &mut out,
                        TokKind::Char,
                        format!("b'{body}'"),
                        line,
                    );
                } else {
                    push_tok(&mut cur, &mut out, TokKind::Ident, ident, line);
                }
            }
            _ => {
                cur.bump();
                let mut text = String::new();
                text.push(c);
                // Fuse the two-character operators the rules match on.
                if let Some(n) = cur.peek(0) {
                    let fused = matches!(
                        (c, n),
                        ('=', '=') | ('!', '=') | (':', ':') | ('.', '.') | ('-', '>') | ('=', '>')
                    );
                    if fused {
                        cur.bump();
                        text.push(n);
                    }
                }
                push_tok(&mut cur, &mut out, TokKind::Punct, text, line);
            }
        }
    }
    out
}

fn push_tok(cur: &mut Cursor, out: &mut Lexed, kind: TokKind, text: String, line: u32) {
    cur.last_code_line = cur.line;
    out.toks.push(Tok { kind, text, line });
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let own_line = cur.last_code_line != line;
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
        own_line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let own_line = cur.last_code_line != line;
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: cur.line,
        own_line,
    });
}

fn lex_string(cur: &mut Cursor) -> String {
    let mut s = String::new();
    s.push('"');
    cur.bump();
    while let Some(c) = cur.bump() {
        s.push(c);
        if c == '\\' {
            if let Some(e) = cur.bump() {
                s.push(e);
            }
        } else if c == '"' {
            break;
        }
    }
    s
}

/// Lexes the remainder of a raw / byte / C string after its `r` / `b` /
/// `br` / `c` / `cr` prefix ident has been consumed. `b"..."` and
/// `c"..."` behave like ordinary strings (escapes active); the raw forms
/// end only at a quote followed by the right number of `#` fences.
fn lex_raw_or_byte_string(cur: &mut Cursor, prefix: &str) -> String {
    if prefix == "b" || prefix == "c" {
        return lex_string(cur);
    }
    let mut s = String::new();
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        s.push('#');
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        // `r#foo` raw identifier, not a string: hand the `#`s back as text.
        return s;
    }
    s.push('"');
    cur.bump();
    while let Some(c) = cur.bump() {
        s.push(c);
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek(0) == Some('#') {
                matched += 1;
                s.push('#');
                cur.bump();
            }
            if matched == hashes {
                break;
            }
        }
    }
    s
}

/// Consumes the body of a char literal up to and including the closing
/// quote, returning the body text (quote excluded).
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        if c == '\\' {
            s.push(c);
            if let Some(e) = cur.bump() {
                s.push(e);
            }
        } else if c == '\'' {
            break;
        } else {
            s.push(c);
        }
    }
    s
}

fn lex_char_or_lifetime(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    cur.bump(); // the opening quote
    let first = cur.peek(0);
    let second = cur.peek(1);
    let is_lifetime = match (first, second) {
        (Some('\\'), _) => false,
        (Some(c), Some('\'')) if c != '\'' => false, // 'a'
        (Some(c), _) if is_ident_start(c) => true,   // 'a, 'static
        _ => false,
    };
    if is_lifetime {
        let name = lex_ident(cur);
        push_tok(cur, out, TokKind::Lifetime, format!("'{name}"), line);
    } else {
        let body = lex_char_body(cur);
        push_tok(cur, out, TokKind::Char, format!("'{body}'"), line);
    }
}

fn lex_number(cur: &mut Cursor) -> (String, TokKind) {
    let mut s = String::new();
    let mut kind = TokKind::Int;
    // Base-prefixed integers: 0x / 0o / 0b followed by alphanumerics.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        s.push('0');
        cur.bump();
        if let Some(base) = cur.bump() {
            s.push(base);
        }
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return (s, TokKind::Int);
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // A decimal point only belongs to the number when a digit follows
    // (`1.5`), so ranges (`0..n`) and method calls (`1.max(2)`) stay
    // separate tokens.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        kind = TokKind::Float;
        s.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                s.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // Exponent: 1e9, 1.5e-3.
    if matches!(cur.peek(0), Some('e') | Some('E')) {
        let sign_ok = match cur.peek(1) {
            Some('+') | Some('-') => cur.peek(2).is_some_and(|c| c.is_ascii_digit()),
            Some(c) => c.is_ascii_digit(),
            None => false,
        };
        if sign_ok {
            kind = TokKind::Float;
            s.push('e');
            cur.bump();
            if matches!(cur.peek(0), Some('+') | Some('-')) {
                if let Some(sign) = cur.bump() {
                    s.push(sign);
                }
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    s.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix: 1f32 / 1.0f64 force Float; 1u8 stays Int.
    if matches!(cur.peek(0), Some('f')) {
        let mut suffix = String::new();
        let mut ahead = 0usize;
        while let Some(c) = cur.peek(ahead) {
            if is_ident_continue(c) {
                suffix.push(c);
                ahead += 1;
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            kind = TokKind::Float;
            for _ in 0..ahead {
                cur.bump();
            }
            s.push_str(&suffix);
        }
    } else if cur.peek(0).is_some_and(is_ident_start) {
        let mut ahead = 0usize;
        let mut suffix = String::new();
        while let Some(c) = cur.peek(ahead) {
            if is_ident_continue(c) {
                suffix.push(c);
                ahead += 1;
            } else {
                break;
            }
        }
        const INT_SUFFIXES: [&str; 12] = [
            "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
        ];
        if INT_SUFFIXES.contains(&suffix.as_str()) {
            for _ in 0..ahead {
                cur.bump();
            }
            s.push_str(&suffix);
        }
    }
    (s, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents_from_code_tokens() {
        let src = r##"let x = "unsafe // not a comment"; let y = r#"panic!("x")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
        let l = lex(src);
        assert!(l.comments.is_empty());
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "a /* outer /* inner */ still outer */ b";
        let ids = idents(src);
        assert_eq!(ids, vec!["a", "b"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let n = '\\n'; }";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn raw_strings_with_fences_and_byte_strings() {
        let src = r###"let a = r#"quote " inside"#; let b = b"bytes"; let c = br#"x"#;"###;
        let l = lex(src);
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert!(strs[0].text.contains("quote"));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let src = "let a = 1; let b = 1.5; let c = 1e-3; let d = 2f32; let e = 0x1f; let r = 0..n; let u = 3usize;";
        let l = lex(src);
        let floats: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e-3", "2f32"]);
        // The range `0..n` keeps `0` an Int and `..` a fused punct.
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == ".."));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Int && t.text == "3usize"));
    }

    #[test]
    fn line_numbers_and_own_line_comments() {
        let src = "let a = 1;\n// own line\nlet b = 2; // trailing\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].own_line);
        assert_eq!(l.comments[0].line, 2);
        assert!(!l.comments[1].own_line);
        assert_eq!(l.comments[1].line, 3);
        let b = l.toks.iter().find(|t| t.text == "b");
        assert_eq!(b.map(|t| t.line), Some(3));
    }

    #[test]
    fn fused_operators() {
        let src = "a == b; c != d; e::f; 0..9; fn g() -> u8 { match x { _ => 0 } }";
        let l = lex(src);
        let puncts: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct && t.text.len() == 2)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..", "->", "=>"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents_not_strings() {
        let src = "let r#type = r#fn; struct r#struct;";
        let l = lex(src);
        assert!(l.toks.iter().all(|t| t.kind != TokKind::Str));
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "type", "fn", "struct", "struct"]);
    }

    #[test]
    fn c_string_literals() {
        let src = r##"let a = c"hello"; let b = cr#"raw " c"#;"##;
        let l = lex(src);
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.contains("raw"));
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "x /* a /* b /* c */ b */ a */ y /* tail";
        let ids = idents(src);
        assert_eq!(ids, vec!["x", "y"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
    }
}
