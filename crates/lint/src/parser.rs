//! Item-level parser over the lexer's token stream.
//!
//! The semantic rules need to know *which function* a token belongs to,
//! what each function's receiver type and return type are, and how names
//! are imported — not full expression trees. This parser therefore
//! recovers exactly the item skeleton: modules, `impl`/`trait` blocks,
//! function signatures with body spans, and `use` trees (including `as`
//! renames and `{...}` groups). Everything else (struct bodies, consts,
//! macro definitions) is skipped by delimiter matching.
//!
//! Like the lexer it never fails: malformed input degrades to fewer
//! recognized items, never to a panic or an error.

use crate::lexer::{Tok, TokKind};

/// One `fn` item: free function, inherent/trait-impl method, or trait
/// method declaration.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Display-qualified name (`mod::SelfTy::name`) for diagnostics.
    pub qual: String,
    /// Surrounding `impl`/`trait` type, when any.
    pub self_ty: Option<String>,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Token texts of the declared return type (empty means `()`).
    pub ret: Vec<String>,
    /// Token index of the function's name.
    pub name_tok: usize,
    /// `(open, close)` brace token indices of the body; `None` for trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` / `#[test]` item.
    pub is_test: bool,
}

/// One name introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The name visible in this file (the `as` rename or last segment).
    pub alias: String,
    /// The `::`-joined imported path.
    pub path: String,
}

/// The item skeleton of one file.
#[derive(Debug, Default)]
pub struct Items {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseAlias>,
}

/// Parses the item skeleton out of a lexed token stream. `in_test` is the
/// parallel flag vector from [`crate::engine::test_flags`].
pub fn parse_items(toks: &[Tok], in_test: &[bool]) -> Items {
    let mut out = Items::default();
    let mut mod_path: Vec<String> = Vec::new();
    scan(toks, in_test, 0, toks.len(), &mut mod_path, None, &mut out);
    out
}

fn scan(
    toks: &[Tok],
    in_test: &[bool],
    start: usize,
    end: usize,
    mod_path: &mut Vec<String>,
    self_ty: Option<&str>,
    out: &mut Items,
) {
    let mut i = start;
    while i < end {
        if is_punct(toks, i, "#") {
            // Attributes (inner or outer): skip without interpreting.
            if is_punct(toks, i + 1, "!") && is_punct(toks, i + 2, "[") {
                i = attr_end(toks, i + 3) + 1;
            } else if is_punct(toks, i + 1, "[") {
                i = attr_end(toks, i + 2) + 1;
            } else {
                i += 1;
            }
            continue;
        }
        let Some(t) = toks.get(i) else { break };
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "pub" => {
                i += 1;
                if is_punct(toks, i, "(") {
                    i = paren_match(toks, i) + 1; // pub(crate) / pub(in ...)
                }
            }
            "unsafe" | "async" | "default" => i += 1,
            "extern" => {
                i += 1;
                if toks.get(i).is_some_and(|t| t.kind == TokKind::Str) {
                    i += 1; // `extern "C"` modifier / foreign block header
                } else if ident_at(toks, i, "crate") {
                    i = skip_to_semi(toks, i, end); // `extern crate x;`
                }
            }
            "mod" => {
                let name = ident_text(toks, i + 1).unwrap_or_default();
                let mut j = i + 2;
                while j < end && !is_punct(toks, j, "{") && !is_punct(toks, j, ";") {
                    j += 1;
                }
                if is_punct(toks, j, "{") {
                    let close = brace_match(toks, j);
                    mod_path.push(name);
                    scan(toks, in_test, j + 1, close, mod_path, None, out);
                    mod_path.pop();
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "impl" => {
                let (sty, body_open) = impl_header(toks, i, end);
                match body_open {
                    Some(open) => {
                        let close = brace_match(toks, open);
                        scan(
                            toks,
                            in_test,
                            open + 1,
                            close,
                            mod_path,
                            sty.as_deref(),
                            out,
                        );
                        i = close + 1;
                    }
                    None => i += 1,
                }
            }
            "trait" => {
                let name = ident_text(toks, i + 1).unwrap_or_default();
                let mut j = i + 2;
                while j < end && !is_punct(toks, j, "{") && !is_punct(toks, j, ";") {
                    j += 1;
                }
                if is_punct(toks, j, "{") {
                    let close = brace_match(toks, j);
                    scan(toks, in_test, j + 1, close, mod_path, Some(&name), out);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => i = parse_fn(toks, in_test, i, end, mod_path, self_ty, out),
            "use" => {
                let semi = skip_to_semi(toks, i + 1, end);
                let mut prefix: Vec<String> = Vec::new();
                collect_use(
                    toks,
                    i + 1,
                    semi.saturating_sub(1),
                    &mut prefix,
                    &mut out.uses,
                );
                i = semi;
            }
            "struct" | "enum" | "union" => {
                let mut j = i + 1;
                while j < end {
                    if is_punct(toks, j, "{") {
                        j = brace_match(toks, j) + 1;
                        break;
                    }
                    if is_punct(toks, j, "(") {
                        j = paren_match(toks, j) + 1; // tuple struct, `;` follows
                        continue;
                    }
                    if is_punct(toks, j, ";") {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                i = j;
            }
            "const" if ident_at(toks, i + 1, "fn") => i += 1, // `const fn`
            "const" | "static" | "type" => i = skip_to_semi(toks, i + 1, end),
            "macro_rules" => {
                // `macro_rules! name { ... }`
                let mut j = i + 1;
                while j < end && !is_punct(toks, j, "{") && !is_punct(toks, j, ";") {
                    j += 1;
                }
                i = if is_punct(toks, j, "{") {
                    brace_match(toks, j) + 1
                } else {
                    j + 1
                };
            }
            _ if is_punct(toks, i + 1, "!") => {
                // Item-level macro invocation (`thread_local! { ... }`).
                let mut j = i + 2;
                i = if is_punct(toks, j, "{") {
                    brace_match(toks, j) + 1
                } else {
                    while j < end
                        && !is_punct(toks, j, ";")
                        && !is_punct(toks, j, "(")
                        && !is_punct(toks, j, "[")
                    {
                        j += 1;
                    }
                    if is_punct(toks, j, "(") || is_punct(toks, j, "[") {
                        delim_match(toks, j) + 1
                    } else {
                        j + 1
                    }
                };
            }
            _ => i += 1,
        }
    }
}

/// Parses `impl ... {`, returning the implemented-on type (the last
/// top-level type name before the brace, after `for` when present) and the
/// body's opening-brace index.
fn impl_header(toks: &[Tok], at: usize, end: usize) -> (Option<String>, Option<usize>) {
    let mut j = at + 1;
    if is_punct(toks, j, "<") {
        j = angle_match(toks, j) + 1;
    }
    let mut last: Option<String> = None;
    while j < end {
        let Some(t) = toks.get(j) else { break };
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => return (last, Some(j)),
                ";" => return (last, None), // `impl Foo for Bar;` (never valid, be safe)
                "<" => {
                    j = angle_match(toks, j) + 1;
                    continue;
                }
                "(" => {
                    j = paren_match(toks, j) + 1;
                    continue;
                }
                _ => {}
            }
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "for" => last = None,
                "where" => {
                    // Type position is over; scan on for the brace.
                    while j < end && !is_punct(toks, j, "{") {
                        j += 1;
                    }
                    continue;
                }
                "dyn" | "mut" | "as" | "impl" => {}
                name => last = Some(name.to_string()),
            }
        }
        j += 1;
    }
    (last, None)
}

/// Parses one `fn` item starting at the `fn` keyword; returns the token
/// index to resume scanning from.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Tok],
    in_test: &[bool],
    at: usize,
    end: usize,
    mod_path: &[String],
    self_ty: Option<&str>,
    out: &mut Items,
) -> usize {
    let name_tok = at + 1;
    let Some(name) = ident_text(toks, name_tok) else {
        return at + 1;
    };
    let mut j = name_tok + 1;
    if is_punct(toks, j, "<") {
        j = angle_match(toks, j) + 1;
    }
    if !is_punct(toks, j, "(") {
        return j;
    }
    let params_close = paren_match(toks, j);
    let has_self = {
        let mut k = j + 1;
        while k < params_close {
            match toks.get(k) {
                Some(t) if t.kind == TokKind::Punct && t.text == "&" => k += 1,
                Some(t) if t.kind == TokKind::Lifetime => k += 1,
                Some(t) if t.kind == TokKind::Ident && t.text == "mut" => k += 1,
                _ => break,
            }
        }
        ident_at(toks, k, "self")
    };
    let mut k = params_close + 1;
    let mut ret: Vec<String> = Vec::new();
    if is_punct(toks, k, "->") {
        k += 1;
        let mut depth = 0i32;
        while k < end {
            let Some(t) = toks.get(k) else { break };
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "{" | ";" if depth <= 0 => break,
                    _ => {}
                }
            } else if t.kind == TokKind::Ident && t.text == "where" && depth <= 0 {
                break;
            }
            ret.push(t.text.clone());
            k += 1;
        }
    }
    while k < end && !is_punct(toks, k, "{") && !is_punct(toks, k, ";") {
        k += 1;
    }
    let (body, next) = if is_punct(toks, k, "{") {
        let close = brace_match(toks, k);
        (Some((k, close)), close + 1)
    } else {
        (None, k + 1)
    };
    let mut qual = String::new();
    for m in mod_path {
        qual.push_str(m);
        qual.push_str("::");
    }
    if let Some(sty) = self_ty {
        qual.push_str(sty);
        qual.push_str("::");
    }
    qual.push_str(&name);
    out.fns.push(FnItem {
        name,
        qual,
        self_ty: self_ty.map(str::to_string),
        has_self,
        ret,
        name_tok,
        body,
        line: toks[at].line,
        is_test: in_test.get(name_tok).copied().unwrap_or(false),
    });
    next
}

/// Flattens one `use` tree spanning `toks[i..=end]` (the tokens between
/// `use` and `;`) into aliases, recursing through `{...}` groups.
fn collect_use(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseAlias>,
) {
    let base = prefix.len();
    while i <= end {
        let Some(t) = toks.get(i) else { break };
        match t.kind {
            TokKind::Ident if t.text == "as" => {
                if let Some(alias) = ident_text(toks, i + 1) {
                    out.push(UseAlias {
                        alias,
                        path: prefix.join("::"),
                    });
                }
                prefix.truncate(base);
                return;
            }
            TokKind::Ident if t.text == "self" => {} // `{self, ...}` keeps the prefix name
            TokKind::Ident => prefix.push(t.text.clone()),
            TokKind::Punct if t.text == "{" => {
                let close = brace_match(toks, i).min(end + 1);
                let mut seg = i + 1;
                let mut depth = 0usize;
                for k in i + 1..close {
                    if is_punct(toks, k, "{") {
                        depth += 1;
                    } else if is_punct(toks, k, "}") {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && is_punct(toks, k, ",") {
                        collect_use(toks, seg, k.saturating_sub(1), prefix, out);
                        seg = k + 1;
                    }
                }
                if seg < close {
                    collect_use(toks, seg, close.saturating_sub(1), prefix, out);
                }
                prefix.truncate(base);
                return;
            }
            TokKind::Punct if t.text == "*" => {
                prefix.truncate(base); // glob: introduces no single alias
                return;
            }
            _ => {}
        }
        i += 1;
    }
    if prefix.len() > base {
        if let Some(last) = prefix.last().cloned() {
            out.push(UseAlias {
                alias: last,
                path: prefix.join("::"),
            });
        }
    }
    prefix.truncate(base);
}

// --- token-walking helpers --------------------------------------------------

pub(crate) fn is_punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

pub(crate) fn ident_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

pub(crate) fn ident_text(toks: &[Tok], i: usize) -> Option<String> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

fn skip_to_semi(toks: &[Tok], mut i: usize, end: usize) -> usize {
    while i < end {
        if is_punct(toks, i, ";") {
            return i + 1;
        }
        // Delimited groups may contain `;` (array types, initializer
        // blocks); skip them whole.
        if is_punct(toks, i, "{") || is_punct(toks, i, "(") || is_punct(toks, i, "[") {
            i = delim_match(toks, i) + 1;
            continue;
        }
        i += 1;
    }
    end
}

/// Index of the `}` matching the `{` at `open` (last index if unbalanced).
pub(crate) fn brace_match(toks: &[Tok], open: usize) -> usize {
    delim_scan(toks, open, "{", "}")
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn paren_match(toks: &[Tok], open: usize) -> usize {
    delim_scan(toks, open, "(", ")")
}

/// Matches whatever delimiter opens at `open` (`(`, `[`, or `{`).
fn delim_match(toks: &[Tok], open: usize) -> usize {
    match toks.get(open).map(|t| t.text.as_str()) {
        Some("(") => delim_scan(toks, open, "(", ")"),
        Some("[") => delim_scan(toks, open, "[", "]"),
        _ => delim_scan(toks, open, "{", "}"),
    }
}

/// Index of the `>` matching the `<` at `open`. `->`/`=>` are fused by the
/// lexer and `>>` lexes as two `>` tokens, so plain depth counting works
/// for the type positions this parser inspects.
pub(crate) fn angle_match(toks: &[Tok], open: usize) -> usize {
    delim_scan(toks, open, "<", ">")
}

fn delim_scan(toks: &[Tok], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, op) {
            depth += 1;
        } else if is_punct(toks, i, cl) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `]` closing an attribute whose contents start at `start`.
fn attr_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 1usize;
    let mut i = start;
    while i < toks.len() {
        if is_punct(toks, i, "[") {
            depth += 1;
        } else if is_punct(toks, i, "]") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_flags;
    use crate::lexer::lex;

    fn parse(src: &str) -> Items {
        let lexed = lex(src);
        let flags = test_flags(&lexed.toks);
        parse_items(&lexed.toks, &flags)
    }

    #[test]
    fn free_fns_methods_and_trait_impls() {
        let src = "
            pub fn top(x: u32) -> Result<u32, String> { helper(x) }
            fn helper(x: u32) -> Result<u32, String> { Ok(x) }
            pub struct W { inner: u32 }
            impl W {
                pub fn get(&self) -> u32 { self.inner }
                pub fn make(v: u32) -> Self { W { inner: v } }
            }
            impl std::fmt::Display for W {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            trait Estimator {
                fn estimate(&self, q: &str) -> f64;
                fn name(&self) -> &str { \"anon\" }
            }
        ";
        let items = parse(src);
        let names: Vec<(&str, Option<&str>, bool)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top", None, false),
                ("helper", None, false),
                ("get", Some("W"), true),
                ("make", Some("W"), false),
                ("fmt", Some("W"), true),
                ("estimate", Some("Estimator"), true),
                ("name", Some("Estimator"), true),
            ]
        );
        let top = &items.fns[0];
        assert_eq!(top.ret.join(" "), "Result < u32 , String >");
        assert!(top.body.is_some());
        let est = &items.fns[5];
        assert!(est.body.is_none(), "trait decl has no body");
    }

    #[test]
    fn modules_nest_and_qualify_names() {
        let src = "
            mod outer {
                pub mod inner { pub fn deep() {} }
                pub fn mid() {}
            }
            fn shallow() {}
        ";
        let items = parse(src);
        let quals: Vec<&str> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["outer::inner::deep", "outer::mid", "shallow"]);
    }

    #[test]
    fn use_trees_flatten_with_renames_and_groups() {
        let src = "
            use std::sync::{Mutex, atomic::{AtomicU64, Ordering}};
            use crate::wal::Wal as Journal;
            use std::io::Write;
            use std::collections::*;
        ";
        let items = parse(src);
        let pairs: Vec<(String, String)> = items
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.clone()))
            .collect();
        assert!(pairs.contains(&("Mutex".into(), "std::sync::Mutex".into())));
        assert!(pairs.contains(&("AtomicU64".into(), "std::sync::atomic::AtomicU64".into())));
        assert!(pairs.contains(&("Ordering".into(), "std::sync::atomic::Ordering".into())));
        assert!(pairs.contains(&("Journal".into(), "crate::wal::Wal".into())));
        assert!(pairs.contains(&("Write".into(), "std::io::Write".into())));
    }

    #[test]
    fn test_items_are_marked_and_generics_skipped() {
        let src = "
            pub fn generic<T: Clone, F: Fn(&T) -> T>(x: T, f: F) -> Vec<T> { vec![f(&x)] }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { assert!(true); }
            }
        ";
        let items = parse(src);
        assert_eq!(items.fns.len(), 2);
        assert!(!items.fns[0].is_test);
        assert_eq!(items.fns[0].name, "generic");
        assert!(items.fns[1].is_test);
        assert_eq!(items.fns[1].qual, "tests::check");
    }

    #[test]
    fn impl_header_variants_resolve_self_ty() {
        let src = "
            struct A; struct B;
            impl<T> Wrapper<T> { fn w(&self) {} }
            impl Iterator for B { fn next(&mut self) -> Option<u8> { None } }
            impl<'a> From<&'a A> for B { fn from(_: &'a A) -> B { B } }
        ";
        let items = parse(src);
        let tys: Vec<Option<&str>> = items.fns.iter().map(|f| f.self_ty.as_deref()).collect();
        assert_eq!(tys, vec![Some("Wrapper"), Some("B"), Some("B")]);
    }

    #[test]
    fn items_after_skipped_constructs_are_still_found() {
        let src = "
            const LIMIT: usize = 1 << 8;
            static TABLE: [u8; 4] = [0; 4];
            type Pair = (u32, u32);
            macro_rules! noisy { ($x:expr) => { $x }; }
            enum E { A(u32), B { v: u32 } }
            pub fn survivor() -> bool { true }
        ";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "survivor");
        assert_eq!(items.fns[0].ret, vec!["bool"]);
    }
}
