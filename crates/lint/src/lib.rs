// The linter dogfoods its own rules: no unsafe, no panics in library
// paths, no nondeterminism (BTree containers only, no clocks).
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # cardest-lint
//!
//! A zero-dependency invariant checker for the `cardest` workspace. The
//! workspace promises, and earlier PRs hand-verified, three families of
//! guarantees:
//!
//! 1. **Determinism** — training is bit-identical for any
//!    `--train-threads` value; no wall-clock, OS entropy, or hash-ordered
//!    iteration in library crates.
//! 2. **Numerics** — every log-cardinality decode is clamped through
//!    `decode_log_card`; float ordering uses `total_cmp`; the GEMM and
//!    distance kernels stay IEEE-exact.
//! 3. **Panic-safety** — library crates surface typed errors, never
//!    panics, and the workspace is 100% safe Rust.
//!
//! `cardest-lint` makes those machine-checked. It is deliberately
//! dependency-free (the workspace builds offline; `syn` is unavailable):
//! a hand-rolled [`lexer`] separates code tokens from comments, strings,
//! and char literals, the [`rules`] registry walks the token stream, and
//! [`engine`] applies `// cardest-lint: allow(<rule>): <reason>` pragmas
//! (see [`pragma`]) before reporting `file:line` diagnostics, in text or
//! `--format=json`.
//!
//! Since v2 the linter is also *semantic*: an item-level [`parser`]
//! recovers functions, impl blocks, and `use` trees; [`callgraph`] links
//! them into a workspace call graph with heuristic name resolution; and
//! [`semrules`] checks cross-function invariants on top — panic
//! reachability from serving entry points, lock discipline, the store's
//! durability protocol, and error taxonomy. Semantic findings are gated
//! through a checked-in [`baseline`] so the CI gate only fails on *new*
//! diagnostics.
//!
//! See `DESIGN.md` §10 for the lexical rule catalogue and §14 for the
//! semantic analysis.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod rules;
pub mod semrules;

pub use engine::{
    collect_rs_files, lint_paths, lint_paths_semantic, lint_source, lint_sources_semantic, to_json,
    Report,
};
pub use rules::{registry, Diagnostic};
