//! The rule registry.
//!
//! Each rule is a lexical check over one file's token stream, scoped by
//! path (which crate, which file) and by test-ness (tokens inside
//! `#[cfg(test)]` / `#[test]` items, and whole files under `tests/`,
//! `benches/`, or `examples/`, are exempt from most rules). The rules
//! encode invariants earlier PRs established by hand:
//!
//! * `nondeterminism` — bit-identical training for any `--train-threads`
//!   (PR 2) forbids wall-clock and OS-seeded randomness in library code,
//!   and hash-ordered containers anywhere order can leak into results.
//! * `raw-exp-decode` — every log-cardinality decode goes through
//!   `decode_log_card` (PR 3) so NaN/overflow clamp instead of poisoning
//!   Q-errors.
//! * `float-total-order` — `partial_cmp(..).unwrap()` panics on NaN and
//!   float `==` is almost always a bug; use `total_cmp` / explicit
//!   tolerance.
//! * `panic-path` — library crates surface typed errors, never panics
//!   (PR 3); the ~20 deliberate invariant-violation aborts carry pragmas.
//! * `unsafe-block` — the workspace is 100% safe Rust today; any future
//!   `unsafe` must carry a `// SAFETY:` comment.
//! * `kernel-hygiene` — the GEMM and distance kernels are IEEE-exact
//!   (PR 4); lossy `as` casts in those files need explicit justification.

use crate::lexer::{Comment, Tok, TokKind};

/// One reported violation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path the file was read from (fixtures report their real path even
    /// when a directive re-scopes them).
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// Qualified name of the containing function (semantic rules only;
    /// empty for lexical rules).
    pub function: String,
    /// Sub-category within the rule (semantic rules only), e.g. `unwrap`,
    /// `order-inversion`, `write-without-sync`.
    pub kind: String,
}

/// Everything a rule can see about one file.
pub struct FileCtx<'a> {
    /// Effective repo-relative path used for scoping ('/' separated).
    pub path: String,
    /// Path diagnostics are reported under.
    pub display_path: String,
    pub toks: &'a [Tok],
    /// Parallel to `toks`: true for tokens inside `#[cfg(test)]` /
    /// `#[test]` items.
    pub in_test: &'a [bool],
    pub comments: &'a [Comment],
}

impl FileCtx<'_> {
    /// Library crates carry the panic-free / deterministic contracts.
    /// `crates/bench` is the measurement harness (it times with `Instant`
    /// and unwraps freely in experiment drivers) and is exempt.
    pub fn is_lib_crate(&self) -> bool {
        match self.crate_name() {
            Some(name) => name != "bench",
            None => false,
        }
    }

    /// Crate directory name under `crates/`, if any.
    pub fn crate_name(&self) -> Option<&str> {
        let mut parts = self.path.split('/');
        parts.by_ref().find(|p| *p == "crates")?;
        parts.next()
    }

    /// Whole-file test-ness: integration tests, benches, and examples are
    /// exempt from the library-code rules.
    pub fn file_is_testish(&self) -> bool {
        ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| self.path.contains(d))
    }

    fn code(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn is_test_tok(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn ident_at(&self, i: usize, text: &str) -> bool {
        self.code(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    fn punct_at(&self, i: usize, text: &str) -> bool {
        self.code(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    fn diag(&self, rule: &'static str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            file: self.display_path.clone(),
            line,
            rule,
            message,
            ..Diagnostic::default()
        }
    }
}

/// A registered rule.
pub struct Rule {
    pub id: &'static str,
    pub summary: &'static str,
    pub check: fn(&FileCtx, &mut Vec<Diagnostic>),
}

pub const NONDETERMINISM: &str = "nondeterminism";
pub const RAW_EXP_DECODE: &str = "raw-exp-decode";
pub const FLOAT_TOTAL_ORDER: &str = "float-total-order";
pub const PANIC_PATH: &str = "panic-path";
pub const UNSAFE_BLOCK: &str = "unsafe-block";
pub const KERNEL_HYGIENE: &str = "kernel-hygiene";
/// Meta-rule id for malformed / reason-less / unknown-rule pragmas,
/// emitted by the engine rather than a registry check.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// All registered rules, in reporting order.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            id: NONDETERMINISM,
            summary:
                "no wall-clock time, OS-seeded RNGs, or hash-ordered containers in library crates",
            check: check_nondeterminism,
        },
        Rule {
            id: RAW_EXP_DECODE,
            summary: "log-cardinality decodes must go through decode_log_card, not bare .exp()",
            check: check_raw_exp_decode,
        },
        Rule {
            id: FLOAT_TOTAL_ORDER,
            summary: "no partial_cmp().unwrap() or float == literal in library code; use total_cmp",
            check: check_float_total_order,
        },
        Rule {
            id: PANIC_PATH,
            summary: "no unwrap/expect/panic!/unreachable!/todo! in non-test library code",
            check: check_panic_path,
        },
        Rule {
            id: UNSAFE_BLOCK,
            summary: "every unsafe block needs an adjacent // SAFETY: comment",
            check: check_unsafe_block,
        },
        Rule {
            id: KERNEL_HYGIENE,
            summary: "no `as` numeric casts inside the IEEE-exact GEMM / distance kernel files",
            check: check_kernel_hygiene,
        },
    ]
}

/// True when `id` names a registry rule, a semantic rule, or the
/// `bad-pragma` meta-rule (so pragma validation accepts it).
pub fn is_known_rule(id: &str) -> bool {
    id == BAD_PRAGMA
        || registry().iter().any(|r| r.id == id)
        || crate::semrules::is_semantic_rule(id)
}

// ---------------------------------------------------------------------------
// nondeterminism
// ---------------------------------------------------------------------------

fn check_nondeterminism(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() || ctx.file_is_testish() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_test_tok(i) {
            continue;
        }
        let clock_call = (t.text == "SystemTime" || t.text == "Instant")
            && ctx.punct_at(i + 1, "::")
            && ctx.ident_at(i + 2, "now");
        if clock_call {
            out.push(ctx.diag(
                NONDETERMINISM,
                t.line,
                format!(
                    "`{}::now()` breaks bit-reproducible training; thread timing through the \
                     bench harness or derive it from a seeded source",
                    t.text
                ),
            ));
        } else if t.text == "thread_rng" || t.text == "from_entropy" {
            out.push(ctx.diag(
                NONDETERMINISM,
                t.line,
                format!(
                    "`{}` draws OS entropy; all randomness must flow through a caller-provided \
                     seeded RNG (see cardest-nn's determinism contract)",
                    t.text
                ),
            ));
        } else if t.text == "HashMap" || t.text == "HashSet" {
            out.push(ctx.diag(
                NONDETERMINISM,
                t.line,
                format!(
                    "`{}` iteration order is unspecified and can leak into results; use \
                     `BTreeMap`/`BTreeSet` or sort keys before iterating (allow with the \
                     ordering discipline as the reason)",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// raw-exp-decode
// ---------------------------------------------------------------------------

/// Files allowed to call `.exp()` directly: the decode helper itself and
/// the activation / loss internals whose math is not a cardinality decode.
const EXP_APPROVED: [&str; 3] = [
    "crates/nn/src/metrics.rs",
    "crates/nn/src/activation.rs",
    "crates/nn/src/loss.rs",
];

fn check_raw_exp_decode(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() || ctx.file_is_testish() {
        return;
    }
    if EXP_APPROVED.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.is_test_tok(i) {
            continue;
        }
        let method = t.kind == TokKind::Punct
            && (t.text == "." || t.text == "::")
            && ctx.ident_at(i + 1, "exp")
            && ctx.punct_at(i + 2, "(");
        if method {
            let line = ctx.code(i + 1).map(|t| t.line).unwrap_or(t.line);
            out.push(
                ctx.diag(
                    RAW_EXP_DECODE,
                    line,
                    "bare `.exp()`: a model-output decode here can map NaN/overflow into a fake \
                 cardinality; route it through `cardest_nn::metrics::decode_log_card` (allow \
                 with a reason when the exp is non-decode math)"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// float-total-order
// ---------------------------------------------------------------------------

fn check_float_total_order(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        // `partial_cmp(..).unwrap()` is checked even inside test code: a
        // NaN reaching such a sort panics the test harness instead of
        // failing an assertion (this caught the max-pool margin probe).
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            let panicky = (i + 1..i + 9).any(|j| {
                ctx.code(j).is_some_and(|n| {
                    n.kind == TokKind::Ident && (n.text == "unwrap" || n.text == "expect")
                })
            });
            if panicky {
                out.push(
                    ctx.diag(
                        FLOAT_TOTAL_ORDER,
                        t.line,
                        "`partial_cmp(..).unwrap()` panics on NaN; use `f32::total_cmp` for a \
                     NaN-safe total order"
                            .to_string(),
                    ),
                );
            }
        }
        if ctx.is_test_tok(i) || ctx.file_is_testish() {
            continue;
        }
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i
                .checked_sub(1)
                .and_then(|p| ctx.code(p))
                .is_some_and(|p| p.kind == TokKind::Float);
            let next_float = ctx.code(i + 1).is_some_and(|n| n.kind == TokKind::Float)
                || (ctx.punct_at(i + 1, "-")
                    && ctx.code(i + 2).is_some_and(|n| n.kind == TokKind::Float));
            if prev_float || next_float {
                out.push(ctx.diag(
                    FLOAT_TOTAL_ORDER,
                    t.line,
                    format!(
                        "float `{}` comparison against a literal is exact-bit equality; compare \
                         with a tolerance, or allow with the IEEE-exactness argument as the \
                         reason",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// panic-path
// ---------------------------------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_panic_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() || ctx.file_is_testish() {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.is_test_tok(i) {
            continue;
        }
        let is_method_call = |name: &str| {
            t.text == name && i > 0 && ctx.punct_at(i - 1, ".") && ctx.punct_at(i + 1, "(")
        };
        if is_method_call("unwrap") || is_method_call("expect") {
            out.push(ctx.diag(
                PANIC_PATH,
                t.line,
                format!(
                    "`.{}()` in library code panics on malformed input; return a typed \
                     `CardestError` instead, or allow with the invariant that makes this \
                     unreachable as the reason",
                    t.text
                ),
            ));
        } else if PANIC_MACROS.contains(&t.text.as_str()) && ctx.punct_at(i + 1, "!") {
            out.push(ctx.diag(
                PANIC_PATH,
                t.line,
                format!(
                    "`{}!` in library code aborts the caller; surface a typed error, or allow \
                     with the invariant that makes this unreachable as the reason",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// unsafe-block
// ---------------------------------------------------------------------------

fn check_unsafe_block(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for t in ctx.toks.iter() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = ctx
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line + 3 >= t.line && c.line <= t.line);
        if !documented {
            out.push(ctx.diag(
                UNSAFE_BLOCK,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment; the workspace is 100% safe \
                 Rust — new unsafe code must justify its soundness inline"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// kernel-hygiene
// ---------------------------------------------------------------------------

/// The IEEE-exactness contract of PR 4 covers these two files.
const KERNEL_FILES: [&str; 2] = ["crates/nn/src/gemm.rs", "crates/data/src/kernels.rs"];

const NUMERIC_TYPES: [&str; 15] = [
    "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128",
    "usize", "char",
];

fn check_kernel_hygiene(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !KERNEL_FILES.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || ctx.is_test_tok(i) {
            continue;
        }
        let target = ctx.code(i + 1);
        if let Some(ty) = target {
            if ty.kind == TokKind::Ident && NUMERIC_TYPES.contains(&ty.text.as_str()) {
                out.push(ctx.diag(
                    KERNEL_HYGIENE,
                    t.line,
                    format!(
                        "`as {}` cast inside an IEEE-exact kernel file can silently lose \
                         precision; use `From`/`TryFrom`, hoist the cast out of the hot loop, \
                         or allow with the losslessness argument as the reason",
                        ty.text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let rules = registry();
        for (i, r) in rules.iter().enumerate() {
            assert!(r.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(rules[i + 1..].iter().all(|o| o.id != r.id));
        }
        assert!(is_known_rule(BAD_PRAGMA));
        assert!(!is_known_rule("no-such-rule"));
    }
}
